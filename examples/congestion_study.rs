//! Congestion study: route the same ISPD-like design with the
//! differentiable router and the CUGR2-style sequential baseline, then
//! compare congestion maps and metrics side by side — the Table-2
//! experiment in miniature.
//!
//! ```text
//! cargo run --release --example congestion_study
//! ```

use dgr::baseline::SequentialRouter;
use dgr::core::{DgrConfig, DgrRouter};
use dgr::grid::CongestionReport;
use dgr::io::{IspdLikeConfig, IspdLikeGenerator};
use dgr::post::{refine, RefineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a congested 5-layer design with clustered pins and two macros
    let design = IspdLikeGenerator::new(IspdLikeConfig {
        width: 40,
        height: 40,
        num_nets: 600,
        num_layers: 5,
        base_capacity: 8.0,
        clusters: 10,
        macros: 2,
        ..IspdLikeConfig::default()
    })
    .generate()?;
    println!(
        "design: {} nets, {} pins, {}x{} grid",
        design.num_nets(),
        design.num_pins(),
        design.grid.width(),
        design.grid.height()
    );

    // both routers get the same maze-refinement pass (Section 4.6), so the
    // comparison matches the Table-2 pipeline
    let mut seq = SequentialRouter::default().route(&design)?;
    refine(&design, &mut seq, RefineConfig::default())?;
    let cfg = DgrConfig {
        iterations: 300,
        ..DgrConfig::default()
    };
    let mut dgr = DgrRouter::new(cfg).route(&design)?;
    refine(&design, &mut dgr, RefineConfig::default())?;

    for (name, sol) in [("sequential (CUGR2-style)", &seq), ("DGR", &dgr)] {
        let m = &sol.metrics;
        println!(
            "\n{name}: wirelength {}, turns {}, overflowed edges {}, total overflow {:.1}",
            m.total_wirelength,
            m.total_turns,
            m.overflow.overflowed_edges,
            m.overflow.total_overflow
        );
        let report = CongestionReport::measure(&design.grid, &design.capacity, &sol.demand);
        println!("{}", report.ascii_heatmap(&design.grid));
    }

    println!(
        "ICCAD'19 weighted cost (500·ovf + 4·turns + 0.5·WL): sequential {:.0}, DGR {:.0}",
        seq.metrics.weighted_cost(),
        dgr.metrics.weighted_cost()
    );
    println!("(single-seed snapshot — the table2 binary averages the full catalog)");
    Ok(())
}
