//! Proof-of-concept: the differentiable relaxation recovers the exact
//! ILP optimum on a Table-1-style synthetic instance.
//!
//! ```text
//! cargo run --release --example ilp_vs_dgr
//! ```

use dgr::baseline::{IlpSolver, IlpStatus};
use dgr::core::{DgrConfig, DgrRouter};
use dgr::io::{table1_design, Table1Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Table1Params {
        grid: 30,
        cap: 1.0,
        nets: 40,
        box_size: 6,
        seed: 42,
    };
    let design = table1_design(&params)?;
    println!(
        "synthetic instance: {}x{} grid, {} nets, cap {}",
        params.grid, params.grid, params.nets, params.cap
    );

    // exact branch-and-bound reference
    let ilp = IlpSolver::default().solve(&design)?;
    println!(
        "ILP : overflow {:.0} ({:?}, {} nodes, {:.2?})",
        ilp.overflow, ilp.status, ilp.nodes, ilp.runtime
    );
    assert_eq!(ilp.status, IlpStatus::Optimal);

    // DGR in the ILP-comparison profile (ReLU overflow, argmax read-out)
    let mut best = f64::INFINITY;
    for seed in 0..5 {
        let mut cfg = DgrConfig::ilp_comparison();
        cfg.seed = seed;
        let solution = DgrRouter::new(cfg).route(&design)?;
        // overflow over wire demand only, matching the ILP objective
        let mut wire = vec![0.0f32; design.grid.num_edges()];
        for route in &solution.routes {
            for path in &route.paths {
                for w in path.corners.windows(2) {
                    for e in design.grid.edges_on_segment(w[0], w[1])? {
                        wire[e.index()] += 1.0;
                    }
                }
            }
        }
        let overflow: f64 = wire
            .iter()
            .zip(design.capacity.as_slice())
            .map(|(&d, &c)| ((d - c).max(0.0)) as f64)
            .sum();
        println!("DGR : overflow {overflow:.0} (seed {seed})");
        best = best.min(overflow);
    }

    println!(
        "\nbest DGR seed vs ILP optimum: {best:.0} vs {:.0} ({})",
        ilp.overflow,
        if (best - ilp.overflow).abs() < 1e-6 {
            "matched — the relaxation found the optimum"
        } else {
            "gap remains — try the hyper-parameter search of the table1 binary"
        }
    );
    Ok(())
}
