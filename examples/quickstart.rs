//! Quickstart: route a handful of nets with the differentiable global
//! router and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dgr::core::{DgrConfig, DgrRouter};
use dgr::grid::{CapacityBuilder, CongestionReport, Design, GcellGrid, Net, Point};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. a 16×16 g-cell grid with 4 tracks per edge
    let grid = GcellGrid::new(16, 16)?;
    let capacity = CapacityBuilder::uniform(&grid, 4.0).build(&grid)?;

    // 2. three nets, one of them multi-pin
    let design = Design::new(
        grid,
        capacity,
        vec![
            Net::new("alpha", vec![Point::new(1, 1), Point::new(13, 11)]),
            Net::new("beta", vec![Point::new(2, 12), Point::new(12, 2)]),
            Net::new(
                "gamma",
                vec![Point::new(4, 4), Point::new(11, 6), Point::new(7, 13)],
            ),
        ],
        5, // routable layers
    )?;

    // 3. route with a short training schedule (tiny design)
    let config = DgrConfig {
        iterations: 200,
        ..DgrConfig::default()
    };
    let solution = DgrRouter::new(config).route(&design)?;

    // 4. inspect
    println!("routed {} nets", solution.routes.len());
    println!("total wirelength : {}", solution.metrics.total_wirelength);
    println!("turning points   : {}", solution.metrics.total_turns);
    println!(
        "overflowed edges : {}",
        solution.metrics.overflow.overflowed_edges
    );
    for route in &solution.routes {
        let name = &design.nets[route.net].name;
        println!("\nnet {name}:");
        for path in &route.paths {
            let corners: Vec<String> = path.corners.iter().map(|p| p.to_string()).collect();
            println!("  {}", corners.join(" → "));
        }
    }

    // 5. congestion heat map
    let report = CongestionReport::measure(&design.grid, &design.capacity, &solution.demand);
    println!(
        "\ncongestion map (top row first):\n{}",
        report.ascii_heatmap(&design.grid)
    );

    if let Some(train) = &solution.train_report {
        println!(
            "training: {} iterations in {:.2?}, final loss {:.1}",
            train.iterations, train.duration, train.final_loss
        );
    }
    Ok(())
}
