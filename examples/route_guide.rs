//! Full flow: 2D differentiable routing → maze refinement → DP layer
//! assignment → detailed-routing guides, written to `routing.guide`.
//!
//! ```text
//! cargo run --release --example route_guide
//! ```

use dgr::core::{DgrConfig, DgrRouter};
use dgr::io::{IspdLikeConfig, IspdLikeGenerator};
use dgr::post::{assign_layers, refine, AssignConfig, RefineConfig, RouteGuide};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = IspdLikeGenerator::new(IspdLikeConfig {
        width: 32,
        height: 32,
        num_nets: 250,
        num_layers: 9,
        ..IspdLikeConfig::default()
    })
    .generate()?;

    // 2D pattern routing
    let cfg = DgrConfig {
        iterations: 250,
        ..DgrConfig::default()
    };
    let mut solution = DgrRouter::new(cfg).route(&design)?;
    println!(
        "2D solution: WL {}, turns {}, overflowed edges {}",
        solution.metrics.total_wirelength,
        solution.metrics.total_turns,
        solution.metrics.overflow.overflowed_edges
    );

    // maze refinement of congested nets
    let report = refine(&design, &mut solution, RefineConfig::default())?;
    println!(
        "refinement: {} nets rerouted, overflow {} → {}",
        report.nets_rerouted, report.overflowed_before, report.overflowed_after
    );

    // DP layer assignment
    let assigned = assign_layers(&design, &solution, AssignConfig::default())?;
    println!(
        "3D solution: {} vias, {} overflowed (layer, edge) pairs, {} congested nets",
        assigned.total_vias, assigned.overflowed_edges3d, assigned.overflowed_nets
    );

    // guide output
    let guide = RouteGuide::from_assignment(&design, &assigned);
    let path = std::env::temp_dir().join("routing.guide");
    std::fs::write(&path, guide.to_text())?;
    println!(
        "wrote {} guide boxes for {} nets to {}",
        guide.num_boxes(),
        guide.nets.len(),
        path.display()
    );

    // show one net's guide
    let (name, boxes) = &guide.nets[0];
    println!("\nguide for {name}:");
    for b in boxes {
        println!(
            "  ({}, {}) .. ({}, {}) on layer {}",
            b.lo.x, b.lo.y, b.hi.x, b.hi.y, b.layer
        );
    }
    Ok(())
}
