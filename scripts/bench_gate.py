#!/usr/bin/env python3
"""CI bench regression gate.

Compares a fresh bench run against the committed baseline and fails when
the gated metric regressed by more than the allowed fraction:

    bench_gate.py BENCH_train.json /tmp/bench_fresh.json [--max-regression 0.15]
    bench_gate.py --pipeline BENCH_pipeline.json /tmp/pipeline_fresh.json

The default (training) mode gates ``iters_per_sec`` (higher is better)
plus the ``extract_ms`` and ``backward_ms`` per-phase means (lower is
better, with their own looser ``--max-phase-regression`` threshold since
phase means are noisier than throughput); ``--pipeline`` gates
``route_wall_ms`` (lower is better) and also reports the
canonical-cache hit rate and serial-vs-parallel speedup. The verdict is
printed to stdout and, when ``$GITHUB_STEP_SUMMARY`` is set, appended
there as a markdown table. Speedups and small regressions pass;
remaining per-phase means are reported for context only.
"""

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")


def append_summary(lines: str) -> None:
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(lines)


GATED_PHASES = ("extract_ms", "backward_ms")


def phase_mean(report: dict, key: str):
    """Per-phase mean ms, preferring the ``phases`` table over the
    legacy top-level field."""
    value = report.get("phases", {}).get(key, report.get(key))
    return None if value is None else float(value)


def gate_train(base: dict, fresh: dict, max_regression: float, max_phase: float) -> int:
    base_ips = float(base["iters_per_sec"])
    fresh_ips = float(fresh["iters_per_sec"])
    if base_ips <= 0:
        sys.exit("bench_gate: baseline iters_per_sec must be positive")

    delta = fresh_ips / base_ips - 1.0
    ok = delta >= -max_regression
    verdict = "ok" if ok else f"FAIL (> {max_regression:.0%} regression)"

    print(
        f"bench_gate: baseline {base_ips:.1f} it/s -> fresh {fresh_ips:.1f} it/s "
        f"({delta:+.1%}) ... {verdict}"
    )

    summary_rows = [
        "| bench_train | baseline | fresh | delta | verdict |",
        "|---|---|---|---|---|",
        f"| iters/sec | {base_ips:.1f} | {fresh_ips:.1f} | {delta:+.1%} | {verdict} |",
    ]

    # Per-phase gates: extract_ms and backward_ms are lower-is-better
    # means and get their own (looser) regression budget. Other phases
    # are context only.
    all_ok = ok
    for key in ("forward_ms", "backward_ms", "adam_ms", "extract_ms"):
        b = phase_mean(base, key)
        f = phase_mean(fresh, key)
        if b is None or f is None:
            continue
        if key in GATED_PHASES and b > 0:
            pdelta = f / b - 1.0
            pok = pdelta <= max_phase
            pverdict = "ok" if pok else f"FAIL (> {max_phase:.0%} regression)"
            all_ok = all_ok and pok
            print(f"  {key}: {b:.3f} -> {f:.3f} ms ({pdelta:+.1%}) ... {pverdict}")
            summary_rows.append(
                f"| {key} | {b:.3f} | {f:.3f} | {pdelta:+.1%} | {pverdict} |"
            )
        else:
            print(f"  {key}: {b:.3f} -> {f:.3f} ms")
            summary_rows.append(f"| {key} | {b:.3f} | {f:.3f} | | |")

    append_summary("\n".join(summary_rows) + "\n")
    return 0 if all_ok else 1


def gate_pipeline(base: dict, fresh: dict, max_regression: float) -> int:
    base_ms = float(base["route_wall_ms"])
    fresh_ms = float(fresh["route_wall_ms"])
    if base_ms <= 0:
        sys.exit("bench_gate: baseline route_wall_ms must be positive")

    # Lower is better: delta is the fractional wall-clock increase.
    delta = fresh_ms / base_ms - 1.0
    ok = delta <= max_regression
    verdict = "ok" if ok else f"FAIL (> {max_regression:.0%} regression)"

    hit_rate = float(fresh.get("cache_hit_rate", 0.0))
    speedup = float(fresh.get("speedup_vs_serial", 0.0))
    print(
        f"bench_gate: baseline {base_ms:.1f} ms -> fresh {fresh_ms:.1f} ms "
        f"({delta:+.1%}) ... {verdict}"
    )
    print(f"  cache hit rate: {hit_rate:.1%}  speedup vs serial: {speedup:.2f}x")
    for key in ("candidates_ms", "forest_ms", "relax_ms", "extract_ms"):
        b = base.get("phases", {}).get(key)
        f = fresh.get("phases", {}).get(key)
        if b is not None and f is not None:
            print(f"  {key}: {float(b):.3f} -> {float(f):.3f} ms")

    append_summary(
        "| bench_pipeline | baseline | fresh | delta | verdict |\n"
        "|---|---|---|---|---|\n"
        f"| route wall (ms) | {base_ms:.1f} | {fresh_ms:.1f} "
        f"| {delta:+.1%} | {verdict} |\n"
        f"| cache hit rate | {float(base.get('cache_hit_rate', 0.0)):.1%} "
        f"| {hit_rate:.1%} | | |\n"
        f"| speedup vs serial | {float(base.get('speedup_vs_serial', 0.0)):.2f}x "
        f"| {speedup:.2f}x | | |\n"
    )
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed bench baseline JSON")
    ap.add_argument("fresh", help="freshly generated bench report")
    ap.add_argument(
        "--pipeline",
        action="store_true",
        help="gate route_wall_ms (lower is better) instead of iters_per_sec",
    )
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="allowed fractional regression of the gated metric (default 0.15)",
    )
    ap.add_argument(
        "--max-phase-regression",
        type=float,
        default=0.30,
        help="allowed fractional regression of the gated per-phase means "
        "extract_ms/backward_ms in training mode (default 0.30)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    if args.pipeline:
        return gate_pipeline(base, fresh, args.max_regression)
    return gate_train(base, fresh, args.max_regression, args.max_phase_regression)


if __name__ == "__main__":
    sys.exit(main())
