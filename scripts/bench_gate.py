#!/usr/bin/env python3
"""CI bench regression gate.

Compares a fresh ``bench_train`` run against the committed baseline
(``BENCH_train.json``) and fails when training throughput regressed by
more than the allowed fraction:

    bench_gate.py BENCH_train.json /tmp/bench_fresh.json [--max-regression 0.15]

The verdict (baseline vs fresh iterations/second and the delta) is
printed to stdout and, when ``$GITHUB_STEP_SUMMARY`` is set, appended
there as a markdown table row. Speedups and small regressions pass; only
``iters_per_sec`` gates — the per-phase means are reported for context
but are too noisy on shared runners to fail on.
"""

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_train.json")
    ap.add_argument("fresh", help="freshly generated bench report")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="allowed fractional iters_per_sec drop (default 0.15)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    base_ips = float(base["iters_per_sec"])
    fresh_ips = float(fresh["iters_per_sec"])
    if base_ips <= 0:
        sys.exit("bench_gate: baseline iters_per_sec must be positive")

    delta = fresh_ips / base_ips - 1.0
    ok = delta >= -args.max_regression
    verdict = "ok" if ok else f"FAIL (> {args.max_regression:.0%} regression)"

    print(
        f"bench_gate: baseline {base_ips:.1f} it/s -> fresh {fresh_ips:.1f} it/s "
        f"({delta:+.1%}) ... {verdict}"
    )
    for key in ("forward_ms", "backward_ms"):
        if key in base and key in fresh:
            print(f"  {key}: {float(base[key]):.3f} -> {float(fresh[key]):.3f} ms")

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(
                "| bench_train | baseline | fresh | delta | verdict |\n"
                "|---|---|---|---|---|\n"
                f"| iters/sec | {base_ips:.1f} | {fresh_ips:.1f} "
                f"| {delta:+.1%} | {verdict} |\n"
            )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
