//! No-op `serde_derive` stand-in for offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes through serde (there is no `serde_json` or similar in
//! the tree — the on-disk design format is hand-written in `dgr-io`).
//! These derives therefore only need to *parse*, not generate: each one
//! accepts the item (including `#[serde(...)]` attributes) and expands to
//! nothing, leaving the marker traits in the `serde` stub unimplemented.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
