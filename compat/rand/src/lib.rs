//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` / `gen_bool` / `gen` over the numeric types the routers
//! sample. The generator core is xoshiro256** seeded via SplitMix64 — not
//! the upstream ChaCha12, so **streams differ from upstream `rand`**, but
//! every consumer in this workspace only relies on determinism per seed,
//! which holds.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods for sampling typed values; blanket-implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type
    /// (`f32`/`f64` in `[0, 1)`, full-width integers, `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Maps 64 uniform bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        unit_f64(bits)
    }
}
impl Standard for f32 {
    fn sample(bits: u64) -> f32 {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}
impl Standard for u32 {
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}
impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Uniform f64 in `[0, 1)` from 53 high bits.
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(
    i32 => i64, u32 => u64, i64 => i128, u64 => u64, usize => u64, i8 => i64,
    u8 => u64, i16 => i64, u16 => u64
);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let f = unit_f64(rng.next_u64()) as $t;
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// (Blackman & Vigna), seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3..7);
            assert!((-3..7).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&i));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
