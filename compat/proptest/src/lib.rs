//! Offline mini property-testing framework with a `proptest`-shaped API.
//!
//! The registry is unreachable in this build environment, so this crate
//! reimplements the subset of `proptest` the workspace's property tests
//! use: the [`proptest!`] macro (`pat in strategy` arguments plus an
//! optional `#![proptest_config(..)]`), [`Strategy`] with `prop_map`,
//! numeric range strategies, tuples, [`collection::vec`],
//! [`option::of`], and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   baked into the panic message via the normal assert formatting.
//! * **Deterministic seeding** — case `k` of test `t` derives its RNG
//!   seed from `hash(t) ⊕ k`, so failures reproduce without a persistence
//!   file.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Run configuration: how many random cases each property executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds case `case` of the test named `name` reproducibly.
    pub fn deterministic(case: u64, name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i32, u32, i64, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D));

/// Always generates a clone of the wrapped value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among same-valued strategies, built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms. Weights must not all be
    /// zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
        let mut r = rng.gen_range(0..total);
        for (w, strat) in &self.arms {
            if r < *w {
                return strat.generate(rng);
            }
            r -= w;
        }
        unreachable!("weights sum covers the draw")
    }
}

/// Weighted (`w => strategy`) or uniform choice among strategies
/// producing the same value type (`proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size` (a `usize` for fixed length, or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A length specification for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `Option` strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `None` about a quarter of the time, `Some(inner)`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, reporting the formatted message
/// on failure. (No shrinking: this panics immediately.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng =
                        $crate::TestRng::deterministic(case as u64, stringify!($name));
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_tuples_compose(p in (0..10, 0..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..19).contains(&p));
        }

        #[test]
        fn vecs_respect_size_bounds(
            v in prop::collection::vec(-1.0f32..1.0, 3..=7),
            o in prop::option::of(1u32..4),
        ) {
            prop_assert!((3..=7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let s = 0u64..1000;
        let a: Vec<u64> = (0..5)
            .map(|c| Strategy::generate(&s, &mut crate::TestRng::deterministic(c, "t")))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| Strategy::generate(&s, &mut crate::TestRng::deterministic(c, "t")))
            .collect();
        assert_eq!(a, b);
    }
}
