//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, and the
//! workspace only ever *derives* `Serialize`/`Deserialize` — nothing in
//! the tree drives an actual serializer (I/O goes through the hand-rolled
//! text format in `dgr-io`). So this stub provides the trait names the
//! `use serde::{Deserialize, Serialize}` imports resolve to, and the
//! `derive` feature re-exports no-op derive macros of the same names.
//! If real serialization is ever needed, swap this path dependency back
//! to the registry crate — no call sites change.

/// Marker standing in for `serde::Serialize`. Never implemented by the
/// no-op derive; do not bound on it.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`. Never implemented by the
/// no-op derive; do not bound on it.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
