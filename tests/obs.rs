//! Observability integration tests: telemetry determinism, curve
//! retention, and the `dgr` CLI's `--trace`/`--telemetry` flags end to
//! end (spawned binary, emitted files validated).

use dgr::core::{DgrConfig, DgrRouter, RouteHooks, CURVE_POINTS};
use dgr::grid::Design;
use dgr::io::{IspdLikeConfig, IspdLikeGenerator};
use dgr::obs::{IterationRow, TelemetrySink};

fn small_design(seed: u64) -> Design {
    IspdLikeGenerator::new(IspdLikeConfig {
        width: 24,
        height: 24,
        num_nets: 80,
        num_layers: 5,
        seed,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config")
}

fn quick_config(seed: u64) -> DgrConfig {
    DgrConfig {
        iterations: 90,
        seed,
        ..DgrConfig::default()
    }
}

fn route_telemetry(design: &Design, cfg: &DgrConfig) -> String {
    let mut hooks = RouteHooks {
        telemetry: Some(TelemetrySink::in_memory()),
        skip_rss: true, // RSS is the one nondeterministic field
        ..RouteHooks::default()
    };
    DgrRouter::new(cfg.clone())
        .route_with_hooks(design, &mut hooks)
        .expect("route");
    hooks
        .telemetry
        .expect("sink retained")
        .memory_contents()
        .expect("in-memory sink")
        .to_string()
}

/// Same seed, same thread count: the telemetry stream is byte-identical
/// run to run (extends the PR-1 determinism contract from tensors to the
/// observability layer).
#[test]
fn telemetry_jsonl_is_deterministic_for_fixed_seed() {
    let design = small_design(11);
    let cfg = quick_config(3);
    let a = route_telemetry(&design, &cfg);
    let b = route_telemetry(&design, &cfg);
    assert!(!a.is_empty());
    assert_eq!(a, b, "telemetry diverged between identical runs");
    // skip_rss means unmeasured, which serializes as null — never 0
    assert!(a.contains("\"mem_rss\":null"), "skipped RSS must be null");
    assert!(!a.contains("\"mem_rss\":0"), "mem_rss must never be 0");
}

#[test]
fn telemetry_rows_cover_every_iteration_with_full_schema() {
    let design = small_design(7);
    let cfg = quick_config(1);
    let text = route_telemetry(&design, &cfg);
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= cfg.iterations,
        "expected ≥ {} rows, got {}",
        cfg.iterations,
        lines.len()
    );
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "row {i} shape"
        );
        for key in IterationRow::KEYS {
            assert!(
                line.contains(&format!("\"{key}\":")),
                "row {i} missing {key}"
            );
        }
        assert!(
            line.starts_with(&format!("{{\"iter\":{i},")),
            "row {i} index"
        );
    }
}

/// `TrainReport::curve` is populated, bounded, ordered, and consistent
/// with the final loss — so downstream consumers (`dgr compare`, fig5)
/// can read it instead of re-deriving trajectories.
#[test]
fn train_report_retains_downsampled_curve() {
    let design = small_design(2);
    let cfg = quick_config(5);
    let solution = DgrRouter::new(cfg.clone()).route(&design).expect("route");
    let report = solution.train_report.expect("train report");
    let curve = &report.curve;
    assert!(!curve.is_empty());
    assert!(
        curve.len() <= (CURVE_POINTS + 1) * (cfg.adaptive_rounds + 1),
        "curve too long: {}",
        curve.len()
    );
    assert!(curve.windows(2).all(|w| w[0].iter < w[1].iter), "unordered");
    let last = curve.last().unwrap();
    assert_eq!(last.loss.to_bits(), report.final_loss.to_bits());
    assert!(curve
        .iter()
        .all(|p| p.loss.is_finite() && p.overflow >= 0.0));
}

/// Full CLI round trip: `dgr route --trace --telemetry --quiet` produces
/// a Chrome-trace-loadable JSON array and one JSONL row per iteration.
#[test]
fn cli_route_emits_trace_and_telemetry_files() {
    let dir = std::env::temp_dir().join("dgr_obs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let design_path = dir.join("design.txt");
    let trace_path = dir.join("trace.json");
    let telemetry_path = dir.join("telemetry.jsonl");
    std::fs::write(&design_path, dgr::io::write_design(&small_design(9))).unwrap();

    let iters = 40;
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_dgr"))
        .env("DGR_LEDGER", "off") // keep CLI tests off the real ledger
        .args([
            "route",
            design_path.to_str().unwrap(),
            "--iterations",
            &iters.to_string(),
            "--quiet",
            "--trace",
            trace_path.to_str().unwrap(),
            "--telemetry",
            telemetry_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dgr");
    assert!(
        out.status.success(),
        "dgr route failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("span"), "summary table missing:\n{stdout}");
    assert!(!stdout.contains("[dgr] iter"), "--quiet leaked progress");

    // Chrome trace: a JSON array of events with the expected span names.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let trimmed = trace.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
    for needle in [
        "\"ph\":\"M\"",
        "\"ph\":\"X\"",
        "\"name\":\"forward\"",
        "\"name\":\"backward\"",
        "\"name\":\"extract\"",
        "\"cat\":\"route\"",
    ] {
        assert!(trace.contains(needle), "trace missing {needle}");
    }

    // Telemetry: ≥ 1 JSONL row per iteration, full schema on each row.
    let telemetry = std::fs::read_to_string(&telemetry_path).unwrap();
    let lines: Vec<&str> = telemetry.lines().collect();
    assert!(lines.len() >= iters, "{} rows < {iters}", lines.len());
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
        for key in IterationRow::KEYS {
            assert!(line.contains(&format!("\"{key}\":")), "missing {key}");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Progress lines reach stderr by default and honor `--progress N`.
#[test]
fn cli_route_progress_line_appears_without_quiet() {
    let dir = std::env::temp_dir().join("dgr_obs_cli_progress_test");
    std::fs::create_dir_all(&dir).unwrap();
    let design_path = dir.join("design.txt");
    std::fs::write(&design_path, dgr::io::write_design(&small_design(4))).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_dgr"))
        .env("DGR_LEDGER", "off")
        .args([
            "route",
            design_path.to_str().unwrap(),
            "--iterations",
            "30",
            "--progress",
            "10",
        ])
        .output()
        .expect("spawn dgr");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[dgr] iter"),
        "no progress line on stderr:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
