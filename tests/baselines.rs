//! Cross-router integration tests: every router must produce a valid,
//! fully connected solution on the same designs, and the exact solver
//! must agree with brute force.

use dgr::baseline::{IlpSolver, LagrangianRouter, SequentialRouter, SprouteRouter};
use dgr::core::{DgrConfig, DgrRouter, RoutingSolution};
use dgr::grid::{Design, Point, Rect};
use dgr::io::{table1_design, IspdLikeConfig, IspdLikeGenerator, Table1Params};

fn shared_design(seed: u64) -> Design {
    IspdLikeGenerator::new(IspdLikeConfig {
        width: 24,
        height: 24,
        num_nets: 80,
        num_layers: 5,
        seed,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config")
}

fn assert_valid(design: &Design, solution: &RoutingSolution, router: &str) {
    assert_eq!(
        solution.routes.len(),
        design.num_nets(),
        "{router}: net count"
    );
    for (net, route) in design.nets.iter().zip(&solution.routes) {
        let distinct: std::collections::HashSet<_> = net.pins.iter().collect();
        if distinct.len() < 2 {
            continue;
        }
        for pin in distinct {
            let covered = route
                .paths
                .iter()
                .any(|p| p.corners.first() == Some(pin) || p.corners.last() == Some(pin));
            assert!(covered, "{router}: pin {pin} of {} unconnected", net.name);
        }
        // rectilinear, in-grid corner chains
        for path in &route.paths {
            for w in path.corners.windows(2) {
                assert!(w[0].is_aligned_with(w[1]), "{router}: diagonal hop");
                assert!(design.grid.contains(w[0]) && design.grid.contains(w[1]));
            }
        }
    }
    // demand must match a from-scratch remeasure
    let mut copy = solution.clone();
    copy.remeasure(design).unwrap();
    assert_eq!(
        copy.demand.wire_slice(),
        solution.demand.wire_slice(),
        "{router}: stale demand"
    );
}

#[test]
fn all_routers_produce_valid_solutions() {
    let design = shared_design(21);
    let cfg = DgrConfig {
        iterations: 100,
        ..DgrConfig::default()
    };
    let dgr = DgrRouter::new(cfg).route(&design).unwrap();
    assert_valid(&design, &dgr, "dgr");
    let seq = SequentialRouter::default().route(&design).unwrap();
    assert_valid(&design, &seq, "sequential");
    let spr = SprouteRouter::default().route(&design).unwrap();
    assert_valid(&design, &spr, "sproute");
    let lag = LagrangianRouter::default().route(&design).unwrap();
    assert_valid(&design, &lag, "lagrangian");
}

#[test]
fn all_routers_meet_the_steiner_lower_bound() {
    let design = shared_design(23);
    let bound: u64 = design
        .nets
        .iter()
        .map(|n| dgr::rsmt::rsmt(&n.pins).map(|t| t.length()).unwrap_or(0))
        .sum();
    let cfg = DgrConfig {
        iterations: 100,
        ..DgrConfig::default()
    };
    for (name, wl) in [
        (
            "dgr",
            DgrRouter::new(cfg)
                .route(&design)
                .unwrap()
                .metrics
                .total_wirelength,
        ),
        (
            "sequential",
            SequentialRouter::default()
                .route(&design)
                .unwrap()
                .metrics
                .total_wirelength,
        ),
        (
            "sproute",
            SprouteRouter::default()
                .route(&design)
                .unwrap()
                .metrics
                .total_wirelength,
        ),
        (
            "lagrangian",
            LagrangianRouter::default()
                .route(&design)
                .unwrap()
                .metrics
                .total_wirelength,
        ),
    ] {
        assert!(
            wl >= bound,
            "{name}: wirelength {wl} below Steiner bound {bound}"
        );
    }
}

#[test]
fn ilp_agrees_with_brute_force_on_table1_miniatures() {
    for seed in [1u64, 2, 3] {
        let design = table1_design(&Table1Params {
            grid: 12,
            cap: 1.0,
            nets: 6,
            box_size: 5,
            seed,
        })
        .unwrap();
        let solver = IlpSolver::default();
        let bnb = solver.solve(&design).unwrap();
        let bf = solver.brute_force(&design).unwrap();
        assert!(
            (bnb.overflow - bf).abs() < 1e-6,
            "seed {seed}: bnb {} vs brute force {bf}",
            bnb.overflow
        );
    }
}

#[test]
fn dgr_matches_ilp_on_a_separable_instance() {
    // disjoint net boxes → every component is tiny and both solvers must
    // reach zero overflow
    let design = table1_design(&Table1Params {
        grid: 40,
        cap: 2.0,
        nets: 10,
        box_size: 4,
        seed: 77,
    })
    .unwrap();
    let ilp = IlpSolver::default().solve(&design).unwrap();
    let mut cfg = DgrConfig::ilp_comparison();
    cfg.iterations = 300;
    let dgr = DgrRouter::new(cfg).route(&design).unwrap();
    // cap 2 with 3-pin nets in small boxes: both should be overflow-free
    // on wire demand
    let mut wire = vec![0.0f32; design.grid.num_edges()];
    for route in &dgr.routes {
        for path in &route.paths {
            for w in path.corners.windows(2) {
                for e in design.grid.edges_on_segment(w[0], w[1]).unwrap() {
                    wire[e.index()] += 1.0;
                }
            }
        }
    }
    let dgr_overflow: f64 = wire
        .iter()
        .zip(design.capacity.as_slice())
        .map(|(&d, &c)| ((d - c).max(0.0)) as f64)
        .sum();
    assert_eq!(ilp.overflow, 0.0);
    assert_eq!(dgr_overflow, 0.0);
}

#[test]
fn congestion_hotspot_is_respected_by_all_routers() {
    // a blocked band forces every router around it
    let grid = dgr::grid::GcellGrid::new(16, 16).unwrap();
    let mut b = dgr::grid::CapacityBuilder::uniform(&grid, 3.0);
    b.scale_region(&grid, Rect::new(Point::new(6, 0), Point::new(8, 12)), 0.0);
    let cap = b.build(&grid).unwrap();
    let design = Design::new(
        grid,
        cap,
        vec![dgr::grid::Net::new(
            "crossing",
            vec![Point::new(1, 3), Point::new(14, 3)],
        )],
        5,
    )
    .unwrap();
    for (name, sol) in [
        (
            "sequential",
            SequentialRouter::default().route(&design).unwrap(),
        ),
        ("sproute", SprouteRouter::default().route(&design).unwrap()),
        (
            "lagrangian",
            LagrangianRouter::default().route(&design).unwrap(),
        ),
    ] {
        assert_eq!(
            sol.metrics.overflow.overflowed_edges, 0,
            "{name} crossed the blocked band"
        );
        assert!(
            sol.metrics.total_wirelength > 13,
            "{name} did not detour: wl {}",
            sol.metrics.total_wirelength
        );
    }
}
