//! Acceptance test for the spatial-introspection layer: on a seeded
//! hotspot design the per-net attribution table must rank the nets that
//! cross the hotspot first (they are the only offenders), and the
//! rendered `dgr report` HTML must surface exactly those nets.

use dgr::core::{
    attribute_solution, CostWeights, DgrConfig, DgrRouter, RouteHooks, SnapshotConfig,
};
use dgr::grid::{CapacityBuilder, Design, GcellGrid, Net, Point, Rect};
use dgr::obs::{render_report, ReportInputs, SnapshotSink, SnapshotStream};

/// A 10×10 design with a capacity hotspot spanning columns x = 4..=5 at
/// full height: three horizontal nets must cross it, two vertical nets
/// at x = 0 / x = 9 never go near it.
fn hotspot_design() -> Design {
    let grid = GcellGrid::new(10, 10).unwrap();
    let mut b = CapacityBuilder::uniform(&grid, 2.0);
    // 2.0 × 0.25 = 0.5 tracks: every single wire through the hotspot
    // overflows its edge
    b.scale_region(&grid, Rect::new(Point::new(4, 0), Point::new(5, 9)), 0.25);
    let cap = b.build(&grid).unwrap();
    let nets = vec![
        Net::new("cross_a", vec![Point::new(1, 2), Point::new(8, 2)]),
        Net::new("cross_b", vec![Point::new(1, 4), Point::new(8, 4)]),
        Net::new("cross_c", vec![Point::new(1, 6), Point::new(8, 6)]),
        Net::new("far_left", vec![Point::new(0, 1), Point::new(0, 8)]),
        Net::new("far_right", vec![Point::new(9, 1), Point::new(9, 8)]),
    ];
    Design::new(grid, cap, nets, 3).unwrap()
}

fn route_with_snapshots(design: &Design) -> (dgr::core::RoutingSolution, String) {
    let cfg = DgrConfig {
        iterations: 80,
        seed: 17,
        ..DgrConfig::default()
    };
    let mut hooks = RouteHooks {
        snap: Some(SnapshotConfig {
            sink: SnapshotSink::in_memory(),
            every: 20,
        }),
        skip_rss: true,
        ..RouteHooks::default()
    };
    let solution = DgrRouter::new(cfg)
        .route_with_hooks(design, &mut hooks)
        .expect("route");
    let mut snap = hooks.snap.expect("sink retained");
    dgr::core::write_attribution(
        &mut snap.sink,
        design,
        &solution,
        &CostWeights::default(),
        "final",
    );
    let text = snap.sink.memory_contents().expect("in-memory").to_string();
    (solution, text)
}

/// The hotspot-crossing nets are the only offenders and occupy the top
/// of the ranking; the far nets never appear.
#[test]
fn hotspot_crossing_nets_rank_first() {
    let design = hotspot_design();
    let (solution, _) = route_with_snapshots(&design);
    let record = attribute_solution(&design, &solution, &CostWeights::default(), "final");

    assert!(
        record.ranked_nets >= 3,
        "the three crossing nets must all be offenders, got {:?}",
        record.nets
    );
    let crossing = ["cross_a", "cross_b", "cross_c"];
    for name in crossing {
        assert!(
            record.nets.iter().any(|n| n.name == name),
            "{name} missing from the offender table: {:?}",
            record.nets
        );
    }
    // the first three ranks are all hotspot crossers...
    for n in record.nets.iter().take(3) {
        assert!(
            crossing.contains(&n.name.as_str()),
            "rank led by non-crossing net {:?}",
            n
        );
    }
    // ...and the far nets are never charged at all
    for n in &record.nets {
        assert!(!n.name.starts_with("far_"), "clean far net charged: {n:?}");
        assert!(n.overflow_share > 0.0);
    }
    // shares are ranked worst-first
    assert!(record
        .nets
        .windows(2)
        .all(|w| w[0].overflow_share >= w[1].overflow_share));
}

/// The snapshot stream written during the run parses back, carries the
/// training + extract phases, and the rendered report's attribution
/// table shows the crossing nets and only them.
#[test]
fn report_html_surfaces_hotspot_offenders() {
    let design = hotspot_design();
    let (_, snaps) = route_with_snapshots(&design);

    let stream = SnapshotStream::parse(&snaps).expect("stream parses");
    let header = stream.header.expect("header present");
    assert_eq!((header.width, header.height), (10, 10));
    assert!(
        stream.snapshots.iter().any(|s| s.phase == "train"),
        "no training captures"
    );
    assert!(
        stream.snapshots.iter().any(|s| s.phase == "extract"),
        "no extraction capture"
    );
    // the hotspot columns carry capacity 0.5; elsewhere 2.0
    assert!(header.h_capacity.iter().any(|&c| (c - 0.5).abs() < 1e-6));
    let attribution = stream.attributions.last().expect("attribution written");
    assert!(attribution.ranked_nets >= 3);

    let html = render_report(&ReportInputs {
        title: "hotspot".to_string(),
        snapshots: Some(snaps),
        ..ReportInputs::default()
    })
    .expect("report renders");
    for name in ["cross_a", "cross_b", "cross_c"] {
        assert!(html.contains(name), "report missing offender {name}");
    }
    assert!(!html.contains("far_left"), "clean net listed in report");
    assert!(!html.contains("far_right"), "clean net listed in report");
    assert!(html.contains("<svg"), "no heatmap SVG in report");
    assert!(!html.contains("<script"), "report must stay script-free");
}
