//! Observatory integration tests: the live HTTP exporter answering
//! mid-run, the sampling profiler's collapsed-stack output, the
//! persistent run ledger driving `dgr history` / `dgr compare --ledger`,
//! Prometheus text-exposition grammar, and the Chrome trace round-trip
//! through `obs::parse`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

use dgr::grid::Design;
use dgr::io::{IspdLikeConfig, IspdLikeGenerator};
use dgr::obs::ledger;

/// In-process tests share the global obs registries; serialize them.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn small_design(seed: u64) -> Design {
    IspdLikeGenerator::new(IspdLikeConfig {
        width: 24,
        height: 24,
        num_nets: 80,
        num_layers: 5,
        seed,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config")
}

fn write_design(dir: &std::path::Path, seed: u64) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("design.txt");
    std::fs::write(&path, dgr::io::write_design(&small_design(seed))).unwrap();
    path
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to observatory");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// `--serve` answers `/metrics` and `/status` while the run iterates.
#[test]
fn serve_endpoints_answer_during_a_live_run() {
    let dir = std::env::temp_dir().join("dgr_observatory_serve_test");
    let design_path = write_design(&dir, 9);

    let mut child = Command::new(env!("CARGO_BIN_EXE_dgr"))
        .env("DGR_LEDGER", "off")
        .args([
            "route",
            design_path.to_str().unwrap(),
            "--iterations",
            "5000",
            "--quiet",
            "--serve",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dgr");

    // the banner line names the bound address (port 0 → OS-assigned)
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let mut seen = Vec::new();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("observatory: http://") {
                    break rest.split('/').next().unwrap_or("").to_string();
                }
                seen.push(line);
            }
            _ => panic!(
                "dgr exited before announcing the observatory address; stderr so far:\n{}",
                seen.join("\n")
            ),
        }
    };

    // the RSS gauge is seeded before the listener comes up, so the very
    // first scrape already carries a family; poll briefly anyway in case
    // the accept loop is still warming up
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let metrics = loop {
        let (status, metrics) = http_get(&addr, "/metrics");
        assert_eq!(status, 200, "/metrics status");
        if metrics.contains("# TYPE dgr_") || std::time::Instant::now() > deadline {
            break metrics;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        metrics.contains("# TYPE dgr_"),
        "no typed dgr_ metric families:\n{metrics}"
    );

    let (status, body) = http_get(&addr, "/status");
    assert_eq!(status, 200, "/status status");
    assert!(body.contains("\"job\":\"route\""), "status json:\n{body}");
    for key in ["\"phase\":", "\"iter\":", "\"total_iters\":", "\"rss\":"] {
        assert!(body.contains(key), "status json missing {key}:\n{body}");
    }

    let (status, _) = http_get(&addr, "/nope");
    assert_eq!(status, 404);

    child.kill().expect("kill dgr");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--profile` writes a non-empty collapsed-stack file whose frames name
/// real pipeline phases, and the file round-trips through the parser.
#[test]
fn cli_profile_writes_collapsed_stacks_naming_real_phases() {
    let dir = std::env::temp_dir().join("dgr_observatory_profile_test");
    let design_path = write_design(&dir, 5);
    let folded_path = dir.join("out.folded");

    let out = Command::new(env!("CARGO_BIN_EXE_dgr"))
        .env("DGR_LEDGER", "off")
        .args([
            "route",
            design_path.to_str().unwrap(),
            "--iterations",
            "90",
            "--quiet",
            "--profile",
            folded_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dgr");
    assert!(
        out.status.success(),
        "dgr route --profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("profile →"), "no profile line:\n{stdout}");

    let text = std::fs::read_to_string(&folded_path).expect("folded file written");
    assert!(!text.trim().is_empty(), "folded profile is empty");
    for line in text.lines() {
        let (_stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        count.parse::<u64>().expect("count is an integer");
    }

    let profile = dgr::obs::FoldedProfile::parse(&text);
    assert!(profile.samples > 0, "no samples recorded");
    assert!(profile.busy_samples() > 0, "profiler saw no open spans");
    let phases = ["route", "train", "forward", "backward", "extract"];
    let hot = profile.hot_frames();
    assert!(
        hot.iter()
            .any(|(frame, _)| phases.iter().any(|p| frame == p)),
        "no real phase among hot frames: {hot:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Two identical runs append two verifiable, comparable ledger records;
/// `dgr history` renders both plus the per-phase delta block, and
/// `dgr compare --ledger` diffs them.
#[test]
fn ledger_accumulates_runs_and_history_renders_deltas() {
    let dir = std::env::temp_dir().join("dgr_observatory_ledger_test");
    let design_path = write_design(&dir, 3);
    let ledger_path = dir.join("ledger.jsonl");
    let _ = std::fs::remove_file(&ledger_path);

    for _ in 0..2 {
        let out = Command::new(env!("CARGO_BIN_EXE_dgr"))
            .env("DGR_LEDGER", &ledger_path)
            .args([
                "route",
                design_path.to_str().unwrap(),
                "--iterations",
                "40",
                "--quiet",
            ])
            .output()
            .expect("spawn dgr");
        assert!(
            out.status.success(),
            "dgr route failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("ledger           : appended"),
            "no ledger confirmation line"
        );
    }

    let records = ledger::load(&ledger_path);
    assert_eq!(records.len(), 2, "two runs → two ledger records");
    for r in &records {
        assert!(r.verify(), "record failed hash verification");
        assert_eq!(r.cmd, "route");
        assert_eq!(r.design, "design");
        assert_eq!(r.iterations, 40);
        assert!(r.phases.contains_key("train"), "phases: {:?}", r.phases);
        assert!(r.it_per_s > 0.0);
    }
    assert_eq!(
        records[0].config_fp, records[1].config_fp,
        "identical runs must be comparable"
    );
    // the routed result is deterministic, so the quality metrics agree
    assert_eq!(records[0].wirelength, records[1].wirelength);
    assert_eq!(records[0].loss, records[1].loss);

    let out = Command::new(env!("CARGO_BIN_EXE_dgr"))
        .env("DGR_LEDGER", &ledger_path)
        .args(["history"])
        .output()
        .expect("spawn dgr history");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let table_rows = stdout
        .lines()
        .filter(|l| l.starts_with("20") && l.contains(" route "))
        .count();
    assert_eq!(table_rows, 2, "history must list both runs:\n{stdout}");
    assert!(
        stdout.contains("delta vs previous comparable run"),
        "missing delta block:\n{stdout}"
    );
    assert!(
        stdout.contains("phase train"),
        "missing per-phase delta:\n{stdout}"
    );
    assert!(stdout.contains("2 record(s)"), "record count:\n{stdout}");

    let out = Command::new(env!("CARGO_BIN_EXE_dgr"))
        .env("DGR_LEDGER", &ledger_path)
        .args(["compare", "--ledger"])
        .output()
        .expect("spawn dgr compare --ledger");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("comparing the last two `route` runs"),
        "compare --ledger:\n{stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The `/metrics` payload obeys the Prometheus text exposition format:
/// typed families, legal metric names, numeric sample values, cumulative
/// histogram buckets capped by `+Inf`.
#[test]
fn prometheus_text_follows_the_exposition_grammar() {
    let _guard = OBS_LOCK.lock().unwrap();
    dgr::obs::set_enabled(true);
    dgr::obs::counter("observatory.test.requests").add(7);
    dgr::obs::gauge("observatory.test.depth").set(3.5);
    let h = dgr::obs::histogram("observatory.test.latency");
    for v in [0, 1, 3, 200, 131071] {
        h.record(v);
    }
    let text = dgr::obs::prometheus_text();
    dgr::obs::set_enabled(false);

    let name_ok = |name: &str| {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };

    let mut families: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            assert!(name_ok(name), "bad family name: {line}");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "bad family type: {line}"
            );
            families.push(name.to_string());
            continue;
        }
        assert!(!line.is_empty(), "blank line in exposition");
        let (series, value) = line.rsplit_once(' ').expect("`series value` shape");
        let name = series.split('{').next().unwrap();
        assert!(name_ok(name), "bad metric name: {line}");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "bad sample value: {line}"
        );
        assert!(
            families.iter().any(|f| name == f
                || name.strip_prefix(f.as_str()).is_some_and(
                    |s| s.is_empty() || ["_bucket", "_sum", "_count", "_quantile"].contains(&s)
                )),
            "sample before its TYPE line: {line}"
        );
    }

    // histogram specifics: cumulative buckets ending at +Inf == _count
    let bucket_counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("dgr_observatory_test_latency_bucket"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(bucket_counts.len() >= 2, "want buckets:\n{text}");
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "buckets must be cumulative: {bucket_counts:?}"
    );
    let count: u64 = text
        .lines()
        .find(|l| l.starts_with("dgr_observatory_test_latency_count"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .expect("_count sample");
    assert_eq!(*bucket_counts.last().unwrap(), count, "+Inf == _count");
    assert!(
        text.lines()
            .any(|l| l.starts_with("dgr_observatory_test_latency_quantile{quantile=\"0.95\"}")),
        "quantile gauge family missing:\n{text}"
    );
    assert!(
        text.contains("dgr_observatory_test_requests 7"),
        "counter sample:\n{text}"
    );
}

/// The Chrome trace written by the span registry parses back through
/// `obs::parse` as an array of complete events with the span names.
#[test]
fn chrome_trace_round_trips_through_obs_parse() {
    let _guard = OBS_LOCK.lock().unwrap();
    dgr::obs::set_enabled(true);
    {
        let _outer = dgr::obs::span("observatory", "obs-roundtrip-outer");
        let _inner = dgr::obs::span("observatory", "obs-roundtrip-inner");
    }
    let trace = dgr::obs::chrome_trace();
    dgr::obs::set_enabled(false);

    let value = dgr::obs::parse::parse_json(&trace).expect("trace is valid JSON");
    let dgr::obs::parse::JsonValue::Arr(events) = value else {
        panic!("trace must be a JSON array");
    };
    assert!(!events.is_empty());
    let mut seen = Vec::new();
    for e in &events {
        let ph = e.str("ph").expect("event phase");
        assert!(["X", "M"].contains(&ph), "unexpected phase {ph}");
        if ph == "X" {
            assert!(e.num("ts").is_some() && e.num("dur").is_some());
        }
        if let Some(name) = e.str("name") {
            seen.push(name.to_string());
        }
    }
    for needle in ["obs-roundtrip-outer", "obs-roundtrip-inner"] {
        assert!(
            seen.iter().any(|n| n == needle),
            "span {needle} missing from trace"
        );
    }
}

// ---------------------------------------------------------------------
// Sentinel: convergence-health rules over real training telemetry
// ---------------------------------------------------------------------

/// Routes `small_design(seed)` in-process with an in-memory telemetry
/// sink and returns the captured JSONL (no global obs state touched).
fn telemetry_of_run(seed: u64, learning_rate: f32, iterations: usize) -> String {
    let design = small_design(seed);
    let cfg = dgr::core::DgrConfig {
        iterations,
        seed,
        learning_rate,
        ..dgr::core::DgrConfig::default()
    };
    let mut hooks = dgr::core::RouteHooks {
        telemetry: Some(dgr::obs::TelemetrySink::in_memory()),
        ..dgr::core::RouteHooks::default()
    };
    let _ = dgr::core::DgrRouter::new(cfg).route_with_hooks(&design, &mut hooks);
    hooks
        .telemetry
        .as_ref()
        .and_then(|s| s.memory_contents())
        .expect("run produced telemetry")
        .to_string()
}

/// A healthy run (stock config, seed 11) trips no sentinel rule.
#[test]
fn healthy_run_trips_no_sentinel_rules() {
    let text = telemetry_of_run(11, 0.3, 200);
    let rows = dgr::obs::rows_from_jsonl(&text).expect("telemetry parses");
    assert!(rows.len() >= 100, "expected a full run, got {}", rows.len());
    let findings = dgr::obs::analyze_rows(&rows);
    assert!(
        findings.is_empty(),
        "healthy run tripped: {:?}",
        findings
            .iter()
            .map(|f| (f.rule, f.iter, f.message.clone()))
            .collect::<Vec<_>>()
    );
}

/// An absurd learning rate destroys convergence — Adam + the sigmoid
/// overflow activation saturate immediately, pinning loss and overflow
/// flat, which is exactly the plateau the stall rule watches for. The
/// sentinel notices and `dgr doctor` exits nonzero with evidence. (True
/// loss explosion cannot be provoked through the public config — the
/// divergence rule is exercised by the committed fixture instead.)
#[test]
fn diverging_run_trips_the_sentinel_and_doctor_exits_nonzero() {
    let text = telemetry_of_run(11, 1000.0, 600);
    let rows = dgr::obs::rows_from_jsonl(&text).expect("telemetry parses");
    let findings = dgr::obs::analyze_rows(&rows);
    assert!(
        !findings.is_empty(),
        "pathological-LR run produced no findings over {} rows",
        rows.len()
    );
    assert!(
        findings.iter().any(|f| f.rule == "overflow_stall"),
        "unexpected rules: {:?}",
        findings.iter().map(|f| f.rule).collect::<Vec<_>>()
    );
    // ranked output is stable: worst first, every finding has evidence
    assert!(findings[0].severity >= findings[findings.len() - 1].severity);
    assert!(!findings[0].evidence.is_empty());

    // the offline CLI agrees and gates (nonzero exit, evidence printed)
    let dir = std::env::temp_dir().join("dgr_sentinel_doctor_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("diverging.jsonl");
    std::fs::write(&path, &text).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_dgr"))
        .args(["doctor", "--telemetry", path.to_str().unwrap()])
        .output()
        .expect("run dgr doctor");
    assert!(!out.status.success(), "doctor should exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("evidence: iterations"), "stdout:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injecting a NaN row into otherwise-healthy telemetry trips the
/// poisoning rule exactly once, at the injected iteration.
#[test]
fn nan_injection_trips_the_poisoning_rule() {
    let text = telemetry_of_run(11, 0.3, 120);
    let mut rows = dgr::obs::rows_from_jsonl(&text).expect("telemetry parses");
    assert!(rows.len() > 50);
    rows[50].loss = f32::NAN;
    let findings = dgr::obs::analyze_rows(&rows);
    let poisoned: Vec<_> = findings.iter().filter(|f| f.rule == "poisoning").collect();
    assert_eq!(poisoned.len(), 1, "findings: {findings:?}");
    assert_eq!(poisoned[0].iter, rows[50].iter as u64);
}

/// The committed CI fixture keeps failing the doctor (the gate the
/// workflow relies on).
#[test]
fn doctor_fails_on_the_committed_diverging_fixture() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/diverging_telemetry.jsonl"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_dgr"))
        .args(["doctor", "--telemetry", fixture])
        .output()
        .expect("run dgr doctor");
    assert!(!out.status.success(), "doctor should exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("divergence"), "stdout:\n{stdout}");
}
