//! Shared HTTP client helpers for the `dgrd` integration suites
//! (`tests/daemon.rs`, `tests/daemon_protocol.rs`).
//!
//! Everything is std-only and deliberately low-level: the fault-injection
//! entry point [`raw_request`] writes arbitrary bytes so conformance
//! tests can send malformed heads, while [`request`] builds well-formed
//! `Connection: close` requests like a real client.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dgr::obs::parse::{parse_json, JsonValue};

/// A parsed HTTP response: status line code plus body text.
pub struct Response {
    pub status: u16,
    pub body: String,
}

impl Response {
    /// Parses the body as JSON (panics with context on failure).
    pub fn json(&self) -> JsonValue {
        parse_json(&self.body).unwrap_or_else(|e| panic!("body is not JSON ({e}): {:?}", self.body))
    }
}

/// Sends raw bytes and returns whatever comes back — the fault-injection
/// client. An empty response (peer reset) maps to status 0.
pub fn raw_request(addr: SocketAddr, bytes: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect to dgrd");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("write request");
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Response { status, body }
}

/// A well-formed one-shot request.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let body = body.unwrap_or("");
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nHost: dgrd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, msg.as_bytes())
}

pub fn get(addr: SocketAddr, path: &str) -> Response {
    request(addr, "GET", path, None)
}

pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> Response {
    request(addr, "POST", path, Some(body))
}

pub fn delete(addr: SocketAddr, path: &str) -> Response {
    request(addr, "DELETE", path, None)
}

/// Submits a job spec and returns the new job id (panics on non-202).
pub fn submit_job(addr: SocketAddr, spec: &str) -> u64 {
    let resp = post_json(addr, "/jobs", spec);
    assert_eq!(resp.status, 202, "submit failed: {}", resp.body);
    resp.json().get("id").and_then(JsonValue::as_u64).unwrap()
}

/// Polls `GET /jobs/{id}` until `pred(job)` holds; panics on timeout.
pub fn poll_job(
    addr: SocketAddr,
    id: u64,
    timeout: Duration,
    pred: impl Fn(&JsonValue) -> bool,
) -> JsonValue {
    let deadline = Instant::now() + timeout;
    loop {
        let resp = get(addr, &format!("/jobs/{id}"));
        assert_eq!(resp.status, 200, "job {id} poll failed: {}", resp.body);
        let job = resp.json();
        if pred(&job) {
            return job;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting on job {id}; last state: {}",
            resp.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls until the job's `state` matches.
pub fn wait_state(addr: SocketAddr, id: u64, state: &str, timeout: Duration) -> JsonValue {
    poll_job(addr, id, timeout, |j| {
        j.get("state").and_then(JsonValue::as_str) == Some(state)
    })
}

/// Polls until the job is in any terminal state and returns it.
pub fn wait_terminal(addr: SocketAddr, id: u64, timeout: Duration) -> JsonValue {
    poll_job(addr, id, timeout, |j| {
        matches!(
            j.get("state").and_then(JsonValue::as_str),
            Some("done" | "failed" | "cancelled")
        )
    })
}

/// The job's `state` field.
pub fn state_of(job: &JsonValue) -> String {
    job.get("state")
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_string()
}

/// The job's `run_seq` field (panics when absent).
pub fn run_seq_of(job: &JsonValue) -> u64 {
    job.get("run_seq")
        .and_then(JsonValue::as_u64)
        .expect("job has run_seq")
}
