//! Thread-count invariance of the full route pipeline.
//!
//! The parallel front end (candidate fan-out, forest build, extraction
//! rasters) writes results into index-ordered slots and the training
//! reductions are chunk-pinned, so `route` must produce byte-identical
//! output at any worker count. This routes the golden-guide cases at 1,
//! 2, and 8 threads and asserts all three renderings match each other
//! *and* the committed golden files — the same bytes CI pins at 4
//! threads in `tests/golden.rs`.

use std::path::PathBuf;

use dgr::autodiff::parallel;
use dgr::core::{DgrConfig, DgrRouter};
use dgr::post::{assign_layers, AssignConfig, RouteGuide};
use dgr_oracle::{case_rng, gen_design, CaseSpec, CheckKind, EXEC_LOCK};

const GOLDEN_SEEDS: [u64; 2] = [11, 23];

fn guide_text(seed: u64) -> String {
    let spec = CaseSpec {
        num_layers: 3,
        ..CaseSpec::sample(CheckKind::PathCost, seed)
    };
    let design = gen_design(&spec, &mut case_rng(&spec));
    let cfg = DgrConfig {
        iterations: 60,
        seed,
        ..DgrConfig::default()
    };
    let solution = DgrRouter::new(cfg).route(&design).expect("routes");
    let assigned = assign_layers(&design, &solution, AssignConfig::default()).expect("≥ 2 layers");
    RouteGuide::from_assignment(&design, &assigned).to_text()
}

#[test]
fn route_output_is_byte_identical_across_thread_counts() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");

    let _guard = EXEC_LOCK.lock().unwrap();
    let mut per_thread: Vec<(usize, Vec<String>)> = Vec::new();
    for threads in [1, 2, 8] {
        parallel::set_num_threads(threads);
        let texts = GOLDEN_SEEDS.iter().map(|&s| guide_text(s)).collect();
        per_thread.push((threads, texts));
    }
    parallel::set_num_threads(0);
    drop(_guard);

    let (_, baseline) = &per_thread[0];
    for (threads, texts) in &per_thread[1..] {
        for (i, seed) in GOLDEN_SEEDS.iter().enumerate() {
            assert!(
                texts[i] == baseline[i],
                "seed {seed}: {threads}-thread guide diverged from 1-thread guide"
            );
        }
    }

    // Cross-thread-count invariance holds in any kernel mode, but the
    // committed goldens are chunked-mode bytes; skip the file comparison
    // when the scalar fallback is forced.
    if dgr::autodiff::kernel_mode() != dgr::autodiff::KernelMode::Chunked {
        eprintln!("thread_determinism: scalar kernel mode — skipping golden-file comparison");
        return;
    }

    // The committed goldens were generated at 4 threads; matching them
    // proves 1/2/8 threads agree with 4 as well.
    for (i, seed) in GOLDEN_SEEDS.iter().enumerate() {
        let path = dir.join(format!("guide_seed{seed}.txt"));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        assert!(
            baseline[i] == want,
            "seed {seed}: guide diverged from committed golden {}",
            path.display()
        );
    }
}
