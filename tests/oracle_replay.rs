//! Replays every dumped fuzz reproducer under `tests/fuzz_cases/` as a
//! regular test.
//!
//! When `oracle_fuzz` finds a mismatch it shrinks the case and writes a
//! JSON file here; committing that file turns the one-off fuzz failure
//! into a permanent regression test. Cases that have been fixed stay in
//! the directory as cheap regression coverage.

use std::path::PathBuf;

use dgr_oracle::{load_case, run_case};

#[test]
fn all_dumped_fuzz_cases_pass() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_cases");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/fuzz_cases exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no case files in {} — at least the seed examples should exist",
        dir.display()
    );
    for path in entries {
        let spec = load_case(&path).unwrap_or_else(|e| panic!("{e}"));
        if let Err(m) = run_case(&spec) {
            panic!("replay of {} failed: {m}", path.display());
        }
    }
}
