//! Byte-exact golden snapshots of `dgr_post::guide` output.
//!
//! Two fixed oracle-generated designs are routed end to end, assigned to
//! layers, and rendered as route-guide text; the result must match the
//! committed files under `tests/golden/` byte for byte. The pipeline is
//! pinned to 4 reduction chunks so floating-point sums are reproducible
//! across machines (see the autodiff determinism tests).
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! DGR_UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use std::path::PathBuf;

use dgr::autodiff::parallel;
use dgr::core::{DgrConfig, DgrRouter};
use dgr::post::{assign_layers, AssignConfig, RouteGuide};
use dgr_oracle::{case_rng, gen_design, CaseSpec, CheckKind, EXEC_LOCK};

const GOLDEN_SEEDS: [u64; 2] = [11, 23];

fn guide_text(seed: u64) -> String {
    let spec = CaseSpec {
        // PathCost specs keep instances small but still multi-net
        num_layers: 3,
        ..CaseSpec::sample(CheckKind::PathCost, seed)
    };
    let design = gen_design(&spec, &mut case_rng(&spec));
    let cfg = DgrConfig {
        iterations: 60,
        seed,
        ..DgrConfig::default()
    };
    let solution = DgrRouter::new(cfg).route(&design).expect("routes");
    let assigned = assign_layers(&design, &solution, AssignConfig::default()).expect("≥ 2 layers");
    RouteGuide::from_assignment(&design, &assigned).to_text()
}

#[test]
fn guide_output_matches_golden_files() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let update = std::env::var_os("DGR_UPDATE_GOLDEN").is_some();

    let _guard = EXEC_LOCK.lock().unwrap();
    parallel::set_num_threads(4);
    let texts: Vec<(u64, String)> = GOLDEN_SEEDS.iter().map(|&s| (s, guide_text(s))).collect();
    parallel::set_num_threads(0);
    drop(_guard);

    // Committed goldens are generated under the default chunked kernels;
    // the scalar fallback reassociates reductions and legitimately lands
    // on different bytes. The route above still ran as a smoke test.
    if dgr::autodiff::kernel_mode() != dgr::autodiff::KernelMode::Chunked {
        eprintln!("golden: scalar kernel mode — skipping byte-exact comparison");
        return;
    }

    for (seed, text) in texts {
        let path = dir.join(format!("guide_seed{seed}.txt"));
        if update {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, &text).expect("write golden file");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {}: {e}\n(run with DGR_UPDATE_GOLDEN=1 to create)",
                path.display()
            )
        });
        assert!(
            text == want,
            "guide output for seed {seed} diverged from {}\n\
             --- got ---\n{text}\n--- want ---\n{want}\n\
             If the change is intentional, regenerate with DGR_UPDATE_GOLDEN=1.",
            path.display()
        );
    }
}
