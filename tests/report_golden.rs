//! Byte-exact golden snapshot of the `dgr report` HTML output.
//!
//! A fixed oracle-generated design is routed with in-memory telemetry
//! and congestion snapshots (RSS sampling off — the one nondeterministic
//! telemetry field), the attribution pass is run, and the rendered HTML
//! must match `tests/golden/report_seed11.html` byte for byte. No trace
//! input: span timings are wall-clock and would never reproduce. The
//! pipeline is pinned to 4 reduction chunks like the guide golden test.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! DGR_UPDATE_GOLDEN=1 cargo test --test report_golden
//! ```

use std::path::PathBuf;

use dgr::autodiff::parallel;
use dgr::core::{write_attribution, CostWeights, DgrConfig, DgrRouter, RouteHooks, SnapshotConfig};
use dgr::obs::{render_report, ReportInputs, SnapshotSink, TelemetrySink};
use dgr_oracle::{case_rng, gen_design, CaseSpec, CheckKind, EXEC_LOCK};

const GOLDEN_SEED: u64 = 11;

fn report_html() -> String {
    let spec = CaseSpec {
        num_layers: 3,
        ..CaseSpec::sample(CheckKind::PathCost, GOLDEN_SEED)
    };
    let design = gen_design(&spec, &mut case_rng(&spec));
    let cfg = DgrConfig {
        iterations: 60,
        seed: GOLDEN_SEED,
        ..DgrConfig::default()
    };
    let mut hooks = RouteHooks {
        telemetry: Some(TelemetrySink::in_memory()),
        snap: Some(SnapshotConfig {
            sink: SnapshotSink::in_memory(),
            every: 15,
        }),
        skip_rss: true,
        ..RouteHooks::default()
    };
    let solution = DgrRouter::new(cfg)
        .route_with_hooks(&design, &mut hooks)
        .expect("routes");
    let mut snap = hooks.snap.expect("sink retained");
    write_attribution(
        &mut snap.sink,
        &design,
        &solution,
        &CostWeights::default(),
        "final",
    );
    let inputs = ReportInputs {
        title: format!("oracle seed {GOLDEN_SEED}"),
        telemetry: Some(
            hooks
                .telemetry
                .expect("sink retained")
                .memory_contents()
                .expect("in-memory")
                .to_string(),
        ),
        snapshots: Some(snap.sink.memory_contents().expect("in-memory").to_string()),
        trace: None,
        profile: None,
        health: None,
    };
    render_report(&inputs).expect("report renders")
}

#[test]
fn report_html_matches_golden_file() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let path = dir.join(format!("report_seed{GOLDEN_SEED}.html"));
    let update = std::env::var_os("DGR_UPDATE_GOLDEN").is_some();

    let _guard = EXEC_LOCK.lock().unwrap();
    parallel::set_num_threads(4);
    let html = report_html();
    let again = report_html();
    parallel::set_num_threads(0);
    drop(_guard);

    assert_eq!(html, again, "report diverged between identical runs");

    // The committed report bytes are chunked-kernel numerics; the scalar
    // fallback reassociates reductions, so only the run-to-run
    // determinism above is asserted in that mode.
    if dgr::autodiff::kernel_mode() != dgr::autodiff::KernelMode::Chunked {
        eprintln!("report_golden: scalar kernel mode — skipping byte-exact comparison");
        return;
    }

    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
        std::fs::write(&path, &html).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\n(run with DGR_UPDATE_GOLDEN=1 to create)",
            path.display()
        )
    });
    assert!(
        html == want,
        "report HTML diverged from {} ({} vs {} bytes).\n\
         If the change is intentional, regenerate with DGR_UPDATE_GOLDEN=1.",
        path.display(),
        html.len(),
        want.len()
    );
}
