//! End-to-end batched-training equivalence through the public facade.
//!
//! A batch of N instances sharing one tape must be a pure stacking of N
//! independent runs: identical seeds give bit-identical trajectories in
//! every batch lane, and each lane reproduces the standalone
//! single-instance run — losses, learned logits, and the extracted
//! routes.

use dgr::core::{
    build_cost_model, build_cost_model_batched, extract_solution, extract_solution_instance, train,
    train_batched, DgrConfig,
};
use dgr_oracle::{case_rng, gen_design, CaseSpec, CheckKind, EXEC_LOCK};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_design() -> (dgr::grid::Design, DgrConfig) {
    let spec = CaseSpec {
        num_layers: 3,
        ..CaseSpec::sample(CheckKind::PathCost, 17)
    };
    let design = gen_design(&spec, &mut case_rng(&spec));
    let cfg = DgrConfig {
        iterations: 30,
        seed: 17,
        ..DgrConfig::default()
    };
    (design, cfg)
}

fn forest_for(design: &dgr::grid::Design, cfg: &DgrConfig) -> dgr::dag::DagForest {
    let pools: Vec<_> = design
        .nets
        .iter()
        .map(|n| dgr::rsmt::tree_candidates(&n.pins, &cfg.candidates).expect("pins"))
        .collect();
    dgr::dag::build_forest(&design.grid, &pools, cfg.patterns).expect("in grid")
}

#[test]
fn batch_of_identical_seeds_reproduces_single_run_bitwise() {
    let _guard = EXEC_LOCK.lock().unwrap();
    let (design, cfg) = test_design();
    let forest = forest_for(&design, &cfg);

    // Standalone single-instance run.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut single = build_cost_model(&design, &forest, &cfg, &mut rng);
    let single_report = train(&mut single, &cfg, &mut rng);
    let single_sol = extract_solution(&design, &forest, &mut single, &cfg).expect("extract");

    // Three batch lanes, all using the standalone seed.
    let seeds = [cfg.seed; 3];
    let (mut model, mut rngs) = build_cost_model_batched(&design, &forest, &cfg, &seeds);
    let reports = train_batched(&mut model, &cfg, &mut rngs);
    assert_eq!(reports.len(), seeds.len());

    for (b, report) in reports.iter().enumerate() {
        assert_eq!(
            report.final_loss, single_report.final_loss,
            "lane {b}: final loss diverged from standalone run"
        );
        assert_eq!(
            report.loss_history, single_report.loss_history,
            "lane {b}: loss trajectory diverged from standalone run"
        );
        assert_eq!(
            model.graph.value_at(model.w_tree, b),
            single.graph.value_at(single.w_tree, 0),
            "lane {b}: learned tree logits diverged"
        );
        assert_eq!(
            model.graph.value_at(model.w_path, b),
            single.graph.value_at(single.w_path, 0),
            "lane {b}: learned path logits diverged"
        );
        let sol =
            extract_solution_instance(&design, &forest, &mut model, &cfg, b).expect("extract lane");
        assert_eq!(
            sol.routes, single_sol.routes,
            "lane {b}: extracted routes diverged"
        );
    }
}
