//! Property-based tests over the core invariants of every subsystem.

use std::sync::Arc;

use dgr::autodiff::{Graph, Segments};
use dgr::dag::{build_forest, enumerate_paths, PatternConfig};
use dgr::grid::{GcellGrid, Point, Rect};
use dgr::rsmt::{exact_steiner, rmst, rsmt, tree_candidates, CandidateConfig};
use proptest::prelude::*;

fn arb_point(max: i32) -> impl Strategy<Value = Point> {
    (0..max, 0..max).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_pins(max_coord: i32, max_pins: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(max_coord), 1..=max_pins)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rsmt_is_bracketed_by_hpwl_and_rmst(pins in arb_pins(40, 10)) {
        let tree = rsmt(&pins).unwrap();
        tree.validate().unwrap();
        let hpwl = Rect::bounding(&pins).half_perimeter() as u64;
        let mst = rmst(&pins).length();
        prop_assert!(tree.length() >= hpwl,
            "steiner {} below HPWL {}", tree.length(), hpwl);
        prop_assert!(tree.length() <= mst,
            "steiner {} exceeds MST {}", tree.length(), mst);
    }

    #[test]
    fn exact_steiner_is_never_beaten_by_the_heuristic(pins in arb_pins(20, 7)) {
        let exact = exact_steiner(&pins).length();
        let heuristic = dgr::rsmt::steinerize::steinerized_rmst(&pins).length();
        prop_assert!(heuristic >= exact);
    }

    #[test]
    fn tree_candidates_all_span_the_pins(pins in arb_pins(30, 8)) {
        let pool = tree_candidates(&pins, &CandidateConfig::default()).unwrap();
        prop_assert!(!pool.is_empty());
        let distinct: std::collections::HashSet<_> = pins.iter().copied().collect();
        for tree in &pool {
            tree.validate().unwrap();
            for p in &distinct {
                prop_assert!(tree.nodes().contains(p));
            }
        }
    }

    #[test]
    fn pattern_paths_connect_with_exact_manhattan_length(
        a in arb_point(50),
        b in arb_point(50),
        stride in prop::option::of(1u32..6),
    ) {
        let paths = enumerate_paths(a, b, stride);
        prop_assert!(!paths.is_empty());
        for p in &paths {
            prop_assert_eq!(p.source(), a);
            prop_assert_eq!(p.sink(), b);
            prop_assert_eq!(p.wirelength(), a.manhattan_distance(b));
            prop_assert!(p.num_turns() <= 2);
        }
    }

    #[test]
    fn forest_arenas_validate_for_random_netlists(
        netlist in proptest::collection::vec(arb_pins(24, 6), 1..12),
        z in prop::option::of(2u32..5),
    ) {
        let grid = GcellGrid::new(25, 25).unwrap();
        let pools: Vec<_> = netlist
            .iter()
            .map(|pins| tree_candidates(pins, &CandidateConfig::default()).unwrap())
            .collect();
        let patterns = match z {
            Some(s) => PatternConfig::with_z(s),
            None => PatternConfig::l_only(),
        };
        let forest = build_forest(&grid, &pools, patterns).unwrap();
        forest.validate().unwrap();
        // every path's edge count equals its wirelength
        for i in 0..forest.num_paths() {
            prop_assert_eq!(
                forest.path_edges(i).len() as f32,
                forest.path_wirelength(i)
            );
        }
    }

    #[test]
    fn segmented_softmax_groups_sum_to_one(
        widths in proptest::collection::vec(1usize..5, 1..10),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut offsets = vec![0u32];
        for w in &widths {
            offsets.push(offsets.last().unwrap() + *w as u32);
        }
        let n = *offsets.last().unwrap() as usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let logits: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut g = Graph::new();
        let w = g.param(logits);
        let seg = Arc::new(Segments::from_offsets(offsets.clone()).unwrap());
        let p = g.segmented_softmax(w, seg);
        g.forward();
        for k in 0..widths.len() {
            let r = offsets[k] as usize..offsets[k + 1] as usize;
            let sum: f32 = g.value(p)[r].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "group {k} sums to {sum}");
        }
    }

    #[test]
    fn autodiff_gradients_match_finite_differences(
        logits in proptest::collection::vec(-2.0f32..2.0, 4..10),
        costs in proptest::collection::vec(-3.0f32..3.0, 10),
    ) {
        let n = logits.len();
        let costs = &costs[..n];
        let build = |data: Vec<f32>| {
            let mut g = Graph::new();
            let w = g.param(data);
            let seg = Arc::new(Segments::from_offsets(vec![0, n as u32]).unwrap());
            let p = g.segmented_softmax(w, seg);
            let sq = g.mul(p, p);
            let loss = g.dot_const(sq, Arc::new(costs.to_vec()));
            (g, w, loss)
        };
        let (mut g, w, loss) = build(logits.clone());
        g.forward();
        g.backward(loss);
        let analytic = g.grad(w).to_vec();
        let h = 1e-2f32;
        for i in 0..n {
            let mut up = logits.clone();
            up[i] += h;
            let (mut gu, _, lu) = build(up);
            gu.forward();
            let mut dn = logits.clone();
            dn[i] -= h;
            let (mut gd, _, ld) = build(dn);
            gd.forward();
            let numeric = (gu.value(lu)[0] - gd.value(ld)[0]) / (2.0 * h);
            prop_assert!(
                (analytic[i] - numeric).abs() < 0.05,
                "grad[{i}] analytic {} vs numeric {}", analytic[i], numeric
            );
        }
    }

    #[test]
    fn maze_routes_are_rectilinear_and_connected(
        a in arb_point(20),
        b in arb_point(20),
        turn_cost in 0.0f32..3.0,
    ) {
        let grid = GcellGrid::new(20, 20).unwrap();
        let path = dgr::baseline::maze_route(
            &grid, a, b, |_| 1.0,
            &dgr::baseline::maze::MazeConfig { bounds: None, turn_cost },
        ).unwrap();
        prop_assert_eq!(*path.first().unwrap(), a);
        prop_assert_eq!(*path.last().unwrap(), b);
        let len: u32 = path.windows(2).map(|w| w[0].manhattan_distance(w[1])).sum();
        prop_assert_eq!(len, a.manhattan_distance(b)); // uniform cost → shortest
        for w in path.windows(2) {
            prop_assert!(w[0].is_aligned_with(w[1]));
        }
    }

    #[test]
    fn design_format_roundtrips(
        netlist in proptest::collection::vec(arb_pins(15, 5), 1..8),
        layers in 1u32..10,
    ) {
        let grid = GcellGrid::new(16, 16).unwrap();
        let cap = dgr::grid::CapacityBuilder::uniform(&grid, 3.5).build(&grid).unwrap();
        let nets: Vec<_> = netlist
            .into_iter()
            .enumerate()
            .map(|(i, pins)| dgr::grid::Net::new(format!("n{i}"), pins))
            .collect();
        let design = dgr::grid::Design::new(grid, cap, nets, layers).unwrap();
        let parsed = dgr::io::parse_design(&dgr::io::write_design(&design)).unwrap();
        prop_assert_eq!(parsed.nets, design.nets);
        prop_assert_eq!(parsed.num_layers, design.num_layers);
    }

    #[test]
    fn overflow_stats_scale_monotonically_with_demand(
        wires in 1u32..6,
        cap in 1.0f32..4.0,
    ) {
        let grid = GcellGrid::new(8, 8).unwrap();
        let capm = dgr::grid::CapacityBuilder::uniform(&grid, cap).build(&grid).unwrap();
        let mut demand = dgr::grid::DemandMap::new(&grid);
        let mut prev = 0.0f64;
        for _ in 0..wires {
            demand.add_segment(&grid, Point::new(0, 3), Point::new(7, 3)).unwrap();
            let s = dgr::grid::OverflowStats::measure(&grid, &capm, &demand);
            prop_assert!(s.total_overflow >= prev);
            prev = s.total_overflow;
        }
    }
}
