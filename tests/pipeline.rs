//! End-to-end integration tests spanning every crate: design generation →
//! differentiable routing → refinement → layer assignment → guides.

use dgr::core::{DgrConfig, DgrRouter};
use dgr::grid::{CapacityBuilder, Design, GcellGrid, Net, Point};
use dgr::io::{IspdLikeConfig, IspdLikeGenerator};
use dgr::post::{assign_layers, refine, AssignConfig, RefineConfig, RouteGuide};

fn small_catalog_design(seed: u64) -> Design {
    IspdLikeGenerator::new(IspdLikeConfig {
        width: 28,
        height: 28,
        num_nets: 120,
        num_layers: 5,
        seed,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config")
}

fn quick_config(seed: u64) -> DgrConfig {
    DgrConfig {
        iterations: 120,
        seed,
        ..DgrConfig::default()
    }
}

#[test]
fn full_pipeline_produces_consistent_artifacts() {
    let design = small_catalog_design(5);
    let mut solution = DgrRouter::new(quick_config(1)).route(&design).unwrap();

    // every net present, in order
    assert_eq!(solution.routes.len(), design.num_nets());
    for (n, route) in solution.routes.iter().enumerate() {
        assert_eq!(route.net, n);
    }

    // every pin of every net is an endpoint of some path (or the net is
    // single-g-cell)
    for (net, route) in design.nets.iter().zip(&solution.routes) {
        let distinct: std::collections::HashSet<_> = net.pins.iter().collect();
        if distinct.len() < 2 {
            continue;
        }
        for pin in distinct {
            let covered = route
                .paths
                .iter()
                .any(|p| p.corners.first() == Some(pin) || p.corners.last() == Some(pin));
            assert!(covered, "pin {pin} of net {} unconnected", net.name);
        }
    }

    // metrics agree with a from-scratch remeasure
    let metrics_before = solution.metrics;
    solution.remeasure(&design).unwrap();
    assert_eq!(
        metrics_before.total_wirelength,
        solution.metrics.total_wirelength
    );
    assert_eq!(metrics_before.total_turns, solution.metrics.total_turns);

    // refinement never increases overflowed edge count
    let before = solution.metrics.overflow.overflowed_edges;
    let report = refine(&design, &mut solution, RefineConfig::default()).unwrap();
    assert!(report.overflowed_after <= before);

    // layer assignment covers every segment and the guide mirrors it
    let assigned = assign_layers(&design, &solution, AssignConfig::default()).unwrap();
    assert_eq!(assigned.nets.len(), solution.routes.len());
    for (net3d, route) in assigned.nets.iter().zip(&solution.routes) {
        let segments_2d: usize = route
            .paths
            .iter()
            .map(|p| p.corners.windows(2).filter(|w| w[0] != w[1]).count())
            .sum();
        assert_eq!(net3d.segments.len(), segments_2d);
        for s in &net3d.segments {
            assert!(s.layer < design.num_layers);
        }
    }
    let guide = RouteGuide::from_assignment(&design, &assigned);
    assert_eq!(
        guide.num_boxes(),
        assigned
            .nets
            .iter()
            .map(|n| n.segments.len())
            .sum::<usize>()
    );
    let text = guide.to_text();
    assert!(text.contains("net0"));
}

#[test]
fn routing_is_deterministic_for_a_fixed_seed() {
    let design = small_catalog_design(9);
    let a = DgrRouter::new(quick_config(3)).route(&design).unwrap();
    let b = DgrRouter::new(quick_config(3)).route(&design).unwrap();
    assert_eq!(a.metrics.total_wirelength, b.metrics.total_wirelength);
    assert_eq!(a.metrics.total_turns, b.metrics.total_turns);
    assert_eq!(
        a.metrics.overflow.overflowed_edges,
        b.metrics.overflow.overflowed_edges
    );
    for (ra, rb) in a.routes.iter().zip(&b.routes) {
        assert_eq!(ra.tree, rb.tree);
        assert_eq!(ra.paths, rb.paths);
    }
}

#[test]
fn different_seeds_explore_different_solutions() {
    let design = small_catalog_design(11);
    let a = DgrRouter::new(quick_config(1)).route(&design).unwrap();
    let b = DgrRouter::new(quick_config(2)).route(&design).unwrap();
    let same = a
        .routes
        .iter()
        .zip(&b.routes)
        .all(|(ra, rb)| ra.paths == rb.paths);
    assert!(!same, "two seeds produced byte-identical routings");
}

#[test]
fn wirelength_is_lower_bounded_by_steiner_lengths() {
    let design = small_catalog_design(13);
    let solution = DgrRouter::new(quick_config(1)).route(&design).unwrap();
    let steiner_total: u64 = design
        .nets
        .iter()
        .map(|n| dgr::rsmt::rsmt(&n.pins).map(|t| t.length()).unwrap_or(0))
        .sum();
    assert!(
        solution.metrics.total_wirelength >= steiner_total,
        "{} < steiner bound {}",
        solution.metrics.total_wirelength,
        steiner_total
    );
    // pattern routes are monotone: without refinement detours the total
    // should stay within a small factor of the bound
    assert!(solution.metrics.total_wirelength as f64 <= steiner_total as f64 * 1.5);
}

#[test]
fn adaptive_expansion_never_hurts_overflow() {
    // an over-packed design where the plain L-shape space cannot avoid
    // all overflow: adaptive rounds add maze candidates
    let design = IspdLikeGenerator::new(IspdLikeConfig {
        width: 24,
        height: 24,
        num_nets: 220,
        num_layers: 5,
        base_capacity: 5.0,
        seed: 31,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config");
    let base = DgrRouter::new(quick_config(2)).route(&design).unwrap();
    let mut adaptive_cfg = quick_config(2);
    adaptive_cfg.adaptive_rounds = 2;
    adaptive_cfg.adaptive_iterations = 80;
    let adaptive = DgrRouter::new(adaptive_cfg).route(&design).unwrap();
    assert!(
        adaptive.metrics.overflow.total_overflow <= base.metrics.overflow.total_overflow + 1e-6,
        "adaptive {} vs base {}",
        adaptive.metrics.overflow.total_overflow,
        base.metrics.overflow.total_overflow
    );
}

#[test]
fn empty_and_degenerate_designs_route_cleanly() {
    let grid = GcellGrid::new(6, 6).unwrap();
    let cap = CapacityBuilder::uniform(&grid, 2.0).build(&grid).unwrap();
    let design = Design::new(
        grid,
        cap,
        vec![
            Net::new("lonely", vec![Point::new(3, 3)]),
            Net::new("dup", vec![Point::new(1, 1), Point::new(1, 1)]),
        ],
        3,
    )
    .unwrap();
    let solution = DgrRouter::new(quick_config(0)).route(&design).unwrap();
    assert_eq!(solution.metrics.total_wirelength, 0);
    assert_eq!(solution.metrics.overflow.overflowed_edges, 0);
    let assigned = assign_layers(&design, &solution, AssignConfig::default()).unwrap();
    assert_eq!(assigned.total_vias, 0);
}

#[test]
fn design_io_roundtrip_preserves_routing_results() {
    let design = small_catalog_design(17);
    let text = dgr::io::write_design(&design);
    let parsed = dgr::io::parse_design(&text).unwrap();
    let a = DgrRouter::new(quick_config(4)).route(&design).unwrap();
    let b = DgrRouter::new(quick_config(4)).route(&parsed).unwrap();
    assert_eq!(a.metrics.total_wirelength, b.metrics.total_wirelength);
    assert_eq!(
        a.metrics.overflow.overflowed_edges,
        b.metrics.overflow.overflowed_edges
    );
}
