//! Protocol conformance and queue semantics for `dgrd`.
//!
//! Hostile and malformed traffic must map to structured HTTP errors
//! (4xx + `{"error": ...}` JSON) without killing the listener, and the
//! bounded queue must expose backpressure (429), FIFO order under a
//! single worker, and priority-class scheduling.

mod common;

use std::time::Duration;

use common::*;
use dgr::daemon::{Daemon, DaemonConfig};
use dgr::grid::Design;
use dgr::io::{IspdLikeConfig, IspdLikeGenerator};
use dgr::obs::parse::JsonValue;

fn tiny_design_text(seed: u64) -> String {
    let design: Design = IspdLikeGenerator::new(IspdLikeConfig {
        width: 20,
        height: 20,
        num_nets: 40,
        num_layers: 5,
        seed,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config");
    dgr::io::write_design(&design)
}

fn spec(text: &str, label: &str, iterations: u32, priority: i64) -> String {
    let escaped = text
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!(
        r#"{{"design_text":"{escaped}","label":"{label}","iterations":{iterations},"priority":{priority}}}"#
    )
}

fn assert_structured_error(resp: &Response, status: u16) {
    assert_eq!(resp.status, status, "body: {}", resp.body);
    let v = resp.json();
    assert!(
        v.get("error").and_then(JsonValue::as_str).is_some(),
        "error body must carry a message: {}",
        resp.body
    );
    assert_eq!(
        v.get("status").and_then(JsonValue::as_u64),
        Some(u64::from(status))
    );
}

/// Every class of malformed input maps to a structured 4xx, and the
/// listener answers normally afterwards.
#[test]
fn malformed_requests_get_structured_errors_and_the_listener_survives() {
    let daemon = Daemon::start(
        "127.0.0.1:0",
        DaemonConfig {
            workers: 1,
            max_body_bytes: 16 * 1024,
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // body is not JSON
    assert_structured_error(&post_json(addr, "/jobs", "{nope"), 400);
    // JSON but not an object
    assert_structured_error(&post_json(addr, "/jobs", "[1,2,3]"), 400);
    // unknown spec key
    assert_structured_error(
        &post_json(addr, "/jobs", r#"{"design_text":"x","turbo":true}"#),
        400,
    );
    // no design source
    assert_structured_error(&post_json(addr, "/jobs", r#"{"label":"x"}"#), 400);
    // invalid UTF-8 body
    let mut bad =
        b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nConnection: close\r\n\r\n"
            .to_vec();
    bad.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc]);
    assert_structured_error(&raw_request(addr, &bad), 400);
    // oversized body (cap is 16 KiB here)
    let huge = format!(r#"{{"design_text":"{}"}}"#, "x".repeat(32 * 1024));
    assert_structured_error(&post_json(addr, "/jobs", &huge), 413);
    // malformed request head
    assert_structured_error(&raw_request(addr, b"THIS IS NOT HTTP\r\n\r\n"), 400);
    // bad Content-Length
    assert_structured_error(
        &raw_request(
            addr,
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
        ),
        400,
    );
    // unknown job id, non-integer id, unknown subresource
    assert_structured_error(&get(addr, "/jobs/999999999"), 404);
    assert_structured_error(&delete(addr, "/jobs/999999999"), 404);
    assert_structured_error(&get(addr, "/jobs/banana"), 404);
    assert_structured_error(&get(addr, "/jobs/1/confetti"), 404);
    // wrong method on a job route
    assert_structured_error(&request(addr, "PATCH", "/jobs/1", Some("{}")), 405);
    assert_structured_error(&request(addr, "PUT", "/jobs", Some("{}")), 405);

    // after all that abuse the daemon still serves
    let resp = get(addr, "/jobs");
    assert_eq!(resp.status, 200);
    let resp = get(addr, "/metrics");
    assert_eq!(resp.status, 200);
    let id = submit_job(addr, &spec(&tiny_design_text(31), "alive", 5, 0));
    wait_terminal(addr, id, Duration::from_secs(120));

    daemon.stop();
}

/// Double-cancel and cancel-after-terminal are structured 409s.
#[test]
fn cancel_conflicts_are_409() {
    let daemon = Daemon::start(
        "127.0.0.1:0",
        DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let text = tiny_design_text(32);

    let blocker = submit_job(addr, &spec(&text, "blocker", 500_000, 0));
    wait_state(addr, blocker, "running", Duration::from_secs(60));
    assert_eq!(delete(addr, &format!("/jobs/{blocker}")).status, 202);
    // second cancel while the first is still propagating
    let second = delete(addr, &format!("/jobs/{blocker}"));
    assert!(
        second.status == 409,
        "double-cancel must be 409, got {}: {}",
        second.status,
        second.body
    );
    wait_state(addr, blocker, "cancelled", Duration::from_secs(60));
    // cancel of a terminal job
    assert_structured_error(&delete(addr, &format!("/jobs/{blocker}")), 409);

    let quick = submit_job(addr, &spec(&text, "quick", 3, 0));
    wait_state(addr, quick, "done", Duration::from_secs(120));
    assert_structured_error(&delete(addr, &format!("/jobs/{quick}")), 409);

    daemon.stop();
}

/// A full queue rejects submissions with 429 until a slot frees up.
#[test]
fn bounded_queue_backpressure() {
    let daemon = Daemon::start(
        "127.0.0.1:0",
        DaemonConfig {
            workers: 1,
            queue_capacity: 1,
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let text = tiny_design_text(33);

    let blocker = submit_job(addr, &spec(&text, "blocker", 500_000, 0));
    wait_state(addr, blocker, "running", Duration::from_secs(60));
    let queued = submit_job(addr, &spec(&text, "queued", 5, 0));

    // queue (capacity 1) is now full
    let rejected = post_json(addr, "/jobs", &spec(&text, "rejected", 5, 0));
    assert_structured_error(&rejected, 429);
    assert!(rejected.body.contains("queue full"), "{}", rejected.body);

    // cancelling the queued job frees the slot
    assert_eq!(delete(addr, &format!("/jobs/{queued}")).status, 200);
    let id = submit_job(addr, &spec(&text, "admitted", 5, 0));

    assert_eq!(delete(addr, &format!("/jobs/{blocker}")).status, 202);
    wait_state(addr, blocker, "cancelled", Duration::from_secs(60));
    wait_state(addr, id, "done", Duration::from_secs(120));

    daemon.stop();
}

/// Under a single worker, equal-priority jobs run in submission order
/// and a higher-priority job jumps the whole class.
#[test]
fn fifo_and_priority_scheduling() {
    let daemon = Daemon::start(
        "127.0.0.1:0",
        DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let text = tiny_design_text(34);

    // hold the single worker so the queue actually orders the rest
    let blocker = submit_job(addr, &spec(&text, "blocker", 500_000, 0));
    wait_state(addr, blocker, "running", Duration::from_secs(60));

    let a = submit_job(addr, &spec(&text, "a", 3, 0));
    let b = submit_job(addr, &spec(&text, "b", 3, 0));
    let c = submit_job(addr, &spec(&text, "c", 3, 0));
    let urgent = submit_job(addr, &spec(&text, "urgent", 3, 7));

    assert_eq!(delete(addr, &format!("/jobs/{blocker}")).status, 202);
    for id in [a, b, c, urgent] {
        wait_state(addr, id, "done", Duration::from_secs(180));
    }

    let seq = |id| run_seq_of(&wait_terminal(addr, id, Duration::from_secs(5)));
    let (sa, sb, sc, su) = (seq(a), seq(b), seq(c), seq(urgent));
    assert!(su < sa, "priority 7 must run before the FIFO class");
    assert!(sa < sb && sb < sc, "FIFO order violated: {sa} {sb} {sc}");

    daemon.stop();
}
