//! End-to-end `dgrd` tests: boot the daemon on an ephemeral port, drive
//! it with real HTTP clients from multiple threads, and hold it to the
//! CLI's determinism contract — a daemon-routed job must produce a route
//! guide byte-identical to a one-shot `dgr route` of the same
//! design/config, even with concurrent jobs in flight.

mod common;

use std::process::Command;
use std::time::Duration;

use common::*;
use dgr::daemon::{Daemon, DaemonConfig};
use dgr::grid::Design;
use dgr::io::{IspdLikeConfig, IspdLikeGenerator};
use dgr::obs::parse::JsonValue;

fn small_design(seed: u64) -> Design {
    IspdLikeGenerator::new(IspdLikeConfig {
        width: 24,
        height: 24,
        num_nets: 80,
        num_layers: 5,
        seed,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config")
}

fn boot(cfg: DaemonConfig) -> Daemon {
    Daemon::start("127.0.0.1:0", cfg).expect("daemon binds an ephemeral port")
}

fn inline_spec(design_text: &str, label: &str, iterations: u32, seed: u64) -> String {
    let escaped = design_text
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!(
        r#"{{"design_text":"{escaped}","label":"{label}","tenant":"e2e","iterations":{iterations},"seed":{seed}}}"#
    )
}

/// One-shot CLI route of the same design/config; returns the guide bytes.
fn cli_guide(design_text: &str, iterations: u32, seed: u64, tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("dgr_daemon_cli_{tag}_{seed}"));
    std::fs::create_dir_all(&dir).unwrap();
    let design_path = dir.join("design.txt");
    let guide_path = dir.join("out.guide");
    std::fs::write(&design_path, design_text).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_dgr"))
        .env("DGR_LEDGER", "off")
        .args([
            "route",
            design_path.to_str().unwrap(),
            "--iterations",
            &iterations.to_string(),
            "--seed",
            &seed.to_string(),
            "--guide",
            guide_path.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("run dgr route");
    assert!(
        out.status.success(),
        "cli route failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read(&guide_path).expect("cli guide written")
}

/// Three concurrent jobs from client threads run to `done` with full
/// lifecycle records, and two of their guides byte-match one-shot CLI
/// runs of the same config.
#[test]
fn concurrent_jobs_match_the_cli_byte_for_byte() {
    let daemon = boot(DaemonConfig {
        workers: 3,
        ..DaemonConfig::default()
    });
    let addr = daemon.local_addr();

    const ITERS: u32 = 30;
    let designs: Vec<(u64, String)> = [11u64, 12, 13]
        .iter()
        .map(|&seed| (seed, dgr::io::write_design(&small_design(seed))))
        .collect();

    // submit from three real client threads
    let ids: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = designs
            .iter()
            .map(|(seed, text)| {
                s.spawn(move || {
                    submit_job(
                        addr,
                        &inline_spec(text, &format!("e2e-{seed}"), ITERS, *seed),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (&id, (seed, _)) in ids.iter().zip(&designs) {
        let job = wait_state(addr, id, "done", Duration::from_secs(120));
        assert_eq!(job.get("tenant").and_then(JsonValue::as_str), Some("e2e"));
        assert_eq!(job.get("seed").and_then(JsonValue::as_u64), Some(*seed));
        assert!(job
            .get("submitted_unix_ms")
            .and_then(JsonValue::as_u64)
            .is_some());
        assert!(job
            .get("started_unix_ms")
            .and_then(JsonValue::as_u64)
            .is_some());
        assert!(job
            .get("finished_unix_ms")
            .and_then(JsonValue::as_u64)
            .is_some());
        let _ = run_seq_of(&job);
        let result = job.get("result").expect("done job has a result");
        assert!(
            result
                .get("wirelength")
                .and_then(JsonValue::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            result
                .get("guide_boxes")
                .and_then(JsonValue::as_u64)
                .unwrap()
                > 0
        );
        let phases = result.get("phases_ms").expect("per-phase totals");
        for phase in ["train", "forward", "backward", "refine", "assign"] {
            assert!(phases.get(phase).is_some(), "missing phase {phase}");
        }

        // per-job artifacts
        let telemetry = get(addr, &format!("/jobs/{id}/telemetry"));
        assert_eq!(telemetry.status, 200);
        assert!(
            telemetry.body.lines().count() >= 1,
            "telemetry rows for job {id}"
        );
        let report = get(addr, &format!("/jobs/{id}/report"));
        assert_eq!(report.status, 200);
        assert!(report.body.contains("<html"), "report is HTML");
    }

    // byte-compare two of the daemon guides against one-shot CLI runs
    for (&id, (seed, text)) in ids.iter().zip(&designs).take(2) {
        let daemon_guide = get(addr, &format!("/jobs/{id}/guide"));
        assert_eq!(daemon_guide.status, 200);
        let cli = cli_guide(text, ITERS, *seed, "bytecmp");
        assert_eq!(
            daemon_guide.body.as_bytes(),
            cli.as_slice(),
            "daemon guide for seed {seed} differs from the one-shot CLI guide"
        );
    }

    // the job-scoped status registry reports every job
    let status = get(addr, "/status");
    assert_eq!(status.status, 200);
    let jobs = status
        .json()
        .get("jobs")
        .and_then(JsonValue::as_arr)
        .map(<[JsonValue]>::to_vec)
        .unwrap_or_default();
    for &id in &ids {
        assert!(
            jobs.iter()
                .any(|j| j.get("id").and_then(JsonValue::as_u64) == Some(id)),
            "/status is missing a row for job {id}"
        );
    }

    daemon.stop();
}

/// Cancelling a running job mid-train leaves the queue healthy: the
/// waiting job still runs to completion and new submissions land.
#[test]
fn cancellation_mid_run_leaves_the_queue_healthy() {
    let daemon = boot(DaemonConfig {
        workers: 1,
        ..DaemonConfig::default()
    });
    let addr = daemon.local_addr();
    let text = dgr::io::write_design(&small_design(21));

    // a job long enough to be cancelled mid-run, plus one waiting behind it
    let blocker = submit_job(addr, &inline_spec(&text, "blocker", 500_000, 1));
    let waiting = submit_job(addr, &inline_spec(&text, "waiting", 10, 2));
    wait_state(addr, blocker, "running", Duration::from_secs(60));

    let resp = delete(addr, &format!("/jobs/{blocker}"));
    assert_eq!(resp.status, 202, "cancel of a running job: {}", resp.body);
    let job = wait_state(addr, blocker, "cancelled", Duration::from_secs(60));
    assert_eq!(
        job.get("cancel_requested")
            .map(|v| matches!(v, JsonValue::Bool(true))),
        Some(true)
    );
    assert!(job.get("result").is_none(), "cancelled job has no result");

    // the queue drains normally afterwards
    let job = wait_state(addr, waiting, "done", Duration::from_secs(120));
    assert!(job.get("result").is_some());

    let after = submit_job(addr, &inline_spec(&text, "after", 10, 3));
    wait_state(addr, after, "done", Duration::from_secs(120));

    // cancelling a *queued* job removes it without running it
    let blocker2 = submit_job(addr, &inline_spec(&text, "blocker2", 500_000, 4));
    let queued = submit_job(addr, &inline_spec(&text, "queued", 10, 5));
    wait_state(addr, blocker2, "running", Duration::from_secs(60));
    let resp = delete(addr, &format!("/jobs/{queued}"));
    assert_eq!(
        resp.status, 200,
        "queued-job cancel is immediate: {}",
        resp.body
    );
    let job = wait_state(addr, queued, "cancelled", Duration::from_secs(10));
    assert!(job
        .get("started_unix_ms")
        .and_then(JsonValue::as_u64)
        .is_none());
    let resp = delete(addr, &format!("/jobs/{blocker2}"));
    assert_eq!(resp.status, 202);
    wait_state(addr, blocker2, "cancelled", Duration::from_secs(60));

    daemon.stop();
}

/// A `deadline_ms=1` job is killed by the sentinel watchdog and reported
/// as a structured *failure* (not a cancellation — no client asked for
/// one), `/health` surfaces it as a critical row next to the healthy
/// job's ok row, and the queue keeps serving afterwards.
#[test]
fn watchdog_kills_slo_breaching_jobs_and_health_reports_them() {
    let daemon = boot(DaemonConfig {
        workers: 1,
        ..DaemonConfig::default()
    });
    let addr = daemon.local_addr();
    let text = dgr::io::write_design(&small_design(31));
    let escaped = text
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");

    let breaching = submit_job(
        addr,
        &format!(
            r#"{{"design_text":"{escaped}","label":"breach","tenant":"e2e","iterations":500000,"seed":1,"deadline_ms":1}}"#
        ),
    );
    let job = wait_state(addr, breaching, "failed", Duration::from_secs(120));
    let error = job
        .str("error")
        .expect("failed job has an error")
        .to_string();
    assert!(
        error.starts_with("watchdog: ") && error.contains("deadline_ms=1"),
        "error: {error}"
    );
    assert_eq!(
        job.get("cancel_requested")
            .map(|v| matches!(v, JsonValue::Bool(false))),
        Some(true),
        "the watchdog, not a client, stopped the run"
    );
    assert!(job.get("result").is_none());

    // the breach left the queue healthy: the next job runs to done
    let healthy = submit_job(addr, &inline_spec(&text, "healthy", 10, 2));
    wait_state(addr, healthy, "done", Duration::from_secs(120));

    // /health joins both outcomes: overall critical, one critical row
    // (watchdog-failed) and one ok row
    let resp = get(addr, "/health");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let health = resp.json();
    assert_eq!(health.str("verdict"), Some("critical"), "{}", resp.body);
    let rows = match health.get("rows") {
        Some(JsonValue::Arr(rows)) => rows,
        other => panic!("rows: {other:?}"),
    };
    let row_of = |id: u64| {
        rows.iter()
            .find(|r| r.get("id").and_then(JsonValue::as_u64) == Some(id))
            .unwrap_or_else(|| panic!("no /health row for job {id}: {}", resp.body))
    };
    let breach_row = row_of(breaching);
    assert_eq!(breach_row.str("verdict"), Some("critical"), "{}", resp.body);
    assert!(breach_row
        .str("error")
        .is_some_and(|e| e.starts_with("watchdog: ")));
    let healthy_row = row_of(healthy);
    assert_eq!(healthy_row.str("verdict"), Some("ok"), "{}", resp.body);
    assert_eq!(healthy_row.str("state"), Some("done"));

    daemon.stop();
}

/// The `dgr serve-jobs` binary boots, prints its address banner, serves
/// a catalog job end to end, and dies cleanly.
#[test]
fn serve_jobs_cli_smoke() {
    use std::io::BufRead;

    let mut child = Command::new(env!("CARGO_BIN_EXE_dgr"))
        .env("DGR_LEDGER", "off")
        .args(["serve-jobs", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dgr serve-jobs");

    let stderr = child.stderr.take().unwrap();
    let mut lines = std::io::BufReader::new(stderr).lines();
    let banner = lines.next().expect("banner line").expect("banner readable");
    let addr: std::net::SocketAddr = banner
        .split("http://")
        .nth(1)
        .and_then(|s| s.split('/').next())
        .expect("banner has an address")
        .parse()
        .expect("banner address parses");

    let id = submit_job(
        addr,
        r#"{"design_catalog":"ispd18_test1","fast":true,"iterations":8,"seed":1,"tenant":"smoke"}"#,
    );
    let job = wait_state(addr, id, "done", Duration::from_secs(120));
    assert!(job.get("result").is_some());
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);

    child.kill().expect("kill serve-jobs");
    let _ = child.wait();
}
