//! `dgr` — command-line front end for the differentiable global router.
//!
//! ```text
//! dgr generate <case> [--out design.txt]        # emit a catalog design
//! dgr route <design.txt> [--iterations N] [--seed S]
//!          [--routes out.txt] [--guide out.guide]
//!          [--trace out.json] [--telemetry out.jsonl]
//!          [--snap out.snaps] [--snap-every N]
//!          [--serve ADDR] [--profile out.folded] [--no-ledger]
//!          [--progress N] [--quiet]
//! dgr train <design.txt> [--batch N] ...        # batched multi-seed run
//! dgr compare <design.txt> [--iterations N]     # DGR vs all baselines
//! dgr compare --ledger                          # last two ledger runs
//! dgr history [--limit N]                       # the persistent run ledger
//! dgr report [--telemetry in.jsonl] [--snap in.snaps] [--trace in.json]
//!            [--profile in.folded] [--title NAME] [--out report.html]
//! dgr serve-jobs <addr> [--workers N] [--queue-cap N] [--retain N]
//!            [--no-ledger]                  # dgrd: the routing job server
//! ```
//!
//! `--trace` turns on the `dgr-obs` span registry and writes a Chrome
//! trace-event file (load it at `chrome://tracing` or in Perfetto);
//! `--telemetry` streams one JSONL row per training iteration; `--snap`
//! streams per-g-cell congestion snapshots plus the per-net overflow
//! attribution. `--serve ADDR` exposes `/metrics` (Prometheus),
//! `/status` (JSON) and `/report` (HTML) over HTTP while the run is
//! live; `--profile` runs the sampling self-profiler and writes a
//! collapsed-stack (flamegraph-compatible) file. Every `route`/`train`
//! run also appends a content-hashed summary record to the persistent
//! ledger (`~/.dgr/ledger.jsonl`, override with `DGR_LEDGER`, disable
//! with `--no-ledger`) that `dgr history` and `dgr compare --ledger`
//! render into cross-run deltas. `dgr report` renders the file
//! artifacts into one self-contained HTML post-mortem.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

use dgr::baseline::{LagrangianRouter, SequentialRouter, SprouteRouter};
use dgr::core::{
    write_attribution, DgrConfig, DgrRouter, ProgressConfig, RouteHooks, SnapshotConfig,
};
use dgr::grid::Design;
use dgr::obs::ledger::{self, LedgerRecord, LEDGER_VERSION};
use dgr::obs::{render_report, ObsServer, Profiler, ProfilerConfig, ReportInputs};
use dgr::obs::{SnapshotSink, TelemetrySink};
use dgr::post::{assign_layers, refine, AssignConfig, RefineConfig, RouteGuide};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("cases") => {
            for name in dgr::io::catalog_names() {
                let case = dgr::io::catalog_case(name).expect("listed case exists");
                println!(
                    "{name:<16} {:>6} nets  {:>4}x{:<4}  {} layers{}",
                    case.config.num_nets,
                    case.config.width,
                    case.config.height,
                    case.config.num_layers,
                    if case.congested { "  (congested)" } else { "" }
                );
            }
            Ok(())
        }
        Some("generate") => cmd_generate(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("doctor") => cmd_doctor(&args[1..]),
        Some("history") => cmd_history(&args[1..]),
        Some("serve-jobs") => cmd_serve_jobs(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("dgr — differentiable global router (DAC 2024 reproduction)");
    println!();
    println!("usage:");
    println!("  dgr cases");
    println!("      list the benchmark catalog");
    println!("  dgr generate <case> [--out design.txt] [--fast]");
    println!("      emit a named catalog design (e.g. ispd18_test1, ispd19_7m)");
    println!("  dgr route <design.txt> [--iterations N] [--seed S]");
    println!("            [--routes out.txt] [--guide out.guide]");
    println!("            [--trace out.json] [--telemetry out.jsonl]");
    println!("            [--snap out.snaps] [--snap-every N]");
    println!("            [--serve ADDR] [--profile out.folded] [--no-ledger]");
    println!("            [--progress N] [--quiet]");
    println!("      route a design and print metrics");
    println!("  dgr train <design.txt> [--batch N] [--iterations N] [--seed S]");
    println!("            [--routes out.txt] [--telemetry out.jsonl]");
    println!("            [--snap out.snaps] [--snap-every N] [--serve ADDR]");
    println!("            [--profile out.folded] [--no-ledger] [--quiet]");
    println!("      train N seeds on one batched tape, report each, extract the best");
    println!("  dgr compare <design.txt> [--iterations N] [--trace out.json]");
    println!("      route with DGR and every baseline, print a comparison table");
    println!("  dgr compare --ledger");
    println!("      diff the last two comparable ledger runs (per-phase deltas + trend)");
    println!("  dgr history [--limit N] [--ledger path]");
    println!("      render recent ledger records as a table with cross-run deltas");
    println!("  dgr report [--telemetry in.jsonl] [--snap in.snaps] [--trace in.json]");
    println!("             [--profile in.folded] [--health in.jsonl] [--title NAME]");
    println!("             [--out report.html]");
    println!("      render routing-run artifacts into a self-contained HTML post-mortem");
    println!("  dgr doctor [--telemetry in.jsonl] [--ledger [path]]");
    println!("      replay a run's telemetry (and/or the run ledger) through the");
    println!("      sentinel convergence rules; print ranked findings with evidence");
    println!("      windows, exit nonzero when any rule trips");
    println!("  dgr serve-jobs <addr> [--workers N] [--queue-cap N] [--retain N]");
    println!("             [--no-ledger]");
    println!("      run dgrd: a multi-tenant routing job server (POST /jobs, ");
    println!("      GET /jobs/:id[/report|/telemetry|/guide], DELETE /jobs/:id,");
    println!("      plus the /metrics /status /report observability routes)");
    println!();
    println!("observability:");
    println!("  --trace out.json      record phase spans, write a Chrome trace-event file");
    println!("  --telemetry out.jsonl stream one JSONL row per training iteration");
    println!("  --snap out.snaps      stream per-g-cell congestion snapshots + attribution");
    println!("  --snap-every N        training snapshot stride (default: iterations/16)");
    println!("  --serve ADDR          live HTTP exporter: /metrics /status /report");
    println!("  --profile out.folded  sampling self-profiler → collapsed stacks");
    println!("  --no-ledger           skip the persistent run ledger for this run");
    println!("  --progress N          progress line every N iterations (default 100)");
    println!("  --quiet               suppress the progress line");
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_generate(args: &[String]) -> CliResult {
    let case_name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("generate needs a case name")?;
    let case = dgr::io::catalog_case(case_name)
        .ok_or_else(|| format!("unknown catalog case `{case_name}`"))?;
    let mut config = case.config.clone();
    if args.iter().any(|a| a == "--fast") {
        config.num_nets /= 4;
        config.width = (config.width / 2).max(20);
        config.height = (config.height / 2).max(20);
        config.clusters = (config.clusters / 4).max(3);
        config.cluster_spread /= 2.0;
    }
    let design = dgr::io::IspdLikeGenerator::new(config).generate()?;
    let text = dgr::io::write_design(&design);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, text)?;
            println!(
                "wrote {} ({} nets, {}x{} grid, {} layers)",
                path,
                design.num_nets(),
                design.grid.width(),
                design.grid.height(),
                design.num_layers
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `dgr serve-jobs`: boot `dgrd` and serve routing jobs until killed.
fn cmd_serve_jobs(args: &[String]) -> CliResult {
    let addr = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !is_flag_operand(args, *i))
        .map(|(_, a)| a.as_str())
        .ok_or("serve-jobs needs a listen address (e.g. 127.0.0.1:7878)")?;
    let mut cfg = dgr::daemon::DaemonConfig::default();
    if let Some(v) = flag_value(args, "--workers") {
        cfg.workers = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--queue-cap") {
        cfg.queue_capacity = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--retain") {
        cfg.retain_jobs = v.parse()?;
    }
    cfg.ledger = !args.iter().any(|a| a == "--no-ledger");
    // the daemon is an observability surface by nature: metrics, per-job
    // status scopes and reports are always on
    dgr::obs::reset();
    dgr::obs::set_enabled(true);
    let rss = dgr::obs::profile::read_rss_bytes().unwrap_or(0);
    dgr::obs::gauge("process.rss_bytes").set(rss as f64);
    let daemon = dgr::daemon::Daemon::start(addr, cfg)?;
    eprintln!(
        "dgrd: http://{}/  (POST /jobs, GET|DELETE /jobs/:id, /metrics /status)",
        daemon.local_addr()
    );
    loop {
        std::thread::park();
    }
}

/// Flags that take no operand — anything after them can be the design
/// positional.
const BARE_FLAGS: &[&str] = &["--quiet", "--fast", "--no-ledger", "--ledger"];

/// Whether `arg` sits right after a value-taking flag (so the design
/// positional scan skips e.g. the `127.0.0.1:0` after `--serve`).
fn is_flag_operand(args: &[String], index: usize) -> bool {
    index
        .checked_sub(1)
        .and_then(|i| args.get(i))
        .is_some_and(|prev| prev.starts_with("--") && !BARE_FLAGS.contains(&prev.as_str()))
}

fn design_arg(args: &[String]) -> Result<&str, Box<dyn std::error::Error>> {
    Ok(args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !is_flag_operand(args, *i))
        .map(|(_, a)| a.as_str())
        .ok_or("missing design file")?)
}

fn load_design(args: &[String]) -> Result<Design, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(design_arg(args)?)?;
    Ok(dgr::io::parse_design(&text)?)
}

fn config_from(args: &[String]) -> Result<DgrConfig, Box<dyn std::error::Error>> {
    let mut cfg = DgrConfig::default();
    if let Some(v) = flag_value(args, "--iterations") {
        cfg.iterations = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--seed") {
        cfg.seed = v.parse()?;
    }
    Ok(cfg)
}

/// Live observability attached to one CLI run: the optional Chrome
/// trace, the sampling self-profiler, and the HTTP exporter.
///
/// The span registry is enabled for every `route`/`train` run (the
/// persistent ledger needs per-phase totals either way); the end-of-run
/// summary tables only print when the user asked for observability
/// explicitly, so plain runs keep their original output.
struct ObsSession {
    trace: Option<String>,
    profile: Option<String>,
    profiler: Option<Profiler>,
    /// Held for its lifetime only: dropping it stops the HTTP exporter.
    _server: Option<ObsServer>,
    show_summary: bool,
}

fn obs_session(
    args: &[String],
    job: &str,
    total_iters: u64,
    batch: u64,
) -> Result<ObsSession, Box<dyn std::error::Error>> {
    let trace = flag_value(args, "--trace").map(str::to_string);
    let profile = flag_value(args, "--profile").map(str::to_string);
    let serve = flag_value(args, "--serve");
    let show_summary = trace.is_some() || profile.is_some() || serve.is_some();
    dgr::obs::reset();
    dgr::obs::set_enabled(true);
    // publish the run identity and seed the RSS gauge before the
    // listener comes up, so the very first /status and /metrics scrapes
    // are never empty
    dgr::obs::status_begin(job, total_iters, batch);
    let rss = dgr::obs::profile::read_rss_bytes().unwrap_or(0);
    dgr::obs::gauge("process.rss_bytes").set(rss as f64);
    let server = match serve {
        Some(addr) => {
            let server = ObsServer::start(addr)?;
            eprintln!(
                "observatory: http://{}/  (/metrics /status /report)",
                server.local_addr()
            );
            Some(server)
        }
        None => None,
    };
    let profiler = profile
        .is_some()
        .then(|| Profiler::start(ProfilerConfig::default()));
    Ok(ObsSession {
        trace,
        profile,
        profiler,
        _server: server,
        show_summary,
    })
}

/// Stops the profiler and server, writes the trace and folded profile
/// (if requested) and prints the end-of-run summary tables.
fn obs_finish(mut session: ObsSession) -> CliResult {
    if let Some(profiler) = session.profiler.take() {
        let profile = profiler.stop();
        if let Some(path) = session.profile.as_deref() {
            profile.write(path)?;
            let hottest = profile
                .hot_frames()
                .first()
                .map_or_else(|| "(idle)".to_string(), |(frame, _)| frame.clone());
            println!();
            println!(
                "profile → {path} ({} samples, {} busy, hottest frame: {hottest})",
                profile.samples,
                profile.busy_samples(),
            );
        }
    }
    if session.show_summary {
        print_summary_tables();
    }
    if let Some(path) = session.trace.as_deref() {
        dgr::obs::write_chrome_trace(path)?;
        println!();
        println!("trace → {path} (load at chrome://tracing)");
    }
    // the HTTP exporter (if any) stops when `session` drops here
    Ok(())
}

fn print_summary_tables() {
    let totals = dgr::obs::span_totals();
    if !totals.is_empty() {
        println!();
        println!(
            "{:<16} {:>8} {:>12} {:>12}",
            "span", "calls", "total (ms)", "mean (µs)"
        );
        for t in &totals {
            println!(
                "{:<16} {:>8} {:>12.2} {:>12.1}",
                t.name,
                t.count,
                t.total.as_secs_f64() * 1e3,
                t.mean().as_secs_f64() * 1e6,
            );
        }
    }
    let metrics = dgr::obs::metrics_snapshot();
    if !metrics.is_empty() {
        println!();
        println!("{:<22} {:>16}", "metric", "value");
        for m in &metrics {
            use dgr::obs::MetricValue;
            match m.value {
                MetricValue::Counter(v) => println!("{:<22} {:>16}", m.name, v),
                MetricValue::Gauge(v) => println!("{:<22} {:>16.3}", m.name, v),
                MetricValue::Histogram {
                    count,
                    mean,
                    p50,
                    p95,
                    p99,
                    ..
                } => println!(
                    "{:<22} {:>16}  (mean {mean:.0}, p50 ≤ {p50}, p95 ≤ {p95}, p99 ≤ {p99})",
                    m.name, count
                ),
            }
        }
        let (hits, misses) = rsmt_cache_counts();
        if hits + misses > 0 {
            println!(
                "{:<22} {:>15.1}%  ({hits} hits / {misses} misses)",
                "rsmt cache hit rate",
                100.0 * hits as f64 / (hits + misses) as f64
            );
        }
    }
}

fn rsmt_cache_counts() -> (u64, u64) {
    (
        dgr::obs::counter("rsmt.cache.hits").get(),
        dgr::obs::counter("rsmt.cache.misses").get(),
    )
}

/// Everything the persistent ledger wants to know about a finished run.
struct RunOutcome<'a> {
    cmd: &'a str,
    design_path: &'a str,
    design: &'a Design,
    cfg: &'a DgrConfig,
    batch: u64,
    wall: Duration,
    final_loss: f64,
    wirelength: u64,
    overflow: f64,
    overflowed_edges: u64,
    vias: u64,
}

/// Appends the run's summary record to the persistent ledger (unless
/// `--no-ledger`). Best effort by contract: a failed append only
/// suppresses the confirmation line.
fn append_ledger(args: &[String], outcome: &RunOutcome<'_>) {
    if args.iter().any(|a| a == "--no-ledger") {
        return;
    }
    let mut phases = BTreeMap::new();
    let mut train_ms = 0.0f64;
    for t in dgr::obs::span_totals() {
        let ms = t.total.as_secs_f64() * 1e3;
        if t.name == "train" || t.name == "train_batched" {
            train_ms += ms;
        }
        phases.insert(t.name.to_string(), ms);
    }
    let wall_ms = outcome.wall.as_secs_f64() * 1e3;
    let train_secs = if train_ms > 0.0 { train_ms } else { wall_ms } / 1e3;
    let iterations = outcome.cfg.iterations as u64;
    let it_per_s = if train_secs > 0.0 {
        iterations as f64 / train_secs
    } else {
        0.0
    };
    let (cache_hits, cache_misses) = rsmt_cache_counts();
    let record = LedgerRecord {
        version: LEDGER_VERSION,
        hash: String::new(),
        ts: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        cmd: outcome.cmd.to_string(),
        design: design_stem(outcome.design_path),
        nets: outcome.design.num_nets() as u64,
        config_fp: config_fingerprint(outcome.design_path, outcome.design, outcome.cfg),
        iterations,
        seed: outcome.cfg.seed,
        batch: outcome.batch,
        wall_ms: wall_ms as u64,
        it_per_s,
        loss: outcome.final_loss,
        wirelength: outcome.wirelength,
        overflow: outcome.overflow,
        overflowed_edges: outcome.overflowed_edges,
        vias: outcome.vias,
        cache_hits,
        cache_misses,
        phases,
        health: dgr::obs::enabled()
            .then(|| dgr::obs::health_summary_of(dgr::obs::status_scope_id())),
    };
    if let Some(path) = ledger::append(&record) {
        println!("  ledger           : appended → {}", path.display());
    }
}

fn design_stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.to_string(), |s| s.to_string_lossy().into_owned())
}

/// FNV-1a fingerprint of everything that makes two runs comparable:
/// the design identity and the full routing configuration minus the
/// seed (seed sweeps of one config should compare against each other).
fn config_fingerprint(design_path: &str, design: &Design, cfg: &DgrConfig) -> String {
    let mut fp_cfg = cfg.clone();
    fp_cfg.seed = 0;
    let key = format!(
        "{}|{}|{}x{}|{}|{:?}",
        design_stem(design_path),
        design.num_nets(),
        design.grid.width(),
        design.grid.height(),
        design.num_layers,
        fp_cfg
    );
    format!("{:016x}", ledger::fnv1a64(key.as_bytes()))
}

fn route_hooks(
    args: &[String],
    iterations: usize,
) -> Result<RouteHooks, Box<dyn std::error::Error>> {
    let mut hooks = RouteHooks::default();
    if let Some(path) = flag_value(args, "--telemetry") {
        hooks.telemetry = Some(TelemetrySink::to_path(path)?);
    }
    if let Some(path) = flag_value(args, "--snap") {
        let every = match flag_value(args, "--snap-every") {
            Some(v) => v.parse()?,
            None => (iterations / 16).max(1),
        };
        hooks.snap = Some(SnapshotConfig {
            sink: SnapshotSink::to_path(path)?,
            every,
        });
    }
    if !args.iter().any(|a| a == "--quiet") {
        let mut progress = ProgressConfig::default();
        if let Some(v) = flag_value(args, "--progress") {
            progress.every = v.parse()?;
        }
        hooks.progress = Some(progress);
    }
    Ok(hooks)
}

fn cmd_route(args: &[String]) -> CliResult {
    let design = load_design(args)?;
    let cfg = config_from(args)?;
    let session = obs_session(args, "route", cfg.iterations as u64, 1)?;
    let mut hooks = route_hooks(args, cfg.iterations)?;
    let weights = cfg.weights;
    let t0 = std::time::Instant::now();
    let mut solution = DgrRouter::new(cfg.clone()).route_with_hooks(&design, &mut hooks)?;
    let report = refine(&design, &mut solution, RefineConfig::default())?;
    let elapsed = t0.elapsed();
    if let Some(snap) = hooks.snap.as_mut() {
        // post-refinement congestion plus the final offender attribution
        let final_iter = solution
            .train_report
            .as_ref()
            .and_then(|r| r.curve.last())
            .map_or(0, |p| p.iter as u64 + 1);
        dgr::core::write_solution_snapshot(
            &mut snap.sink,
            &design,
            &solution,
            final_iter,
            "refine",
        );
        write_attribution(&mut snap.sink, &design, &solution, &weights, "final");
        snap.sink.flush();
    }

    let m = &solution.metrics;
    println!("routed {} nets in {elapsed:.2?}", design.num_nets());
    println!("  wirelength       : {}", m.total_wirelength);
    println!("  turning points   : {}", m.total_turns);
    println!("  overflowed edges : {}", m.overflow.overflowed_edges);
    println!("  total overflow   : {:.2}", m.overflow.total_overflow);
    println!(
        "  refinement       : {} nets rerouted ({} → {} overflowed edges)",
        report.nets_rerouted, report.overflowed_before, report.overflowed_after
    );
    let mut vias = m.total_turns;
    if design.num_layers >= 2 {
        let assigned = assign_layers(&design, &solution, AssignConfig::default())?;
        println!("  vias (3D)        : {}", assigned.total_vias);
        println!("  3D overflow      : {}", assigned.overflowed_edges3d);
        vias = assigned.total_vias;
        if let Some(path) = flag_value(args, "--guide") {
            let guide = RouteGuide::from_assignment(&design, &assigned);
            std::fs::write(path, guide.to_text())?;
            println!("  guide boxes      : {} → {}", guide.num_boxes(), path);
        }
    }
    if let Some(path) = flag_value(args, "--routes") {
        std::fs::write(path, solution.to_text())?;
        println!("  routes checkpoint → {path}");
    }
    let mut final_loss = f64::NAN;
    if let Some(report) = &solution.train_report {
        final_loss = report.final_loss as f64;
        if let (Some(first), Some(last)) = (report.curve.first(), report.curve.last()) {
            println!(
                "  training loss    : {:.2} → {:.2} over {} iterations",
                first.loss,
                last.loss,
                last.iter + 1
            );
        }
    }
    if let Some(sink) = &hooks.telemetry {
        let path = flag_value(args, "--telemetry").unwrap_or("?");
        println!("  telemetry        : {} rows → {path}", sink.rows());
    }
    if let Some(snap) = &hooks.snap {
        let path = flag_value(args, "--snap").unwrap_or("?");
        println!("  snapshots        : {} → {path}", snap.sink.snapshots());
    }
    append_ledger(
        args,
        &RunOutcome {
            cmd: "route",
            design_path: design_arg(args)?,
            design: &design,
            cfg: &cfg,
            batch: 1,
            wall: elapsed,
            final_loss,
            wirelength: m.total_wirelength,
            overflow: m.overflow.total_overflow,
            overflowed_edges: m.overflow.overflowed_edges as u64,
            vias,
        },
    );
    obs_finish(session)?;
    Ok(())
}

/// `dgr train`: batched multi-seed training — one tape evaluates
/// `--batch N` seeds at once (seed, seed+1, …), each reproducing its
/// standalone trajectory bit for bit; the best instance by final loss is
/// extracted into the reported solution.
fn cmd_train(args: &[String]) -> CliResult {
    use dgr::core::{
        build_cost_model_batched, extract_solution_instance, train_batched_with_hooks,
        SnapshotProbe, TrainHooks,
    };

    let design = load_design(args)?;
    let cfg = config_from(args)?;
    cfg.validate()?;
    let batch: usize = match flag_value(args, "--batch") {
        Some(v) => v.parse()?,
        None => 1,
    };
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let seeds: Vec<u64> = (0..batch as u64).map(|b| cfg.seed + b).collect();
    let session = obs_session(args, "train", cfg.iterations as u64, batch as u64)?;

    let mut telemetry = flag_value(args, "--telemetry")
        .map(TelemetrySink::to_path)
        .transpose()?;
    let mut snap_sink = flag_value(args, "--snap")
        .map(SnapshotSink::to_path)
        .transpose()?;
    let snap_every = match flag_value(args, "--snap-every") {
        Some(v) => v.parse()?,
        None => (cfg.iterations / 16).max(1),
    };

    let t0 = std::time::Instant::now();
    let pools: Vec<_> = design
        .nets
        .iter()
        .map(|n| dgr::rsmt::tree_candidates(&n.pins, &cfg.candidates))
        .collect::<Result<_, _>>()?;
    let forest = dgr::dag::build_forest(&design.grid, &pools, cfg.patterns)?;
    let (mut model, mut rngs) = build_cost_model_batched(&design, &forest, &cfg, &seeds);
    let mut hooks = TrainHooks {
        telemetry: telemetry.as_mut(),
        snap: snap_sink.as_mut().map(|sink| SnapshotProbe {
            sink,
            design: &design,
            every: snap_every,
        }),
        progress: (!args.iter().any(|a| a == "--quiet")).then(ProgressConfig::default),
        iter_offset: 0,
        skip_rss: false,
        cancel: None,
    };
    let reports = train_batched_with_hooks(&mut model, &cfg, &mut rngs, &mut hooks);

    println!(
        "trained {} instance(s) of {} nets in {:.2?} ({} iterations each)",
        batch,
        design.num_nets(),
        t0.elapsed(),
        cfg.iterations
    );
    let mut best = 0usize;
    for (b, report) in reports.iter().enumerate() {
        println!(
            "  seed {:>4}  final loss {:>12.4}  final temperature {:.4}",
            seeds[b], report.final_loss, report.final_temperature
        );
        if report.final_loss < reports[best].final_loss {
            best = b;
        }
    }
    let solution = extract_solution_instance(&design, &forest, &mut model, &cfg, best)?;
    let elapsed = t0.elapsed();
    let m = &solution.metrics;
    println!("best: seed {} (instance {best})", seeds[best]);
    println!("  wirelength       : {}", m.total_wirelength);
    println!("  turning points   : {}", m.total_turns);
    println!("  overflowed edges : {}", m.overflow.overflowed_edges);
    println!("  total overflow   : {:.2}", m.overflow.total_overflow);
    if let Some(path) = flag_value(args, "--routes") {
        std::fs::write(path, solution.to_text())?;
        println!("  routes checkpoint → {path}");
    }
    if let Some(sink) = telemetry.as_mut() {
        sink.flush();
        let path = flag_value(args, "--telemetry").unwrap_or("?");
        println!("  telemetry        : {} rows → {path}", sink.rows());
    }
    if let Some(sink) = snap_sink.as_mut() {
        sink.flush();
        let path = flag_value(args, "--snap").unwrap_or("?");
        println!("  snapshots        : {} → {path}", sink.snapshots());
    }
    append_ledger(
        args,
        &RunOutcome {
            cmd: "train",
            design_path: design_arg(args)?,
            design: &design,
            cfg: &cfg,
            batch: batch as u64,
            wall: elapsed,
            final_loss: f64::from(reports[best].final_loss),
            wirelength: m.total_wirelength,
            overflow: m.overflow.total_overflow,
            overflowed_edges: m.overflow.overflowed_edges as u64,
            vias: m.total_turns,
        },
    );
    obs_finish(session)?;
    Ok(())
}

/// `dgr report`: render telemetry / snapshot / trace / profile
/// artifacts into one deterministic, self-contained HTML post-mortem.
fn cmd_report(args: &[String]) -> CliResult {
    let read_opt = |flag: &str| -> Result<Option<String>, std::io::Error> {
        flag_value(args, flag)
            .map(std::fs::read_to_string)
            .transpose()
    };
    let inputs = ReportInputs {
        title: flag_value(args, "--title")
            .unwrap_or("routing run")
            .to_string(),
        telemetry: read_opt("--telemetry")?,
        snapshots: read_opt("--snap")?,
        trace: read_opt("--trace")?,
        profile: read_opt("--profile")?,
        health: read_opt("--health")?,
    };
    if inputs.telemetry.is_none()
        && inputs.snapshots.is_none()
        && inputs.trace.is_none()
        && inputs.profile.is_none()
        && inputs.health.is_none()
    {
        return Err(
            "report needs at least one of --telemetry / --snap / --trace / --profile / --health"
                .into(),
        );
    }
    let html = render_report(&inputs)?;
    let out = flag_value(args, "--out").unwrap_or("report.html");
    std::fs::write(out, &html)?;
    println!("report → {out} ({} bytes)", html.len());
    Ok(())
}

/// `dgr doctor`: offline convergence triage. Replays a telemetry JSONL
/// file through the sentinel rule engine (and/or checks the newest
/// ledger record's iteration rate against its last comparable run) and
/// prints ranked findings with their evidence windows. Exits nonzero
/// when anything trips, so CI can gate on it.
fn cmd_doctor(args: &[String]) -> CliResult {
    let telemetry = flag_value(args, "--telemetry");
    let use_ledger = args.iter().any(|a| a == "--ledger");
    if telemetry.is_none() && !use_ledger {
        return Err("doctor needs --telemetry <in.jsonl> and/or --ledger [path]".into());
    }

    let mut findings = Vec::new();
    if let Some(path) = telemetry {
        let text = std::fs::read_to_string(path)?;
        let rows = dgr::obs::rows_from_jsonl(&text)
            .map_err(|(line, e)| format!("{path}: line {line}: {e}"))?;
        println!("doctor: {} telemetry row(s) from {path}", rows.len());
        findings.extend(dgr::obs::analyze_rows(&rows));
    }
    if use_ledger {
        let path = resolve_ledger_path(args)?;
        let records = ledger::load(&path);
        println!(
            "doctor: {} ledger record(s) from {}",
            records.len(),
            path.display()
        );
        if let Some((prev, last)) = last_comparable_pair(&records) {
            findings.extend(dgr::obs::rate_collapse_finding(
                last.it_per_s,
                prev.it_per_s,
            ));
        }
    }
    dgr::obs::rank_findings(&mut findings);

    if findings.is_empty() {
        println!("doctor: no findings — the run looks healthy");
        return Ok(());
    }
    println!();
    for (i, f) in findings.iter().enumerate() {
        println!(
            "{:>3}. [{}] {} @ iteration {} — {}",
            i + 1,
            f.severity.as_str(),
            f.rule,
            f.iter,
            f.message
        );
        if let (Some((lo, first)), Some((hi, last))) = (f.evidence.first(), f.evidence.last()) {
            println!(
                "     evidence: iterations {lo}..{hi} ({} samples, {first:.4} -> {last:.4})",
                f.evidence.len()
            );
        }
    }
    println!();
    Err(format!(
        "{} health finding(s); worst verdict: {}",
        findings.len(),
        dgr::obs::verdict_of(&findings).as_str()
    )
    .into())
}

/// `dgr history`: render the persistent run ledger as a table, newest
/// runs last, with a per-phase delta against the previous comparable
/// run (same config fingerprint).
fn cmd_history(args: &[String]) -> CliResult {
    let path = resolve_ledger_path(args)?;
    let records = ledger::load(&path);
    if records.is_empty() {
        println!("ledger empty: {}", path.display());
        return Ok(());
    }
    let limit: usize = match flag_value(args, "--limit") {
        Some(v) => v.parse()?,
        None => 16,
    };
    let start = records.len().saturating_sub(limit);
    println!(
        "{:<16} {:<6} {:<16} {:>6} {:>6} {:>3} {:>9} {:>12} {:>9} {:>8}",
        "when", "cmd", "design", "iters", "nets", "b", "it/s", "loss", "wl", "ovf"
    );
    for r in &records[start..] {
        println!(
            "{:<16} {:<6} {:<16} {:>6} {:>6} {:>3} {:>9.1} {:>12.2} {:>9} {:>8.2}",
            fmt_ts(r.ts),
            r.cmd,
            r.design,
            r.iterations,
            r.nets,
            r.batch,
            r.it_per_s,
            r.loss,
            r.wirelength,
            r.overflow,
        );
    }
    if let Some((prev, last)) = last_comparable_pair(&records) {
        print_run_delta(prev, last);
    }
    println!();
    println!(
        "{} record(s) in {} (showing last {})",
        records.len(),
        path.display(),
        records.len() - start
    );
    Ok(())
}

fn resolve_ledger_path(args: &[String]) -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    // `--ledger path` names a file explicitly; bare `--ledger` (as in
    // `compare --ledger`) falls through to the environment default.
    if let Some(p) = flag_value(args, "--ledger").filter(|p| !p.starts_with("--")) {
        return Ok(std::path::PathBuf::from(p));
    }
    ledger::ledger_path().ok_or_else(|| "ledger disabled (set DGR_LEDGER or HOME)".into())
}

/// The newest record plus the most recent earlier record sharing its
/// config fingerprint.
fn last_comparable_pair(records: &[LedgerRecord]) -> Option<(&LedgerRecord, &LedgerRecord)> {
    let last = records.last()?;
    let prev = records[..records.len() - 1]
        .iter()
        .rev()
        .find(|r| r.config_fp == last.config_fp)?;
    Some((prev, last))
}

fn print_run_delta(prev: &LedgerRecord, last: &LedgerRecord) {
    println!();
    println!(
        "delta vs previous comparable run (config {}):",
        &last.config_fp[..8.min(last.config_fp.len())]
    );
    let scalar = |name: &str, a: f64, b: f64, unit: &str| {
        println!(
            "  {:<18} {:>12.2} → {:<12.2} {:>8} {unit}",
            name,
            a,
            b,
            fmt_delta_pct(a, b)
        );
    };
    scalar("loss", prev.loss, last.loss, "");
    scalar(
        "wirelength",
        prev.wirelength as f64,
        last.wirelength as f64,
        "",
    );
    scalar("overflow", prev.overflow, last.overflow, "");
    scalar("it/s", prev.it_per_s, last.it_per_s, "");
    scalar("wall", prev.wall_ms as f64, last.wall_ms as f64, "ms");
    let mut names: Vec<&String> = prev.phases.keys().chain(last.phases.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let a = prev.phases.get(name).copied().unwrap_or(0.0);
        let b = last.phases.get(name).copied().unwrap_or(0.0);
        println!(
            "  phase {:<12} {:>12.2} → {:<12.2} {:>8} ms",
            name,
            a,
            b,
            fmt_delta_pct(a, b)
        );
    }
}

fn fmt_delta_pct(a: f64, b: f64) -> String {
    if a == 0.0 {
        return "—".to_string();
    }
    format!("{:+.1}%", 100.0 * (b - a) / a)
}

/// Formats a unix timestamp as `YYYY-MM-DD HH:MM` (UTC) — civil-from-days
/// without a date dependency.
fn fmt_ts(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe as i64 + era * 400 + i64::from(month <= 2);
    format!(
        "{year:04}-{month:02}-{day:02} {:02}:{:02}",
        rem / 3600,
        (rem % 3600) / 60
    )
}

/// `dgr compare --ledger`: per-phase deltas of the last two comparable
/// ledger runs plus a short regression trend over the trailing window.
fn cmd_compare_ledger(args: &[String]) -> CliResult {
    let path = resolve_ledger_path(args)?;
    let records = ledger::load(&path);
    let Some((prev, last)) = last_comparable_pair(&records) else {
        return Err(format!(
            "need two runs with the same config in {} ({} record(s) present) — run the same \
             `dgr route`/`dgr train` twice",
            path.display(),
            records.len()
        )
        .into());
    };
    println!(
        "comparing the last two `{}` runs of {} ({} nets):",
        last.cmd, last.design, last.nets
    );
    print_run_delta(prev, last);
    let window: Vec<&LedgerRecord> = records
        .iter()
        .filter(|r| r.config_fp == last.config_fp)
        .collect();
    let tail = &window[window.len().saturating_sub(8)..];
    if tail.len() > 2 {
        println!();
        println!(
            "trend over the last {} comparable runs (oldest first):",
            tail.len()
        );
        let series = |name: &str, values: Vec<f64>| {
            println!("  {:<10} {}  {}", name, spark(&values), fmt_series(&values));
        };
        series("loss", tail.iter().map(|r| r.loss).collect());
        series("it/s", tail.iter().map(|r| r.it_per_s).collect());
        series("wall ms", tail.iter().map(|r| r.wall_ms as f64).collect());
    }
    Ok(())
}

fn spark(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

fn fmt_series(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:.1}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn cmd_compare(args: &[String]) -> CliResult {
    if args.iter().any(|a| a == "--ledger") {
        return cmd_compare_ledger(args);
    }
    let design = load_design(args)?;
    let cfg = config_from(args)?;
    let session = obs_session(args, "compare", cfg.iterations as u64, 1)?;
    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "router", "wirelength", "turns", "ovf edges", "ovf total", "t(s)"
    );
    let run = |name: &str,
               solve: &mut dyn FnMut() -> Result<
        dgr::core::RoutingSolution,
        Box<dyn std::error::Error>,
    >|
     -> Result<dgr::core::RoutingSolution, Box<dyn std::error::Error>> {
        let t0 = std::time::Instant::now();
        let mut sol = solve()?;
        refine(&design, &mut sol, RefineConfig::default())?;
        let t = t0.elapsed().as_secs_f64();
        let m = &sol.metrics;
        println!(
            "{:<12} {:>10} {:>8} {:>10} {:>10.2} {:>8.2}",
            name,
            m.total_wirelength,
            m.total_turns,
            m.overflow.overflowed_edges,
            m.overflow.total_overflow,
            t
        );
        Ok(sol)
    };
    let dgr_sol = run("dgr", &mut || {
        Ok(DgrRouter::new(cfg.clone()).route(&design)?)
    })?;
    run("sequential", &mut || {
        Ok(SequentialRouter::default().route(&design)?)
    })?;
    run("sproute", &mut || {
        Ok(SprouteRouter::default().route(&design)?)
    })?;
    run("lagrangian", &mut || {
        Ok(LagrangianRouter::default().route(&design)?)
    })?;
    // The retained curve (TrainReport::curve) shows how the DGR loss moved
    // without re-running or re-deriving anything.
    if let Some(report) = &dgr_sol.train_report {
        if let (Some(first), Some(last)) = (report.curve.first(), report.curve.last()) {
            println!();
            println!(
                "dgr training: loss {:.2} → {:.2}, overflow {:.2} → {:.2} ({} curve points)",
                first.loss,
                last.loss,
                first.overflow,
                last.overflow,
                report.curve.len()
            );
        }
    }
    obs_finish(session)?;
    Ok(())
}
