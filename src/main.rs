//! `dgr` — command-line front end for the differentiable global router.
//!
//! ```text
//! dgr generate <case> [--out design.txt]        # emit a catalog design
//! dgr route <design.txt> [--iterations N] [--seed S]
//!          [--routes out.txt] [--guide out.guide]
//!          [--trace out.json] [--telemetry out.jsonl]
//!          [--snap out.snaps] [--snap-every N]
//!          [--progress N] [--quiet]
//! dgr compare <design.txt> [--iterations N]     # DGR vs all baselines
//! dgr report [--telemetry in.jsonl] [--snap in.snaps] [--trace in.json]
//!            [--title NAME] [--out report.html]
//! ```
//!
//! `--trace` turns on the `dgr-obs` span registry and writes a Chrome
//! trace-event file (load it at `chrome://tracing` or in Perfetto);
//! `--telemetry` streams one JSONL row per training iteration; `--snap`
//! streams per-g-cell congestion snapshots plus the per-net overflow
//! attribution. `dgr report` renders those artifacts into one
//! self-contained HTML post-mortem.

use std::process::ExitCode;

use dgr::baseline::{LagrangianRouter, SequentialRouter, SprouteRouter};
use dgr::core::{
    write_attribution, DgrConfig, DgrRouter, ProgressConfig, RouteHooks, SnapshotConfig,
};
use dgr::grid::Design;
use dgr::obs::{render_report, ReportInputs, SnapshotSink, TelemetrySink};
use dgr::post::{assign_layers, refine, AssignConfig, RefineConfig, RouteGuide};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("cases") => {
            for name in dgr::io::catalog_names() {
                let case = dgr::io::catalog_case(name).expect("listed case exists");
                println!(
                    "{name:<16} {:>6} nets  {:>4}x{:<4}  {} layers{}",
                    case.config.num_nets,
                    case.config.width,
                    case.config.height,
                    case.config.num_layers,
                    if case.congested { "  (congested)" } else { "" }
                );
            }
            Ok(())
        }
        Some("generate") => cmd_generate(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("dgr — differentiable global router (DAC 2024 reproduction)");
    println!();
    println!("usage:");
    println!("  dgr cases");
    println!("      list the benchmark catalog");
    println!("  dgr generate <case> [--out design.txt] [--fast]");
    println!("      emit a named catalog design (e.g. ispd18_test1, ispd19_7m)");
    println!("  dgr route <design.txt> [--iterations N] [--seed S]");
    println!("            [--routes out.txt] [--guide out.guide]");
    println!("            [--trace out.json] [--telemetry out.jsonl]");
    println!("            [--snap out.snaps] [--snap-every N]");
    println!("            [--progress N] [--quiet]");
    println!("      route a design and print metrics");
    println!("  dgr train <design.txt> [--batch N] [--iterations N] [--seed S]");
    println!("            [--routes out.txt]");
    println!("      train N seeds on one batched tape, report each, extract the best");
    println!("  dgr compare <design.txt> [--iterations N] [--trace out.json]");
    println!("      route with DGR and every baseline, print a comparison table");
    println!("  dgr report [--telemetry in.jsonl] [--snap in.snaps] [--trace in.json]");
    println!("             [--title NAME] [--out report.html]");
    println!("      render routing-run artifacts into a self-contained HTML post-mortem");
    println!();
    println!("observability:");
    println!("  --trace out.json      record phase spans, write a Chrome trace-event file");
    println!("  --telemetry out.jsonl stream one JSONL row per training iteration");
    println!("  --snap out.snaps      stream per-g-cell congestion snapshots + attribution");
    println!("  --snap-every N        training snapshot stride (default: iterations/16)");
    println!("  --progress N          progress line every N iterations (default 100)");
    println!("  --quiet               suppress the progress line");
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_generate(args: &[String]) -> CliResult {
    let case_name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("generate needs a case name")?;
    let case = dgr::io::catalog_case(case_name)
        .ok_or_else(|| format!("unknown catalog case `{case_name}`"))?;
    let mut config = case.config.clone();
    if args.iter().any(|a| a == "--fast") {
        config.num_nets /= 4;
        config.width = (config.width / 2).max(20);
        config.height = (config.height / 2).max(20);
        config.clusters = (config.clusters / 4).max(3);
        config.cluster_spread /= 2.0;
    }
    let design = dgr::io::IspdLikeGenerator::new(config).generate()?;
    let text = dgr::io::write_design(&design);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, text)?;
            println!(
                "wrote {} ({} nets, {}x{} grid, {} layers)",
                path,
                design.num_nets(),
                design.grid.width(),
                design.grid.height(),
                design.num_layers
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn load_design(args: &[String]) -> Result<Design, Box<dyn std::error::Error>> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing design file")?;
    let text = std::fs::read_to_string(path)?;
    Ok(dgr::io::parse_design(&text)?)
}

fn config_from(args: &[String]) -> Result<DgrConfig, Box<dyn std::error::Error>> {
    let mut cfg = DgrConfig::default();
    if let Some(v) = flag_value(args, "--iterations") {
        cfg.iterations = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--seed") {
        cfg.seed = v.parse()?;
    }
    Ok(cfg)
}

/// Parses the shared observability flags: enables the span registry when
/// `--trace` is given and returns the trace output path.
fn obs_setup(args: &[String]) -> Option<&str> {
    let trace = flag_value(args, "--trace");
    if trace.is_some() {
        dgr::obs::set_enabled(true);
    }
    trace
}

/// Writes the Chrome trace (if requested) and prints the end-of-run
/// span/metrics summary table.
fn obs_finish(trace: Option<&str>) -> CliResult {
    if !dgr::obs::enabled() {
        return Ok(());
    }
    let totals = dgr::obs::span_totals();
    if !totals.is_empty() {
        println!();
        println!(
            "{:<16} {:>8} {:>12} {:>12}",
            "span", "calls", "total (ms)", "mean (µs)"
        );
        for t in &totals {
            println!(
                "{:<16} {:>8} {:>12.2} {:>12.1}",
                t.name,
                t.count,
                t.total.as_secs_f64() * 1e3,
                t.mean().as_secs_f64() * 1e6,
            );
        }
    }
    let metrics = dgr::obs::metrics_snapshot();
    if !metrics.is_empty() {
        println!();
        println!("{:<22} {:>16}", "metric", "value");
        for m in &metrics {
            use dgr::obs::MetricValue;
            match m.value {
                MetricValue::Counter(v) => println!("{:<22} {:>16}", m.name, v),
                MetricValue::Gauge(v) => println!("{:<22} {:>16.3}", m.name, v),
                MetricValue::Histogram {
                    count, mean, p99, ..
                } => println!(
                    "{:<22} {:>16}  (mean {:.0}, p99 ≤ {:.0})",
                    m.name, count, mean, p99
                ),
            }
        }
    }
    if let Some(path) = trace {
        dgr::obs::write_chrome_trace(path)?;
        println!();
        println!("trace → {path} (load at chrome://tracing)");
    }
    Ok(())
}

fn route_hooks(
    args: &[String],
    iterations: usize,
) -> Result<RouteHooks, Box<dyn std::error::Error>> {
    let mut hooks = RouteHooks::default();
    if let Some(path) = flag_value(args, "--telemetry") {
        hooks.telemetry = Some(TelemetrySink::to_path(path)?);
    }
    if let Some(path) = flag_value(args, "--snap") {
        let every = match flag_value(args, "--snap-every") {
            Some(v) => v.parse()?,
            None => (iterations / 16).max(1),
        };
        hooks.snap = Some(SnapshotConfig {
            sink: SnapshotSink::to_path(path)?,
            every,
        });
    }
    if !args.iter().any(|a| a == "--quiet") {
        let mut progress = ProgressConfig::default();
        if let Some(v) = flag_value(args, "--progress") {
            progress.every = v.parse()?;
        }
        hooks.progress = Some(progress);
    }
    Ok(hooks)
}

fn cmd_route(args: &[String]) -> CliResult {
    let design = load_design(args)?;
    let cfg = config_from(args)?;
    let trace = obs_setup(args);
    let mut hooks = route_hooks(args, cfg.iterations)?;
    let weights = cfg.weights;
    let t0 = std::time::Instant::now();
    let mut solution = DgrRouter::new(cfg).route_with_hooks(&design, &mut hooks)?;
    let report = refine(&design, &mut solution, RefineConfig::default())?;
    let elapsed = t0.elapsed();
    if let Some(snap) = hooks.snap.as_mut() {
        // post-refinement congestion plus the final offender attribution
        let final_iter = solution
            .train_report
            .as_ref()
            .and_then(|r| r.curve.last())
            .map_or(0, |p| p.iter as u64 + 1);
        dgr::core::write_solution_snapshot(
            &mut snap.sink,
            &design,
            &solution,
            final_iter,
            "refine",
        );
        write_attribution(&mut snap.sink, &design, &solution, &weights, "final");
        snap.sink.flush();
    }

    let m = &solution.metrics;
    println!("routed {} nets in {elapsed:.2?}", design.num_nets());
    println!("  wirelength       : {}", m.total_wirelength);
    println!("  turning points   : {}", m.total_turns);
    println!("  overflowed edges : {}", m.overflow.overflowed_edges);
    println!("  total overflow   : {:.2}", m.overflow.total_overflow);
    println!(
        "  refinement       : {} nets rerouted ({} → {} overflowed edges)",
        report.nets_rerouted, report.overflowed_before, report.overflowed_after
    );
    if design.num_layers >= 2 {
        let assigned = assign_layers(&design, &solution, AssignConfig::default())?;
        println!("  vias (3D)        : {}", assigned.total_vias);
        println!("  3D overflow      : {}", assigned.overflowed_edges3d);
        if let Some(path) = flag_value(args, "--guide") {
            let guide = RouteGuide::from_assignment(&design, &assigned);
            std::fs::write(path, guide.to_text())?;
            println!("  guide boxes      : {} → {}", guide.num_boxes(), path);
        }
    }
    if let Some(path) = flag_value(args, "--routes") {
        std::fs::write(path, solution.to_text())?;
        println!("  routes checkpoint → {path}");
    }
    if let Some(report) = &solution.train_report {
        if let (Some(first), Some(last)) = (report.curve.first(), report.curve.last()) {
            println!(
                "  training loss    : {:.2} → {:.2} over {} iterations",
                first.loss,
                last.loss,
                last.iter + 1
            );
        }
    }
    if let Some(sink) = &hooks.telemetry {
        let path = flag_value(args, "--telemetry").unwrap_or("?");
        println!("  telemetry        : {} rows → {path}", sink.rows());
    }
    if let Some(snap) = &hooks.snap {
        let path = flag_value(args, "--snap").unwrap_or("?");
        println!("  snapshots        : {} → {path}", snap.sink.snapshots());
    }
    obs_finish(trace)?;
    Ok(())
}

/// `dgr train`: batched multi-seed training — one tape evaluates
/// `--batch N` seeds at once (seed, seed+1, …), each reproducing its
/// standalone trajectory bit for bit; the best instance by final loss is
/// extracted into the reported solution.
fn cmd_train(args: &[String]) -> CliResult {
    use dgr::core::{build_cost_model_batched, extract_solution_instance, train_batched};

    let design = load_design(args)?;
    let cfg = config_from(args)?;
    cfg.validate()?;
    let batch: usize = match flag_value(args, "--batch") {
        Some(v) => v.parse()?,
        None => 1,
    };
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let seeds: Vec<u64> = (0..batch as u64).map(|b| cfg.seed + b).collect();

    let t0 = std::time::Instant::now();
    let pools: Vec<_> = design
        .nets
        .iter()
        .map(|n| dgr::rsmt::tree_candidates(&n.pins, &cfg.candidates))
        .collect::<Result<_, _>>()?;
    let forest = dgr::dag::build_forest(&design.grid, &pools, cfg.patterns)?;
    let (mut model, mut rngs) = build_cost_model_batched(&design, &forest, &cfg, &seeds);
    let reports = train_batched(&mut model, &cfg, &mut rngs);

    println!(
        "trained {} instance(s) of {} nets in {:.2?} ({} iterations each)",
        batch,
        design.num_nets(),
        t0.elapsed(),
        cfg.iterations
    );
    let mut best = 0usize;
    for (b, report) in reports.iter().enumerate() {
        println!(
            "  seed {:>4}  final loss {:>12.4}  final temperature {:.4}",
            seeds[b], report.final_loss, report.final_temperature
        );
        if report.final_loss < reports[best].final_loss {
            best = b;
        }
    }
    let solution = extract_solution_instance(&design, &forest, &mut model, &cfg, best)?;
    let m = &solution.metrics;
    println!("best: seed {} (instance {best})", seeds[best]);
    println!("  wirelength       : {}", m.total_wirelength);
    println!("  turning points   : {}", m.total_turns);
    println!("  overflowed edges : {}", m.overflow.overflowed_edges);
    println!("  total overflow   : {:.2}", m.overflow.total_overflow);
    if let Some(path) = flag_value(args, "--routes") {
        std::fs::write(path, solution.to_text())?;
        println!("  routes checkpoint → {path}");
    }
    Ok(())
}

/// `dgr report`: render telemetry / snapshot / trace artifacts into one
/// deterministic, self-contained HTML post-mortem.
fn cmd_report(args: &[String]) -> CliResult {
    let read_opt = |flag: &str| -> Result<Option<String>, std::io::Error> {
        flag_value(args, flag)
            .map(std::fs::read_to_string)
            .transpose()
    };
    let inputs = ReportInputs {
        title: flag_value(args, "--title")
            .unwrap_or("routing run")
            .to_string(),
        telemetry: read_opt("--telemetry")?,
        snapshots: read_opt("--snap")?,
        trace: read_opt("--trace")?,
    };
    if inputs.telemetry.is_none() && inputs.snapshots.is_none() && inputs.trace.is_none() {
        return Err("report needs at least one of --telemetry / --snap / --trace".into());
    }
    let html = render_report(&inputs)?;
    let out = flag_value(args, "--out").unwrap_or("report.html");
    std::fs::write(out, &html)?;
    println!("report → {out} ({} bytes)", html.len());
    Ok(())
}

fn cmd_compare(args: &[String]) -> CliResult {
    let design = load_design(args)?;
    let cfg = config_from(args)?;
    let trace = obs_setup(args);
    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "router", "wirelength", "turns", "ovf edges", "ovf total", "t(s)"
    );
    let run = |name: &str,
               solve: &mut dyn FnMut() -> Result<
        dgr::core::RoutingSolution,
        Box<dyn std::error::Error>,
    >|
     -> Result<dgr::core::RoutingSolution, Box<dyn std::error::Error>> {
        let t0 = std::time::Instant::now();
        let mut sol = solve()?;
        refine(&design, &mut sol, RefineConfig::default())?;
        let t = t0.elapsed().as_secs_f64();
        let m = &sol.metrics;
        println!(
            "{:<12} {:>10} {:>8} {:>10} {:>10.2} {:>8.2}",
            name,
            m.total_wirelength,
            m.total_turns,
            m.overflow.overflowed_edges,
            m.overflow.total_overflow,
            t
        );
        Ok(sol)
    };
    let dgr_sol = run("dgr", &mut || {
        Ok(DgrRouter::new(cfg.clone()).route(&design)?)
    })?;
    run("sequential", &mut || {
        Ok(SequentialRouter::default().route(&design)?)
    })?;
    run("sproute", &mut || {
        Ok(SprouteRouter::default().route(&design)?)
    })?;
    run("lagrangian", &mut || {
        Ok(LagrangianRouter::default().route(&design)?)
    })?;
    // The retained curve (TrainReport::curve) shows how the DGR loss moved
    // without re-running or re-deriving anything.
    if let Some(report) = &dgr_sol.train_report {
        if let (Some(first), Some(last)) = (report.curve.first(), report.curve.last()) {
            println!();
            println!(
                "dgr training: loss {:.2} → {:.2}, overflow {:.2} → {:.2} ({} curve points)",
                first.loss,
                last.loss,
                first.overflow,
                last.overflow,
                report.curve.len()
            );
        }
    }
    obs_finish(trace)?;
    Ok(())
}
