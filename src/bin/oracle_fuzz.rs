//! Seeded differential fuzz driver.
//!
//! Runs N cases of each of the five oracle cross-checks, shrinks every
//! failure to a minimal reproducer, dumps reproducers as JSON under
//! `--dump-dir` (default `tests/fuzz_cases`), and exits non-zero if any
//! mismatch was found.
//!
//! ```text
//! cargo run --release --bin oracle_fuzz -- --cases 200 --seed 42
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use dgr_oracle::FuzzConfig;

fn usage() -> ! {
    eprintln!(
        "usage: oracle_fuzz [--cases N] [--seed S] [--dump-dir DIR] [--no-dump]\n\
         \n\
         Runs N seeded cases per differential check (default 200, seed 42).\n\
         Shrunk reproducers for any mismatch are written to DIR\n\
         (default tests/fuzz_cases) unless --no-dump is given."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = FuzzConfig {
        dump_dir: Some(PathBuf::from("tests/fuzz_cases")),
        ..FuzzConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--cases" => {
                cfg.cases = value("--cases").parse().unwrap_or_else(|e| {
                    eprintln!("--cases: {e}");
                    usage()
                })
            }
            "--seed" => {
                cfg.seed = value("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("--seed: {e}");
                    usage()
                })
            }
            "--dump-dir" => cfg.dump_dir = Some(PathBuf::from(value("--dump-dir"))),
            "--no-dump" => cfg.dump_dir = None,
            _ => usage(),
        }
    }

    let start = std::time::Instant::now();
    eprintln!("oracle_fuzz: {} cases/check, seed {}", cfg.cases, cfg.seed);
    let report = dgr_oracle::run_fuzz(&cfg, |line| eprintln!("{line}"));
    let elapsed = start.elapsed().as_secs_f64();

    if report.failures.is_empty() {
        println!(
            "oracle_fuzz: OK — {} cases, 0 mismatches ({elapsed:.2}s)",
            report.total_cases()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "oracle_fuzz: FAIL — {} mismatches in {} cases ({elapsed:.2}s)",
            report.failures.len(),
            report.total_cases()
        );
        for f in &report.failures {
            println!("  {}", f.mismatch);
            println!("    original: {:?}", f.original);
            println!("    shrunk:   {:?}", f.shrunk);
            if let Some(p) = &f.dumped {
                println!("    dumped:   {}", p.display());
            }
        }
        ExitCode::FAILURE
    }
}
