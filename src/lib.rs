#![warn(missing_docs)]

//! # DGR — Differentiable Global Router
//!
//! Facade crate re-exporting every subsystem of the DGR reproduction
//! (DAC 2024): a global router that relaxes discrete routing-tree and
//! pattern-path selection to probabilities and optimizes millions of nets
//! concurrently with gradient descent.
//!
//! * [`grid`] — g-cell grid, capacity/demand model, overflow metrics
//! * [`rsmt`] — rectilinear Steiner trees and tree-candidate pools
//! * [`dag`] — the routing DAG forest (the search-space representation)
//! * [`autodiff`] — the reverse-mode autodiff engine and Adam
//! * [`core`] — the differentiable router itself
//! * [`baseline`] — ILP, sequential, soft-capacity and Lagrangian routers
//! * [`post`] — layer assignment, maze refinement, routing guides
//! * [`io`] — benchmark generation and design serialization
//! * [`obs`] — tracing spans, metrics, and training telemetry
//! * [`daemon`] — `dgrd`, the long-lived multi-tenant routing job server
//!
//! # Examples
//!
//! ```
//! use dgr::core::{DgrConfig, DgrRouter};
//! use dgr::grid::{CapacityBuilder, Design, GcellGrid, Net, Point};
//!
//! let grid = GcellGrid::new(12, 12)?;
//! let capacity = CapacityBuilder::uniform(&grid, 4.0).build(&grid)?;
//! let design = Design::new(
//!     grid,
//!     capacity,
//!     vec![Net::new("n0", vec![Point::new(1, 1), Point::new(9, 7)])],
//!     5,
//! )?;
//! let mut config = DgrConfig::default();
//! config.iterations = 50;
//! let solution = DgrRouter::new(config).route(&design)?;
//! assert_eq!(solution.metrics.total_wirelength, 14);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use dgr_autodiff as autodiff;
pub use dgr_baseline as baseline;
pub use dgr_core as core;
pub use dgr_daemon as daemon;
pub use dgr_dag as dag;
pub use dgr_grid as grid;
pub use dgr_io as io;
pub use dgr_obs as obs;
pub use dgr_post as post;
pub use dgr_rsmt as rsmt;
