//! Property: the canonical Steiner-template cache never changes a
//! candidate pool.
//!
//! [`tree_candidates_cached`] must return pools identical — same trees,
//! same order, hence same topology fingerprints — to the uncached
//! [`tree_candidates`], both against a fresh cache (all misses) and a
//! warm one (template reinstantiated from a hit). This is the contract
//! that makes the cache a pure memoization: both paths solve in
//! canonical space, so a hit can only skip work, never alter topology.

use dgr_grid::Point;
use dgr_rsmt::{tree_candidates, tree_candidates_cached, CandidateConfig, RsmtCache};
use proptest::prelude::*;

fn arb_pins() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0..24i32, 0..24i32).prop_map(|(x, y)| Point::new(x, y)),
        1..=9,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_pools_match_uncached_generation(pins in arb_pins(), seed in 0u64..1 << 48) {
        let cfg = CandidateConfig { seed, ..CandidateConfig::default() };
        let uncached = tree_candidates(&pins, &cfg).unwrap();

        // Fresh cache: every template solve is a miss.
        let cache = RsmtCache::new();
        let cold = tree_candidates_cached(&pins, &cfg, &cache).unwrap();
        prop_assert_eq!(&cold, &uncached, "cold cache changed the pool");

        // Warm cache: the base RSMT now reinstantiates from a hit.
        let misses_after_cold = cache.misses();
        let warm = tree_candidates_cached(&pins, &cfg, &cache).unwrap();
        prop_assert_eq!(&warm, &uncached, "warm cache changed the pool");
        prop_assert_eq!(cache.misses(), misses_after_cold,
            "warm pass should not solve again");
        if pins.iter().collect::<std::collections::HashSet<_>>().len() >= 4 {
            prop_assert!(cache.hits() > 0, "warm 4+-pin pass must hit");
        }

        let fp_cached: Vec<_> = cold.iter().map(|t| t.fingerprint()).collect();
        let fp_plain: Vec<_> = uncached.iter().map(|t| t.fingerprint()).collect();
        prop_assert_eq!(fp_cached, fp_plain);
    }

    #[test]
    fn cache_shared_across_translated_nets_stays_exact(
        pins in arb_pins(), dx in 0..40i32, dy in 0..40i32,
    ) {
        // A translated copy of the net shares the canonical template; its
        // pool must equal independent generation from scratch.
        let cfg = CandidateConfig::default();
        let shifted: Vec<Point> = pins.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        let cache = RsmtCache::new();
        let _ = tree_candidates_cached(&pins, &cfg, &cache).unwrap();
        let via_cache = tree_candidates_cached(&shifted, &cfg, &cache).unwrap();
        let from_scratch = tree_candidates(&shifted, &cfg).unwrap();
        prop_assert_eq!(via_cache, from_scratch);
    }
}
