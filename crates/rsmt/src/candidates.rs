//! Routing-tree candidate pools.
//!
//! A net's entry in the DAG forest is a *set* of topologically distinct
//! routing trees (Fig. 2 of the paper). The paper seeds the pool with the
//! FLUTE tree and CUGR2's congestion-refined variant and notes any tree
//! source can contribute. Our pool is:
//!
//! 1. the (exact or Steinerized) RSMT — the wirelength-optimal topology,
//! 2. the plain rectilinear MST — a Steiner-free alternative whose
//!    sub-nets take different corridors,
//! 3. Steiner-shift variants — every Steiner point jittered within the
//!    net's bounding box (the CUGR2 "move Steiner points" refinement,
//!    randomized instead of congestion-driven because candidates are built
//!    *before* congestion is known; the differentiable solver then picks
//!    per congestion).
//!
//! Candidates are deduplicated by topology fingerprint, so the pool size
//! is an upper bound, not a guarantee.

use dgr_grid::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::canon::RsmtCache;
use crate::tree::{dedup_pins, RoutingTree};
use crate::RsmtError;

/// Configuration for [`tree_candidates`].
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateConfig {
    /// Upper bound on the number of candidates per net.
    pub max_candidates: usize,
    /// RNG seed for the Steiner-shift variants.
    pub seed: u64,
    /// Optional clamp rectangle (normally the grid bounds) for shifted
    /// Steiner points.
    pub clamp: Option<Rect>,
    /// Maximum Steiner-point jitter distance per axis, in g-cells.
    pub shift_radius: i32,
    /// When `Some(ε)`, a [SALT-style shallow-light
    /// tree](crate::salt::shallow_light_tree) with that bound joins the
    /// pool — the alternative tree source the paper names.
    pub shallow_light: Option<f64>,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_candidates: 3,
            seed: 0xD6_E5_A1,
            clamp: None,
            shift_radius: 2,
            shallow_light: None,
        }
    }
}

impl CandidateConfig {
    /// A config producing exactly one candidate (the plain RSMT) — used by
    /// experiments that isolate path selection from topology selection.
    pub fn single() -> Self {
        CandidateConfig {
            max_candidates: 1,
            ..CandidateConfig::default()
        }
    }
}

/// Builds a deduplicated pool of routing-tree candidates for one net.
///
/// The first candidate is always the RSMT. Every returned tree spans the
/// same deduplicated pin set and passes [`RoutingTree::validate`].
///
/// # Errors
///
/// Returns [`RsmtError::NoPins`] for an empty pin list.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
/// use dgr_rsmt::{tree_candidates, CandidateConfig};
///
/// let pins = [
///     Point::new(0, 0),
///     Point::new(6, 1),
///     Point::new(3, 5),
///     Point::new(1, 4),
/// ];
/// let pool = tree_candidates(&pins, &CandidateConfig::default())?;
/// assert!(!pool.is_empty() && pool.len() <= 3);
/// # Ok::<(), dgr_rsmt::RsmtError>(())
/// ```
pub fn tree_candidates(
    pins: &[Point],
    cfg: &CandidateConfig,
) -> Result<Vec<RoutingTree>, RsmtError> {
    tree_candidates_impl(pins, cfg, None)
}

/// [`tree_candidates`] with a shared Steiner-template cache.
///
/// The base RSMT — the expensive Dreyfus–Wagner solve — is memoized per
/// canonical pin configuration in `cache` (see [`crate::canon`]); the
/// spanning-tree, shallow-light, and Steiner-shift variants are cheap and
/// built per net as usual. The returned pool is **identical** to the
/// uncached [`tree_candidates`] pool for the same inputs, because both
/// paths solve in canonical space; the cache only skips repeated work.
/// Hit/miss totals accumulate on `cache` and in the `dgr-obs` counters
/// `rsmt.cache.hits` / `rsmt.cache.misses`.
///
/// # Errors
///
/// Returns [`RsmtError::NoPins`] for an empty pin list.
pub fn tree_candidates_cached(
    pins: &[Point],
    cfg: &CandidateConfig,
    cache: &RsmtCache,
) -> Result<Vec<RoutingTree>, RsmtError> {
    tree_candidates_impl(pins, cfg, Some(cache))
}

fn tree_candidates_impl(
    pins: &[Point],
    cfg: &CandidateConfig,
    cache: Option<&RsmtCache>,
) -> Result<Vec<RoutingTree>, RsmtError> {
    let unique = dedup_pins(pins);
    if unique.is_empty() {
        return Err(RsmtError::NoPins);
    }
    let base = crate::rsmt_unique(&unique, cache)?;
    let mut pool = vec![base.clone()];
    let mut fingerprints = vec![base.fingerprint()];
    let mut push = |tree: RoutingTree, pool: &mut Vec<RoutingTree>| {
        if pool.len() >= cfg.max_candidates {
            return;
        }
        if tree.validate().is_err() {
            return;
        }
        let fp = tree.fingerprint();
        if !fingerprints.contains(&fp) {
            fingerprints.push(fp);
            pool.push(tree);
        }
    };

    if unique.len() >= 3 {
        push(crate::mst::rmst(&unique), &mut pool);
    }

    if let Some(epsilon) = cfg.shallow_light {
        if unique.len() >= 3 {
            if let Ok(tree) = crate::salt::shallow_light_tree(&unique, epsilon) {
                push(tree, &mut pool);
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ hash_pins(&unique));
    // Try a few jitters; stop when the pool is full or attempts run out.
    for _ in 0..cfg.max_candidates.saturating_mul(4) {
        if pool.len() >= cfg.max_candidates || base.steiner_points().is_empty() {
            break;
        }
        if let Some(shifted) = shift_variant(&base, &mut rng, cfg) {
            push(shifted, &mut pool);
        }
    }
    Ok(pool)
}

/// Jitters every Steiner point of `tree` by up to `shift_radius` per axis,
/// clamped to `cfg.clamp` and the net bounding box. Returns `None` when
/// the jitter is a no-op.
fn shift_variant(
    tree: &RoutingTree,
    rng: &mut StdRng,
    cfg: &CandidateConfig,
) -> Option<RoutingTree> {
    let pins: Vec<Point> = tree.nodes()[..tree.num_pins()].to_vec();
    let bbox = Rect::bounding(&pins);
    let clamp = match cfg.clamp {
        Some(c) => Rect::new(
            Point::new(c.lo.x.max(bbox.lo.x), c.lo.y.max(bbox.lo.y)),
            Point::new(c.hi.x.min(bbox.hi.x), c.hi.y.min(bbox.hi.y)),
        ),
        None => bbox,
    };
    let mut nodes = tree.nodes().to_vec();
    let mut changed = false;
    for node in nodes.iter_mut().skip(tree.num_pins()) {
        let dx = rng.gen_range(-cfg.shift_radius..=cfg.shift_radius);
        let dy = rng.gen_range(-cfg.shift_radius..=cfg.shift_radius);
        let shifted = Point::new(
            (node.x + dx).clamp(clamp.lo.x, clamp.hi.x),
            (node.y + dy).clamp(clamp.lo.y, clamp.hi.y),
        );
        if shifted != *node {
            *node = shifted;
            changed = true;
        }
    }
    if !changed {
        return None;
    }
    Some(RoutingTree::from_parts(
        nodes,
        tree.num_pins(),
        tree.edges().to_vec(),
    ))
}

fn hash_pins(pins: &[Point]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    pins.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pins() -> Vec<Point> {
        vec![
            Point::new(0, 0),
            Point::new(8, 1),
            Point::new(4, 7),
            Point::new(1, 5),
            Point::new(6, 4),
        ]
    }

    #[test]
    fn first_candidate_is_the_rsmt() {
        let pool = tree_candidates(&pins(), &CandidateConfig::default()).unwrap();
        let base = crate::rsmt(&pins()).unwrap();
        assert_eq!(pool[0].fingerprint(), base.fingerprint());
    }

    #[test]
    fn pool_respects_max_candidates() {
        let cfg = CandidateConfig {
            max_candidates: 2,
            ..CandidateConfig::default()
        };
        let pool = tree_candidates(&pins(), &cfg).unwrap();
        assert!(pool.len() <= 2);
    }

    #[test]
    fn single_config_yields_one_tree() {
        let pool = tree_candidates(&pins(), &CandidateConfig::single()).unwrap();
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn all_candidates_are_valid_and_span_pins() {
        let pool = tree_candidates(&pins(), &CandidateConfig::default()).unwrap();
        let unique = dedup_pins(&pins());
        for tree in &pool {
            tree.validate().unwrap();
            for p in &unique {
                assert!(tree.nodes().contains(p));
            }
        }
    }

    #[test]
    fn candidates_are_topologically_distinct() {
        let pool = tree_candidates(&pins(), &CandidateConfig::default()).unwrap();
        for i in 0..pool.len() {
            for j in i + 1..pool.len() {
                assert_ne!(pool[i].fingerprint(), pool[j].fingerprint());
            }
        }
    }

    #[test]
    fn two_pin_net_has_exactly_one_candidate() {
        let pool = tree_candidates(
            &[Point::new(0, 0), Point::new(5, 5)],
            &CandidateConfig::default(),
        )
        .unwrap();
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn empty_net_errors() {
        assert!(matches!(
            tree_candidates(&[], &CandidateConfig::default()),
            Err(RsmtError::NoPins)
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = tree_candidates(&pins(), &CandidateConfig::default()).unwrap();
        let b = tree_candidates(&pins(), &CandidateConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn clamp_keeps_steiner_points_inside() {
        let clamp = Rect::new(Point::new(0, 0), Point::new(8, 7));
        let cfg = CandidateConfig {
            clamp: Some(clamp),
            max_candidates: 4,
            ..CandidateConfig::default()
        };
        let pool = tree_candidates(&pins(), &cfg).unwrap();
        for tree in &pool {
            for s in tree.steiner_points() {
                assert!(clamp.contains(*s), "steiner {s} escaped clamp");
            }
        }
    }
}
