//! Rectilinear minimum spanning tree (Prim's algorithm).

use dgr_grid::Point;

use crate::tree::{dedup_pins, RoutingTree};

/// Builds the rectilinear minimum spanning tree over `pins` with Prim's
/// algorithm in O(n²) — no Steiner points, only pin-to-pin edges.
///
/// Duplicate pins are merged first. An empty input produces an empty
/// singleton-free tree is impossible, so the function panics; use
/// [`crate::rsmt`] for fallible dispatch.
///
/// # Panics
///
/// Panics if `pins` is empty.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
/// use dgr_rsmt::rmst;
///
/// let t = rmst(&[Point::new(0, 0), Point::new(2, 0), Point::new(2, 3)]);
/// assert_eq!(t.length(), 5);
/// ```
pub fn rmst(pins: &[Point]) -> RoutingTree {
    let pts = dedup_pins(pins);
    assert!(!pts.is_empty(), "rmst of zero pins");
    let n = pts.len();
    if n == 1 {
        return RoutingTree::singleton(pts[0]);
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![u32::MAX; n];
    let mut best_from = vec![0u32; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = pts[0].manhattan_distance(pts[j]);
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_dist = u32::MAX;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < pick_dist {
                pick = j;
                pick_dist = best_dist[j];
            }
        }
        debug_assert!(pick != usize::MAX);
        in_tree[pick] = true;
        edges.push((best_from[pick], pick as u32));
        for j in 0..n {
            if !in_tree[j] {
                let d = pts[pick].manhattan_distance(pts[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_from[j] = pick as u32;
                }
            }
        }
    }
    RoutingTree::from_parts(pts, n, edges)
}

/// Total length of the rectilinear MST without materializing the tree —
/// a cheap lower-quality bound used in tests and candidate scoring.
pub fn rmst_length(pins: &[Point]) -> u64 {
    if pins.len() <= 1 {
        return 0;
    }
    rmst(pins).length()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pin() {
        let t = rmst(&[Point::new(5, 5)]);
        assert_eq!(t.length(), 0);
        t.validate().unwrap();
    }

    #[test]
    fn collinear_pins_form_a_path() {
        let t = rmst(&[Point::new(0, 0), Point::new(5, 0), Point::new(2, 0)]);
        t.validate().unwrap();
        assert_eq!(t.length(), 5);
    }

    #[test]
    fn square_corners() {
        let t = rmst(&[
            Point::new(0, 0),
            Point::new(0, 2),
            Point::new(2, 0),
            Point::new(2, 2),
        ]);
        t.validate().unwrap();
        assert_eq!(t.length(), 6);
    }

    #[test]
    fn duplicates_are_merged() {
        let t = rmst(&[Point::new(0, 0), Point::new(0, 0), Point::new(1, 0)]);
        t.validate().unwrap();
        assert_eq!(t.nodes().len(), 2);
        assert_eq!(t.length(), 1);
    }

    #[test]
    fn mst_length_is_optimal_for_three_points() {
        // brute-force check: for 3 points MST length is the min over the
        // three possible spanning trees
        let pts = [Point::new(0, 0), Point::new(4, 1), Point::new(2, 5)];
        let d01 = pts[0].manhattan_distance(pts[1]) as u64;
        let d02 = pts[0].manhattan_distance(pts[2]) as u64;
        let d12 = pts[1].manhattan_distance(pts[2]) as u64;
        let best = (d01 + d02).min(d01 + d12).min(d02 + d12);
        assert_eq!(rmst(&pts).length(), best);
    }
}
