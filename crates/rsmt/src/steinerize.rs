//! Steinerized-RMST heuristic for high-degree nets.
//!
//! Nets above [`crate::EXACT_PIN_LIMIT`] pins are too large for exact
//! Dreyfus–Wagner. This module applies the classic edge-pair
//! Steinerization: start from the rectilinear MST and repeatedly replace a
//! pair of tree edges sharing an endpoint by a 3-edge star through the
//! component-wise **median** of the three involved points, whenever that
//! reduces total length. The median point is the optimal Steiner point for
//! three terminals in the L1 metric, so every accepted move is locally
//! optimal. This yields the same quality class as FLUTE's decomposition of
//! high-degree nets.

use dgr_grid::Point;

use crate::mst::rmst;
use crate::tree::{dedup_pins, RoutingTree};

/// The component-wise median of three points — the optimal rectilinear
/// Steiner point for exactly three terminals.
pub fn median3(a: Point, b: Point, c: Point) -> Point {
    fn med(a: i32, b: i32, c: i32) -> i32 {
        a.max(b).min(a.max(c)).min(b.max(c))
    }
    Point::new(med(a.x, b.x, c.x), med(a.y, b.y, c.y))
}

/// Builds a Steinerized rectilinear spanning tree over `pins`.
///
/// Runs Prim's RMST and then greedily applies median-point Steinerization
/// until no improving move remains. The result is never longer than the
/// RMST.
///
/// # Panics
///
/// Panics if `pins` is empty.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
/// use dgr_rsmt::steinerize::steinerized_rmst;
///
/// let pins = [Point::new(0, 0), Point::new(4, 0), Point::new(2, 2)];
/// let t = steinerized_rmst(&pins);
/// assert_eq!(t.length(), 6); // one Steiner point at (2, 0)
/// ```
pub fn steinerized_rmst(pins: &[Point]) -> RoutingTree {
    let unique = dedup_pins(pins);
    assert!(!unique.is_empty(), "steinerized_rmst of zero pins");
    let base = rmst(&unique);
    if base.nodes().len() < 3 {
        return base;
    }

    // Mutable adjacency representation.
    let mut nodes: Vec<Point> = base.nodes().to_vec();
    let num_pins = base.num_pins();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    for &(a, b) in base.edges() {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }

    // Greedy improvement: scan hub nodes, try the best median insertion
    // among each pair of their neighbours; repeat until a full pass makes
    // no progress (or a safety cap on Steiner points is hit).
    let max_steiner = unique.len(); // an RSMT needs at most k-2 Steiner points
    let mut inserted = 0usize;
    loop {
        let mut best: Option<(usize, usize, usize, Point, i64)> = None;
        for hub in 0..nodes.len() {
            let nbrs = adj[hub].clone();
            for i in 0..nbrs.len() {
                for j in i + 1..nbrs.len() {
                    let (u, v) = (nbrs[i] as usize, nbrs[j] as usize);
                    let s = median3(nodes[hub], nodes[u], nodes[v]);
                    if s == nodes[hub] || s == nodes[u] || s == nodes[v] {
                        continue;
                    }
                    let before = (nodes[hub].manhattan_distance(nodes[u])
                        + nodes[hub].manhattan_distance(nodes[v]))
                        as i64;
                    let after = (s.manhattan_distance(nodes[hub])
                        + s.manhattan_distance(nodes[u])
                        + s.manhattan_distance(nodes[v])) as i64;
                    let gain = before - after;
                    if gain > 0 && best.is_none_or(|(.., g)| gain > g) {
                        best = Some((hub, u, v, s, gain));
                    }
                }
            }
        }
        let Some((hub, u, v, s, _)) = best else { break };
        // Replace edges (hub,u) and (hub,v) with star via s.
        let s_idx = nodes.len();
        nodes.push(s);
        adj.push(Vec::new());
        adj[hub].retain(|&n| n as usize != u && n as usize != v);
        adj[u].retain(|&n| n as usize != hub);
        adj[v].retain(|&n| n as usize != hub);
        for &(a, b) in &[(hub, s_idx), (u, s_idx), (v, s_idx)] {
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
        inserted += 1;
        if inserted >= max_steiner {
            break;
        }
    }

    let mut edges = Vec::with_capacity(nodes.len() - 1);
    for (a, nbrs) in adj.iter().enumerate() {
        for &b in nbrs {
            if (a as u32) < b {
                edges.push((a as u32, b));
            }
        }
    }
    RoutingTree::from_parts(nodes, num_pins, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::rmst_length;

    #[test]
    fn median3_basics() {
        assert_eq!(
            median3(Point::new(0, 0), Point::new(4, 0), Point::new(2, 2)),
            Point::new(2, 0)
        );
        assert_eq!(
            median3(Point::new(1, 1), Point::new(1, 1), Point::new(5, 5)),
            Point::new(1, 1)
        );
    }

    #[test]
    fn never_longer_than_mst() {
        let pins = [
            Point::new(0, 0),
            Point::new(10, 2),
            Point::new(3, 9),
            Point::new(7, 7),
            Point::new(2, 4),
            Point::new(9, 9),
            Point::new(5, 1),
            Point::new(1, 8),
            Point::new(8, 4),
            Point::new(4, 6),
        ];
        let t = steinerized_rmst(&pins);
        t.validate().unwrap();
        assert!(t.length() <= rmst_length(&pins));
    }

    #[test]
    fn improves_the_t_shape() {
        let pins = [Point::new(0, 0), Point::new(4, 0), Point::new(2, 2)];
        let t = steinerized_rmst(&pins);
        t.validate().unwrap();
        assert_eq!(t.length(), 6);
        assert_eq!(t.steiner_points().len(), 1);
    }

    #[test]
    fn spans_every_pin() {
        let pins: Vec<Point> = (0..12)
            .map(|i| Point::new((i * 37) % 20, (i * 53) % 20))
            .collect();
        let t = steinerized_rmst(&pins);
        t.validate().unwrap();
        for p in &pins {
            assert!(t.nodes().contains(p), "pin {p} missing from tree");
        }
    }

    #[test]
    fn bracketed_by_exact_and_mst() {
        // The heuristic can never beat the optimum (DW) and never lose to
        // the plain MST it starts from.
        let pins = [
            Point::new(0, 1),
            Point::new(2, 0),
            Point::new(2, 2),
            Point::new(4, 1),
        ];
        let h = steinerized_rmst(&pins).length();
        let e = crate::exact_steiner(&pins).length();
        assert!(h >= e);
        assert!(h <= rmst_length(&pins));
    }
}
