//! Exact rectilinear Steiner minimum trees via Dreyfus–Wagner.
//!
//! By Hanan's theorem an optimal RSMT exists whose Steiner points lie on
//! the [Hanan grid](crate::hanan::HananGrid). The Hanan grid graph is a
//! full mesh geometrically, so the shortest-path metric between Hanan
//! points is plain Manhattan distance, and Dreyfus–Wagner can run directly
//! on the metric closure: the "grow" step becomes a single min-plus pass
//! instead of a Dijkstra.
//!
//! Complexity is `O(3^k · n + 2^k · n²)` for `k` pins and `n` Hanan points
//! — instant for the `k ≤ 8` nets this crate routes exactly.

use dgr_grid::Point;

use crate::hanan::HananGrid;
use crate::tree::{dedup_pins, RoutingTree};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    /// Base case: the tree is the direct edge `t_bit — v`.
    Leaf,
    /// The tree splits at `v` into sub-trees for `submask` and its
    /// complement.
    Split { submask: u32 },
    /// The tree is the best tree at `u` extended by the edge `u — v`.
    Extend { u: u32 },
}

/// Computes an exact rectilinear Steiner minimum tree over `pins`.
///
/// Duplicate pins are merged. The result's [`RoutingTree::length`] equals
/// the optimal RSMT length; ties are broken arbitrarily but
/// deterministically.
///
/// # Panics
///
/// Panics if `pins` is empty, or if the distinct pin count exceeds 16
/// (the DP bitmask width) — callers should dispatch through [`crate::rsmt`],
/// which routes big nets to the heuristic instead.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
/// use dgr_rsmt::exact_steiner;
///
/// // 3 corners of a square: one Steiner point, length 4 instead of 6.
/// let t = exact_steiner(&[Point::new(0, 0), Point::new(2, 0), Point::new(0, 2)]);
/// assert_eq!(t.length(), 4);
/// ```
pub fn exact_steiner(pins: &[Point]) -> RoutingTree {
    let terminals = dedup_pins(pins);
    assert!(!terminals.is_empty(), "exact_steiner of zero pins");
    assert!(
        terminals.len() <= 16,
        "exact_steiner limited to 16 pins, got {}",
        terminals.len()
    );
    let k = terminals.len();
    if k == 1 {
        return RoutingTree::singleton(terminals[0]);
    }
    if k == 2 {
        return RoutingTree::from_parts(terminals, 2, vec![(0, 1)]);
    }

    let hanan = HananGrid::new(&terminals);
    let n = hanan.num_points();
    let points: Vec<Point> = hanan.points().collect();
    let term_idx: Vec<u32> = terminals
        .iter()
        .map(|&t| hanan.index_of(t).expect("pin on own hanan grid") as u32)
        .collect();

    let dist = |a: usize, b: usize| -> u32 { points[a].manhattan_distance(points[b]) };

    // DP over subsets of the first k-1 terminals; the last terminal is the
    // root that the final tree must reach.
    let num_masks = 1usize << (k - 1);
    let mut cost = vec![u32::MAX; num_masks * n];
    let mut back = vec![Choice::Leaf; num_masks * n];
    let at = |mask: usize, v: usize| mask * n + v;

    #[allow(clippy::needless_range_loop)] // `bit` is mask arithmetic, not just an index
    for bit in 0..k - 1 {
        let t = term_idx[bit] as usize;
        let mask = 1usize << bit;
        for v in 0..n {
            cost[at(mask, v)] = dist(t, v);
            back[at(mask, v)] = Choice::Leaf;
        }
    }

    for mask in 1..num_masks {
        if mask.count_ones() >= 2 {
            // combine step: split the terminal set at v
            let mut submask = (mask - 1) & mask;
            while submask > 0 {
                let other = mask ^ submask;
                if submask < other {
                    // each unordered pair visited once
                    for v in 0..n {
                        let a = cost[at(submask, v)];
                        let b = cost[at(other, v)];
                        if a != u32::MAX && b != u32::MAX {
                            let c = a + b;
                            if c < cost[at(mask, v)] {
                                cost[at(mask, v)] = c;
                                back[at(mask, v)] = Choice::Split {
                                    submask: submask as u32,
                                };
                            }
                        }
                    }
                }
                submask = (submask - 1) & mask;
            }
        }
        // Grow step: relax from every u. With a metric one pass over all
        // (u, v) pairs is exact because dist satisfies the triangle
        // inequality, so a multi-hop extension never beats a direct one.
        let snapshot: Vec<u32> = (0..n).map(|u| cost[at(mask, u)]).collect();
        for v in 0..n {
            for (u, &cu) in snapshot.iter().enumerate() {
                if cu == u32::MAX || u == v {
                    continue;
                }
                let c = cu + dist(u, v);
                if c < cost[at(mask, v)] {
                    cost[at(mask, v)] = c;
                    back[at(mask, v)] = Choice::Extend { u: u as u32 };
                }
            }
        }
    }

    // Reconstruct edges from the backtrace.
    let full = num_masks - 1;
    let root = term_idx[k - 1] as usize;
    let mut edges_pts: Vec<(Point, Point)> = Vec::new();
    let mut stack = vec![(full, root)];
    while let Some((mask, v)) = stack.pop() {
        match back[at(mask, v)] {
            Choice::Leaf => {
                debug_assert_eq!(mask.count_ones(), 1);
                let bit = mask.trailing_zeros() as usize;
                let t = term_idx[bit] as usize;
                if t != v {
                    edges_pts.push((points[t], points[v]));
                }
            }
            Choice::Split { submask } => {
                stack.push((submask as usize, v));
                stack.push((mask ^ submask as usize, v));
            }
            Choice::Extend { u } => {
                edges_pts.push((points[u as usize], points[v]));
                stack.push((mask, u as usize));
            }
        }
    }

    // Materialize the tree: terminals first, then any Steiner endpoints.
    let mut nodes = terminals.clone();
    let mut index_of = std::collections::HashMap::new();
    for (i, &t) in nodes.iter().enumerate() {
        index_of.insert(t, i as u32);
    }
    let mut edges = Vec::with_capacity(edges_pts.len());
    for (a, b) in edges_pts {
        let ia = *index_of.entry(a).or_insert_with(|| {
            nodes.push(a);
            (nodes.len() - 1) as u32
        });
        let ib = *index_of.entry(b).or_insert_with(|| {
            nodes.push(b);
            (nodes.len() - 1) as u32
        });
        edges.push((ia, ib));
    }
    RoutingTree::from_parts(nodes, k, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::rmst_length;

    #[test]
    fn two_pins_direct_edge() {
        let t = exact_steiner(&[Point::new(0, 0), Point::new(5, 3)]);
        t.validate().unwrap();
        assert_eq!(t.length(), 8);
    }

    #[test]
    fn l_corner_three_pins_uses_steiner() {
        // (0,0), (4,0), (4,4): corner (4,0) is a pin — no steiner needed
        let t = exact_steiner(&[Point::new(0, 0), Point::new(4, 0), Point::new(4, 4)]);
        t.validate().unwrap();
        assert_eq!(t.length(), 8);
    }

    #[test]
    fn t_shape_three_pins() {
        // MST: 4+4=8 via two edges; Steiner point at (2,0) gives 2+2+2=6
        let t = exact_steiner(&[Point::new(0, 0), Point::new(4, 0), Point::new(2, 2)]);
        t.validate().unwrap();
        assert_eq!(t.length(), 6);
    }

    #[test]
    fn four_pin_cross_saves_over_mst() {
        let pins = [
            Point::new(0, 1),
            Point::new(2, 0),
            Point::new(2, 2),
            Point::new(4, 1),
        ];
        let t = exact_steiner(&pins);
        t.validate().unwrap();
        assert_eq!(t.length(), 6);
        assert!(t.length() < rmst_length(&pins));
    }

    #[test]
    fn square_corners_four_pins() {
        let pins = [
            Point::new(0, 0),
            Point::new(0, 2),
            Point::new(2, 0),
            Point::new(2, 2),
        ];
        let t = exact_steiner(&pins);
        t.validate().unwrap();
        assert_eq!(t.length(), 6); // equals the MST; no Steiner gain
    }

    #[test]
    fn steiner_never_beats_half_perimeter_lower_bound() {
        use dgr_grid::Rect;
        let pins = [
            Point::new(0, 0),
            Point::new(7, 1),
            Point::new(3, 6),
            Point::new(5, 4),
            Point::new(1, 3),
        ];
        let t = exact_steiner(&pins);
        t.validate().unwrap();
        let hpwl = Rect::bounding(&pins).half_perimeter() as u64;
        assert!(t.length() >= hpwl);
        assert!(t.length() <= rmst_length(&pins));
    }

    #[test]
    fn collinear_pins_cost_span() {
        let pins = [Point::new(0, 0), Point::new(3, 0), Point::new(7, 0)];
        let t = exact_steiner(&pins);
        assert_eq!(t.length(), 7);
    }

    #[test]
    fn duplicate_pins_merge() {
        let t = exact_steiner(&[Point::new(1, 1), Point::new(1, 1), Point::new(4, 1)]);
        t.validate().unwrap();
        assert_eq!(t.length(), 3);
    }

    /// Brute-force reference: enumerate every subset of Hanan points as
    /// Steiner candidates and take the best MST over pins ∪ subset.
    fn brute_force_rsmt_len(pins: &[Point]) -> u64 {
        let hanan = HananGrid::new(pins);
        let extra: Vec<Point> = hanan.points().filter(|p| !pins.contains(p)).collect();
        let mut best = rmst_length(pins);
        for mask in 1u32..(1 << extra.len()) {
            let mut pts = pins.to_vec();
            for (i, &e) in extra.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    pts.push(e);
                }
            }
            // MST over pins+steiner overestimates unless steiner nodes are
            // useful, but the minimum over all subsets is the RSMT length.
            best = best.min(crate::mst::rmst(&pts).length());
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let cases: Vec<Vec<Point>> = vec![
            vec![Point::new(0, 0), Point::new(3, 1), Point::new(1, 3)],
            vec![
                Point::new(0, 2),
                Point::new(2, 0),
                Point::new(4, 2),
                Point::new(2, 4),
            ],
            vec![
                Point::new(0, 0),
                Point::new(1, 2),
                Point::new(3, 1),
                Point::new(2, 3),
            ],
        ];
        for pins in cases {
            let dw = exact_steiner(&pins).length();
            let bf = brute_force_rsmt_len(&pins);
            assert_eq!(dw, bf, "mismatch on {pins:?}");
        }
    }
}
