#![warn(missing_docs)]

//! Rectilinear Steiner tree construction for the DGR global router.
//!
//! The DGR paper feeds FLUTE trees (plus CUGR2's congestion-refined
//! variants) into its DAG forest. FLUTE's lookup tables are not
//! redistributable, so this crate provides an equivalent tree source built
//! from first principles:
//!
//! * [`rmst`] — rectilinear minimum *spanning* tree (Prim, O(n²)),
//! * [`rsmt`] — rectilinear Steiner minimum tree: **exact** for small nets
//!   (Dreyfus–Wagner dynamic programming over the Hanan grid, optimal by
//!   Hanan's theorem) and a Steinerized-RMST heuristic for large nets,
//! * [`tree_candidates`] — a pool of topologically distinct tree candidates
//!   per net (base RSMT, spanning-tree topology, randomized and
//!   congestion-shifted variants), the raw material of the DAG forest.
//!
//! # Examples
//!
//! ```
//! use dgr_grid::Point;
//! use dgr_rsmt::rsmt;
//!
//! // The classic 4-pin cross: a Steiner point saves wirelength.
//! let pins = [
//!     Point::new(0, 1),
//!     Point::new(2, 0),
//!     Point::new(2, 2),
//!     Point::new(4, 1),
//! ];
//! let tree = rsmt(&pins)?;
//! assert!(tree.length() <= 6);
//! # Ok::<(), dgr_rsmt::RsmtError>(())
//! ```

pub mod candidates;
pub mod canon;
pub mod dreyfus_wagner;
pub mod hanan;
pub mod mst;
pub mod salt;
pub mod steinerize;
pub mod tree;

pub use candidates::{tree_candidates, tree_candidates_cached, CandidateConfig};
pub use canon::{canonical_key, RsmtCache};
pub use dreyfus_wagner::exact_steiner;
pub use mst::rmst;
pub use salt::shallow_light_tree;
pub use tree::RoutingTree;

/// Number of pins up to which [`rsmt`] computes an exact optimum.
///
/// Dreyfus–Wagner is exponential in the pin count; 8 pins over an ≤ 8×8
/// Hanan grid stays well under a millisecond.
pub const EXACT_PIN_LIMIT: usize = 8;

/// Errors produced by Steiner tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsmtError {
    /// A net with no pins has no tree.
    NoPins,
    /// The produced structure failed its internal validity check
    /// (diagnostic; indicates a bug rather than bad input).
    InvalidTree(String),
}

impl std::fmt::Display for RsmtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsmtError::NoPins => write!(f, "net has no pins"),
            RsmtError::InvalidTree(why) => write!(f, "constructed tree is invalid: {why}"),
        }
    }
}

impl std::error::Error for RsmtError {}

/// Builds a rectilinear Steiner minimum tree over `pins`.
///
/// Duplicate pins are merged. 1-, 2-, and 3-pin nets take closed-form
/// fast paths (singleton, direct edge, median star) that skip the Hanan
/// grid entirely. Larger nets are reduced to their canonical pin
/// configuration ([`canon::canonical_key`]) and solved there — exactly
/// via [`exact_steiner`] up to [`EXACT_PIN_LIMIT`] distinct pins,
/// heuristically via [`steinerize::steinerized_rmst`] above — then mapped
/// back to real coordinates. Routing through canonical space keeps this
/// function bit-identical to the memoized
/// [`tree_candidates_cached`] path.
///
/// # Errors
///
/// Returns [`RsmtError::NoPins`] for an empty pin list.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
/// let tree = dgr_rsmt::rsmt(&[Point::new(0, 0), Point::new(3, 4)])?;
/// assert_eq!(tree.length(), 7);
/// # Ok::<(), dgr_rsmt::RsmtError>(())
/// ```
pub fn rsmt(pins: &[dgr_grid::Point]) -> Result<RoutingTree, RsmtError> {
    let unique = tree::dedup_pins(pins);
    rsmt_unique(&unique, None)
}

/// [`rsmt`] over an already-deduplicated pin list, optionally memoized.
///
/// The single entry point both the cached and uncached candidate paths
/// share: any topology the cache returns is the topology the uncached
/// solve would have produced.
pub(crate) fn rsmt_unique(
    unique: &[dgr_grid::Point],
    cache: Option<&RsmtCache>,
) -> Result<RoutingTree, RsmtError> {
    match unique.len() {
        0 => Err(RsmtError::NoPins),
        1 => Ok(RoutingTree::singleton(unique[0])),
        2 => Ok(RoutingTree::from_parts(unique.to_vec(), 2, vec![(0, 1)])),
        3 => Ok(canon::median_star(unique)),
        _ => {
            let (key, map) = canon::canonical_key(unique);
            let template = match cache {
                Some(c) => c.template(&key, canon::solve_canonical),
                None => canon::solve_canonical(&key),
            };
            Ok(canon::instantiate(&template, &map, unique))
        }
    }
}
