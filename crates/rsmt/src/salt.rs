//! Shallow-light routing trees (SALT-style).
//!
//! SALT (Chen & Young, TCAD'19) builds trees that are simultaneously
//! *light* (total length within a constant of the Steiner minimum) and
//! *shallow* (every source-to-pin pathlength within `(1+ε)` of its
//! Manhattan distance). The DGR paper names SALT as a drop-in source of
//! additional tree candidates for the DAG forest; this module provides a
//! simplified variant with the same guarantee structure:
//!
//! 1. start from the (exact or heuristic) RSMT,
//! 2. measure every pin's pathlength from the source (pin 0),
//! 3. pins that violate the `(1+ε)` bound are *grafted*: their tree edge
//!    is replaced by a direct connection toward the source,
//! 4. repeat until every pin satisfies the bound.
//!
//! Smaller `ε` yields shallower (more star-like) trees at higher length;
//! `ε = ∞` degenerates to the RSMT itself.

use dgr_grid::Point;

use crate::tree::{dedup_pins, RoutingTree};
use crate::RsmtError;

/// Builds a shallow-light tree over `pins` with shallowness bound
/// `(1 + epsilon)`.
///
/// Pin 0 is the source (driver). The result satisfies, for every pin
/// `p`, `pathlength(source → p) ≤ (1 + epsilon) · dist(source, p)` in the
/// tree's virtual-edge metric.
///
/// # Errors
///
/// Returns [`RsmtError::NoPins`] for an empty pin list.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
/// use dgr_rsmt::salt::shallow_light_tree;
///
/// // a chain that an RSMT would route serially: with a tight bound the
/// // far pin connects (almost) directly to the source
/// let pins = [
///     Point::new(0, 0),
///     Point::new(10, 1),
///     Point::new(20, 0),
/// ];
/// let tight = shallow_light_tree(&pins, 0.0)?;
/// tight.validate().unwrap();
/// # Ok::<(), dgr_rsmt::RsmtError>(())
/// ```
pub fn shallow_light_tree(pins: &[Point], epsilon: f64) -> Result<RoutingTree, RsmtError> {
    let unique = dedup_pins(pins);
    if unique.is_empty() {
        return Err(RsmtError::NoPins);
    }
    let base = crate::rsmt(&unique)?;
    if unique.len() <= 2 {
        return Ok(base);
    }
    let source = unique[0];

    // adjacency over the base tree
    let nodes: Vec<Point> = base.nodes().to_vec();
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in base.edges() {
        adj[a as usize].push(b as usize);
        adj[b as usize].push(a as usize);
    }
    let src_idx = nodes
        .iter()
        .position(|&p| p == source)
        .expect("source is a tree node");

    // BFS-order pathlengths from the source (tree metric)
    let mut parent = vec![usize::MAX; n];
    let mut depth = vec![u64::MAX; n];
    let mut order = vec![src_idx];
    depth[src_idx] = 0;
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        for &u in &adj[v] {
            if depth[u] == u64::MAX {
                depth[u] = depth[v] + nodes[v].manhattan_distance(nodes[u]) as u64;
                parent[u] = v;
                order.push(u);
            }
        }
    }

    // graft violating pins: reconnect them straight to the source
    // (processing in increasing distance keeps earlier grafts valid)
    let mut edges: Vec<(u32, u32)> = base.edges().to_vec();
    let mut grafted = false;
    let mut by_distance: Vec<usize> = (0..n).collect();
    by_distance.sort_by_key(|&v| nodes[v].manhattan_distance(source));
    for v in by_distance {
        if v == src_idx || depth[v] == u64::MAX {
            continue;
        }
        let direct = nodes[v].manhattan_distance(source) as f64;
        if depth[v] as f64 > (1.0 + epsilon) * direct {
            // replace the edge to the parent with a direct source link
            let p = parent[v];
            edges.retain(|&(a, b)| {
                !((a as usize == v && b as usize == p) || (a as usize == p && b as usize == v))
            });
            edges.push((src_idx as u32, v as u32));
            grafted = true;
            // update the subtree depths below v
            let delta_new = direct as i64 - depth[v] as i64;
            let mut stack = vec![v];
            let mut seen = vec![false; n];
            seen[v] = true;
            seen[src_idx] = true;
            while let Some(w) = stack.pop() {
                depth[w] = (depth[w] as i64 + delta_new) as u64;
                for &u in &adj[w] {
                    if !seen[u] && parent[u] == w {
                        seen[u] = true;
                        stack.push(u);
                    }
                }
            }
        }
    }
    if !grafted {
        return Ok(base);
    }
    Ok(RoutingTree::from_parts(nodes, base.num_pins(), edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pathlength_from_source(tree: &RoutingTree, source: Point, pin: Point) -> u64 {
        // BFS over the virtual-edge tree
        let nodes = tree.nodes();
        let n = nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in tree.edges() {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let s = nodes.iter().position(|&p| p == source).unwrap();
        let t = nodes.iter().position(|&p| p == pin).unwrap();
        let mut dist = vec![u64::MAX; n];
        dist[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if dist[u] == u64::MAX {
                    dist[u] = dist[v] + nodes[v].manhattan_distance(nodes[u]) as u64;
                    queue.push_back(u);
                }
            }
        }
        dist[t]
    }

    #[test]
    fn tight_epsilon_bounds_every_pathlength() {
        let pins = [
            Point::new(0, 0),
            Point::new(10, 1),
            Point::new(20, 0),
            Point::new(15, 8),
            Point::new(3, 12),
        ];
        let t = shallow_light_tree(&pins, 0.0).unwrap();
        t.validate().unwrap();
        for &p in &pins[1..] {
            let pl = pathlength_from_source(&t, pins[0], p);
            let direct = pins[0].manhattan_distance(p) as u64;
            assert!(
                pl <= direct,
                "pin {p}: pathlength {pl} exceeds (1+0)·{direct}"
            );
        }
    }

    #[test]
    fn loose_epsilon_returns_the_rsmt() {
        let pins = [Point::new(0, 0), Point::new(10, 1), Point::new(20, 0)];
        let loose = shallow_light_tree(&pins, 100.0).unwrap();
        let base = crate::rsmt(&pins).unwrap();
        assert_eq!(loose.fingerprint(), base.fingerprint());
    }

    #[test]
    fn shallow_tree_trades_length_for_depth() {
        let pins = [
            Point::new(0, 0),
            Point::new(8, 1),
            Point::new(16, 0),
            Point::new(24, 1),
        ];
        let light = shallow_light_tree(&pins, 100.0).unwrap();
        let shallow = shallow_light_tree(&pins, 0.0).unwrap();
        assert!(shallow.length() >= light.length());
        let far = pins[3];
        let pl_shallow = pathlength_from_source(&shallow, pins[0], far);
        let pl_light = pathlength_from_source(&light, pins[0], far);
        assert!(pl_shallow <= pl_light);
    }

    #[test]
    fn two_pin_net_is_untouched() {
        let pins = [Point::new(0, 0), Point::new(5, 5)];
        let t = shallow_light_tree(&pins, 0.0).unwrap();
        assert_eq!(t.length(), 10);
    }

    #[test]
    fn empty_pins_error() {
        assert!(matches!(
            shallow_light_tree(&[], 0.5),
            Err(RsmtError::NoPins)
        ));
    }
}
