//! The Hanan grid of a pin set.
//!
//! Hanan's theorem: some rectilinear Steiner minimum tree uses only points
//! at intersections of horizontal and vertical lines through the pins. The
//! [`HananGrid`] enumerates those intersections, giving the exact solver in
//! [`crate::dreyfus_wagner`] a finite, optimal search space.

use dgr_grid::Point;

/// The Hanan grid induced by a pin set: the cross product of the distinct
/// x and y coordinates.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
/// use dgr_rsmt::hanan::HananGrid;
///
/// let h = HananGrid::new(&[Point::new(0, 0), Point::new(2, 3)]);
/// assert_eq!(h.num_points(), 4);
/// assert!(h.index_of(Point::new(0, 3)).is_some());
/// assert!(h.index_of(Point::new(1, 1)).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HananGrid {
    xs: Vec<i32>,
    ys: Vec<i32>,
}

impl HananGrid {
    /// Builds the Hanan grid of `pins`.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is empty.
    pub fn new(pins: &[Point]) -> Self {
        assert!(!pins.is_empty(), "hanan grid of zero pins");
        let mut xs: Vec<i32> = pins.iter().map(|p| p.x).collect();
        let mut ys: Vec<i32> = pins.iter().map(|p| p.y).collect();
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        HananGrid { xs, ys }
    }

    /// Number of distinct x coordinates.
    pub fn num_cols(&self) -> usize {
        self.xs.len()
    }

    /// Number of distinct y coordinates.
    pub fn num_rows(&self) -> usize {
        self.ys.len()
    }

    /// Total number of Hanan points.
    pub fn num_points(&self) -> usize {
        self.xs.len() * self.ys.len()
    }

    /// The Hanan point with dense index `i` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_points()`.
    pub fn point(&self, i: usize) -> Point {
        let cols = self.xs.len();
        Point::new(self.xs[i % cols], self.ys[i / cols])
    }

    /// Dense index of a point, if it lies on the Hanan grid.
    pub fn index_of(&self, p: Point) -> Option<usize> {
        let col = self.xs.binary_search(&p.x).ok()?;
        let row = self.ys.binary_search(&p.y).ok()?;
        Some(row * self.xs.len() + col)
    }

    /// Iterates over all Hanan points, row-major.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.num_points()).map(move |i| self.point(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_of_one_pin_is_one_point() {
        let h = HananGrid::new(&[Point::new(7, 9)]);
        assert_eq!(h.num_points(), 1);
        assert_eq!(h.point(0), Point::new(7, 9));
    }

    #[test]
    fn duplicate_coordinates_collapse() {
        let h = HananGrid::new(&[
            Point::new(0, 0),
            Point::new(0, 5),
            Point::new(3, 0),
            Point::new(3, 5),
        ]);
        assert_eq!(h.num_cols(), 2);
        assert_eq!(h.num_rows(), 2);
        assert_eq!(h.num_points(), 4);
    }

    #[test]
    fn index_roundtrip() {
        let h = HananGrid::new(&[Point::new(1, 2), Point::new(4, 8), Point::new(6, 3)]);
        for i in 0..h.num_points() {
            assert_eq!(h.index_of(h.point(i)), Some(i));
        }
    }

    #[test]
    fn every_pin_is_on_its_hanan_grid() {
        let pins = [Point::new(1, 2), Point::new(4, 8), Point::new(6, 3)];
        let h = HananGrid::new(&pins);
        for p in pins {
            assert!(h.index_of(p).is_some());
        }
    }

    #[test]
    fn off_grid_point_has_no_index() {
        let h = HananGrid::new(&[Point::new(0, 0), Point::new(2, 2)]);
        assert_eq!(h.index_of(Point::new(1, 0)), None);
    }
}
