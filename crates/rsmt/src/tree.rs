//! The routing-tree data structure shared by every tree source.

use dgr_grid::Point;
use serde::{Deserialize, Serialize};

use crate::RsmtError;

/// A topology over a net's pins: pins plus optional Steiner points,
/// connected by tree edges.
///
/// Tree edges are *virtual*: an edge `(u, v)` means "these two points form a
/// 2-pin sub-net" and is later realized by a pattern-routing path. The tree
/// [`length`](RoutingTree::length) is therefore the sum of Manhattan
/// distances over edges — the wirelength any monotone realization of the
/// edges achieves.
///
/// Invariants (checked by [`RoutingTree::validate`]):
/// * `edges.len() == nodes.len() − 1` and the edge set is connected
///   (i.e. the structure is a tree),
/// * the first [`num_pins`](RoutingTree::num_pins) nodes are exactly the
///   net's distinct pins,
/// * no two nodes share a position.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RoutingTree {
    nodes: Vec<Point>,
    num_pins: usize,
    edges: Vec<(u32, u32)>,
}

impl RoutingTree {
    /// Creates a tree from raw parts, normalizing it on the way in:
    /// duplicate-position nodes are merged, non-pin nodes of degree ≤ 2 are
    /// spliced out, and edges are canonically ordered.
    ///
    /// The first `num_pins` entries of `nodes` must be the pins.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `num_pins > nodes.len()`.
    pub fn from_parts(nodes: Vec<Point>, num_pins: usize, edges: Vec<(u32, u32)>) -> Self {
        debug_assert!(num_pins <= nodes.len());
        let mut tree = RoutingTree {
            nodes,
            num_pins,
            edges,
        };
        tree.merge_duplicate_nodes();
        tree.splice_trivial_steiner();
        tree.canonicalize();
        tree
    }

    /// A tree over a single point (a local net): no edges.
    pub fn singleton(p: Point) -> Self {
        RoutingTree {
            nodes: vec![p],
            num_pins: 1,
            edges: Vec::new(),
        }
    }

    /// All node positions; pins first, then Steiner points.
    pub fn nodes(&self) -> &[Point] {
        &self.nodes
    }

    /// Number of pin nodes (a prefix of [`nodes`](RoutingTree::nodes)).
    pub fn num_pins(&self) -> usize {
        self.num_pins
    }

    /// Steiner (non-pin) node positions.
    pub fn steiner_points(&self) -> &[Point] {
        &self.nodes[self.num_pins..]
    }

    /// Tree edges as index pairs into [`nodes`](RoutingTree::nodes).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Total Manhattan length over all edges.
    pub fn length(&self) -> u64 {
        self.edges
            .iter()
            .map(|&(a, b)| self.nodes[a as usize].manhattan_distance(self.nodes[b as usize]) as u64)
            .sum()
    }

    /// The 2-pin sub-nets induced by the tree topology, as point pairs.
    pub fn subnets(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.edges
            .iter()
            .map(move |&(a, b)| (self.nodes[a as usize], self.nodes[b as usize]))
    }

    /// Degree of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (via the debug assert below).
    pub fn degree(&self, i: usize) -> usize {
        debug_assert!(i < self.nodes.len());
        self.edges
            .iter()
            .filter(|&&(a, b)| a as usize == i || b as usize == i)
            .count()
    }

    /// Checks the tree invariants.
    ///
    /// # Errors
    ///
    /// Returns [`RsmtError::InvalidTree`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), RsmtError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(RsmtError::InvalidTree("empty node set".into()));
        }
        if self.edges.len() != n - 1 {
            return Err(RsmtError::InvalidTree(format!(
                "{} nodes but {} edges",
                n,
                self.edges.len()
            )));
        }
        // connectivity via union-find
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(a, b) in &self.edges {
            let (a, b) = (a as usize, b as usize);
            if a >= n || b >= n {
                return Err(RsmtError::InvalidTree("edge index out of range".into()));
            }
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                return Err(RsmtError::InvalidTree("cycle detected".into()));
            }
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for i in 1..n {
            if find(&mut parent, i) != root {
                return Err(RsmtError::InvalidTree("disconnected".into()));
            }
        }
        let mut seen = std::collections::HashSet::with_capacity(n);
        for p in &self.nodes {
            if !seen.insert(*p) {
                return Err(RsmtError::InvalidTree(format!("duplicate node at {p}")));
            }
        }
        Ok(())
    }

    /// A canonical fingerprint of the topology: the sorted multiset of
    /// subnet endpoint pairs. Trees with the same fingerprint induce the
    /// same 2-pin sub-nets and are interchangeable as DAG candidates.
    pub fn fingerprint(&self) -> Vec<(Point, Point)> {
        let mut subnets: Vec<(Point, Point)> = self
            .subnets()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        subnets.sort_unstable();
        subnets
    }

    fn merge_duplicate_nodes(&mut self) {
        use std::collections::HashMap;
        let mut first_at: HashMap<Point, u32> = HashMap::new();
        let mut remap: Vec<u32> = Vec::with_capacity(self.nodes.len());
        let mut kept: Vec<Point> = Vec::with_capacity(self.nodes.len());
        let mut kept_pins = 0usize;
        for (i, &p) in self.nodes.iter().enumerate() {
            match first_at.get(&p) {
                Some(&j) => remap.push(j),
                None => {
                    let j = kept.len() as u32;
                    first_at.insert(p, j);
                    kept.push(p);
                    remap.push(j);
                    if i < self.num_pins {
                        kept_pins += 1;
                    }
                }
            }
        }
        if kept.len() == self.nodes.len() {
            return;
        }
        // Remap edges, dropping self-loops and duplicate edges.
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.edges.len());
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &self.edges {
            let (a, b) = (remap[a as usize], remap[b as usize]);
            if a == b {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            if seen.insert(key) {
                edges.push(key);
            }
        }
        self.nodes = kept;
        self.num_pins = kept_pins;
        self.edges = edges;
        // Merging can create a multigraph that, deduplicated, leaves extra
        // edges forming cycles; strip them with a spanning pass.
        self.keep_spanning_subset();
    }

    fn keep_spanning_subset(&mut self) {
        let n = self.nodes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        self.edges.retain(|&(a, b)| {
            let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
            if ra == rb {
                false
            } else {
                parent[ra] = rb;
                true
            }
        });
    }

    /// Removes non-pin nodes of degree ≤ 2. Degree-2 Steiner nodes are
    /// spliced (their two edges fused); degree-1 and degree-0 Steiner nodes
    /// are dropped.
    fn splice_trivial_steiner(&mut self) {
        loop {
            let n = self.nodes.len();
            let mut degree = vec![0usize; n];
            let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
            for &(a, b) in &self.edges {
                degree[a as usize] += 1;
                degree[b as usize] += 1;
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
            let victim = (self.num_pins..n).find(|&i| degree[i] <= 2);
            let Some(v) = victim else { break };
            let neighbors = adj[v].clone();
            self.edges
                .retain(|&(a, b)| a as usize != v && b as usize != v);
            if neighbors.len() == 2 && neighbors[0] != neighbors[1] {
                self.edges.push((neighbors[0], neighbors[1]));
            }
            // swap-remove node v, fixing indices of the moved node
            let last = (self.nodes.len() - 1) as u32;
            self.nodes.swap_remove(v);
            if v as u32 != last {
                for e in &mut self.edges {
                    if e.0 == last {
                        e.0 = v as u32;
                    }
                    if e.1 == last {
                        e.1 = v as u32;
                    }
                }
            }
        }
    }

    fn canonicalize(&mut self) {
        for e in &mut self.edges {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        self.edges.sort_unstable();
    }
}

impl std::fmt::Display for RoutingTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RoutingTree[{} pins, {} steiner, len {}]",
            self.num_pins,
            self.nodes.len() - self.num_pins,
            self.length()
        )
    }
}

/// Deduplicates a pin list, preserving first-seen order.
pub fn dedup_pins(pins: &[Point]) -> Vec<Point> {
    let mut seen = std::collections::HashSet::with_capacity(pins.len());
    pins.iter().copied().filter(|p| seen.insert(*p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_tree_is_valid() {
        let t = RoutingTree::singleton(Point::new(3, 3));
        t.validate().unwrap();
        assert_eq!(t.length(), 0);
        assert_eq!(t.subnets().count(), 0);
    }

    #[test]
    fn two_pin_tree() {
        let t = RoutingTree::from_parts(vec![Point::new(0, 0), Point::new(3, 4)], 2, vec![(0, 1)]);
        t.validate().unwrap();
        assert_eq!(t.length(), 7);
        assert_eq!(t.subnets().count(), 1);
    }

    #[test]
    fn splice_removes_degree_two_steiner() {
        // pin — steiner — pin collinear chain collapses to one edge
        let t = RoutingTree::from_parts(
            vec![Point::new(0, 0), Point::new(4, 0), Point::new(2, 0)],
            2,
            vec![(0, 2), (2, 1)],
        );
        t.validate().unwrap();
        assert_eq!(t.nodes().len(), 2);
        assert_eq!(t.edges(), &[(0, 1)]);
        assert_eq!(t.length(), 4);
    }

    #[test]
    fn degree_three_steiner_survives() {
        let t = RoutingTree::from_parts(
            vec![
                Point::new(0, 2),
                Point::new(4, 2),
                Point::new(2, 0),
                Point::new(2, 2), // steiner
            ],
            3,
            vec![(0, 3), (1, 3), (2, 3)],
        );
        t.validate().unwrap();
        assert_eq!(t.steiner_points(), &[Point::new(2, 2)]);
        assert_eq!(t.length(), 2 + 2 + 2);
    }

    #[test]
    fn duplicate_nodes_are_merged() {
        let t = RoutingTree::from_parts(
            vec![Point::new(0, 0), Point::new(1, 1), Point::new(0, 0)],
            2,
            vec![(0, 1), (2, 1)],
        );
        t.validate().unwrap();
        assert_eq!(t.nodes().len(), 2);
    }

    #[test]
    fn validate_rejects_cycle() {
        let t = RoutingTree {
            nodes: vec![Point::new(0, 0), Point::new(1, 0), Point::new(0, 1)],
            num_pins: 3,
            edges: vec![(0, 1), (1, 2), (0, 2)],
        };
        assert!(matches!(t.validate(), Err(RsmtError::InvalidTree(_))));
    }

    #[test]
    fn validate_rejects_disconnected() {
        let t = RoutingTree {
            nodes: vec![
                Point::new(0, 0),
                Point::new(1, 0),
                Point::new(5, 5),
                Point::new(6, 5),
            ],
            num_pins: 4,
            edges: vec![(0, 1), (2, 3), (0, 1)],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn fingerprint_ignores_edge_order_and_direction() {
        let a = RoutingTree::from_parts(
            vec![Point::new(0, 0), Point::new(2, 2), Point::new(4, 0)],
            3,
            vec![(0, 1), (1, 2)],
        );
        let b = RoutingTree::from_parts(
            vec![Point::new(4, 0), Point::new(2, 2), Point::new(0, 0)],
            3,
            vec![(1, 0), (2, 1)],
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn dedup_preserves_order() {
        let pins = [
            Point::new(1, 1),
            Point::new(2, 2),
            Point::new(1, 1),
            Point::new(3, 3),
        ];
        assert_eq!(
            dedup_pins(&pins),
            vec![Point::new(1, 1), Point::new(2, 2), Point::new(3, 3)]
        );
    }
}
