//! Canonical pin configurations and the Steiner-template cache.
//!
//! The DGR paper leans on FLUTE, whose speed comes from memoization: real
//! netlists repeat a small number of pin *configurations* up to
//! translation and the 8 rectilinear symmetries, so each Steiner problem
//! is solved once per equivalence class and re-instantiated per net. Our
//! Dreyfus–Wagner DP is exponential in the pin count, which makes the
//! same trick proportionally more valuable.
//!
//! [`canonical_key`] reduces a distinct-pin set to its canonical
//! representative: for each of the 8 symmetries (axis swap × x-negation ×
//! y-negation) the pins are transformed, translated so the minima land on
//! the origin, and sorted (the sort erases pin permutation); the
//! lexicographically smallest of the 8 sorted lists is the key, and the
//! winning transform is remembered as a [`CanonMap`]. Two nets share a key
//! iff they are the same configuration up to translation, reflection,
//! rotation, and pin order.
//!
//! [`RsmtCache`] memoizes the canonical-space solve keyed by that list.
//! Crucially, the *uncached* [`crate::rsmt`] path routes through the same
//! canonicalize → solve → [`instantiate`] sequence, so cached and
//! uncached trees are identical down to tie-breaking — a cache hit can
//! never change a topology, only skip a DP run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dgr_grid::Point;

use crate::tree::RoutingTree;
use crate::EXACT_PIN_LIMIT;

/// The symmetry + translation that maps a real pin set onto its canonical
/// form (and back).
///
/// Forward: swap axes (optional), negate axes (optional), then translate
/// by `(-tx, -ty)`. [`CanonMap::inverse`] undoes the three steps in
/// reverse order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonMap {
    swap: bool,
    negx: bool,
    negy: bool,
    tx: i32,
    ty: i32,
}

impl CanonMap {
    #[inline]
    fn transform(&self, p: Point) -> (i32, i32) {
        let (mut a, mut b) = if self.swap { (p.y, p.x) } else { (p.x, p.y) };
        if self.negx {
            a = -a;
        }
        if self.negy {
            b = -b;
        }
        (a, b)
    }

    /// Maps a real-coordinate point into canonical space.
    #[inline]
    pub fn forward(&self, p: Point) -> Point {
        let (a, b) = self.transform(p);
        Point::new(a - self.tx, b - self.ty)
    }

    /// Maps a canonical-space point back to real coordinates.
    #[inline]
    pub fn inverse(&self, p: Point) -> Point {
        let (mut a, mut b) = (p.x + self.tx, p.y + self.ty);
        if self.negx {
            a = -a;
        }
        if self.negy {
            b = -b;
        }
        if self.swap {
            Point::new(b, a)
        } else {
            Point::new(a, b)
        }
    }
}

/// Reduces a set of *distinct* pins to its canonical representative.
///
/// Returns the canonical pin list (sorted, translated to the origin,
/// lexicographically smallest over the 8 rectilinear symmetries) and the
/// [`CanonMap`] that realizes it. Ties between symmetries are broken by a
/// fixed symmetry order, so the result is deterministic.
pub fn canonical_key(unique: &[Point]) -> (Vec<Point>, CanonMap) {
    debug_assert!(!unique.is_empty());
    let mut best: Option<(Vec<Point>, CanonMap)> = None;
    let mut scratch: Vec<Point> = Vec::with_capacity(unique.len());
    for sym in 0..8u8 {
        let mut map = CanonMap {
            swap: sym & 1 != 0,
            negx: sym & 2 != 0,
            negy: sym & 4 != 0,
            tx: 0,
            ty: 0,
        };
        scratch.clear();
        scratch.extend(unique.iter().map(|&p| {
            let (a, b) = map.transform(p);
            Point::new(a, b)
        }));
        map.tx = scratch.iter().map(|p| p.x).min().unwrap();
        map.ty = scratch.iter().map(|p| p.y).min().unwrap();
        for p in &mut scratch {
            *p = Point::new(p.x - map.tx, p.y - map.ty);
        }
        scratch.sort_unstable();
        if best.as_ref().is_none_or(|(key, _)| scratch < *key) {
            best = Some((scratch.clone(), map));
        }
    }
    best.unwrap()
}

/// Solves the Steiner problem on a canonical pin list: exact
/// Dreyfus–Wagner up to [`EXACT_PIN_LIMIT`] pins, Steinerized RMST above.
///
/// Every tree [`crate::rsmt`] returns for ≥ 4 pins is this solve on the
/// canonical key, mapped back through [`instantiate`] — which is what
/// makes memoizing it sound.
pub fn solve_canonical(key: &[Point]) -> RoutingTree {
    if key.len() <= EXACT_PIN_LIMIT {
        crate::dreyfus_wagner::exact_steiner(key)
    } else {
        crate::steinerize::steinerized_rmst(key)
    }
}

/// Re-instantiates a canonical-space template over the real pins.
///
/// `pins` must be the distinct pin set whose [`canonical_key`] produced
/// `map` and (via [`solve_canonical`]) `template`. Pin nodes are emitted
/// in the caller's pin order; Steiner points follow.
pub fn instantiate(template: &RoutingTree, map: &CanonMap, pins: &[Point]) -> RoutingTree {
    let pin_index: HashMap<Point, u32> = pins
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let num_pins = template.num_pins();
    let mut nodes: Vec<Point> = pins.to_vec();
    let mut remap: Vec<u32> = Vec::with_capacity(template.nodes().len());
    for (i, &cp) in template.nodes().iter().enumerate() {
        let rp = map.inverse(cp);
        if i < num_pins {
            remap.push(
                *pin_index
                    .get(&rp)
                    .expect("template pin maps onto a real pin"),
            );
        } else {
            remap.push(nodes.len() as u32);
            nodes.push(rp);
        }
    }
    let edges = template
        .edges()
        .iter()
        .map(|&(a, b)| (remap[a as usize], remap[b as usize]))
        .collect();
    RoutingTree::from_parts(nodes, pins.len(), edges)
}

/// The optimal 3-terminal tree: a star through the component-wise median.
///
/// Classic result — for three terminals the L1 Steiner minimum is the
/// median point, and the length is `span_x + span_y`. Skips the Hanan
/// grid and the DP entirely.
pub(crate) fn median_star(pins: &[Point]) -> RoutingTree {
    debug_assert_eq!(pins.len(), 3);
    let s = crate::steinerize::median3(pins[0], pins[1], pins[2]);
    let mut nodes = pins.to_vec();
    nodes.push(s);
    // from_parts merges s into a pin when the median coincides with one.
    RoutingTree::from_parts(nodes, 3, vec![(0, 3), (1, 3), (2, 3)])
}

/// Number of independently locked cache shards (a power of two).
const SHARDS: usize = 16;

/// A sharded, thread-safe memo table for canonical Steiner templates.
///
/// Keys are canonical pin lists from [`canonical_key`]; values are the
/// [`solve_canonical`] trees. Shared by reference across the candidate
/// fan-out threads; hit/miss totals are kept locally (always) and
/// mirrored into the `dgr-obs` counters `rsmt.cache.hits` /
/// `rsmt.cache.misses` (when observability is enabled).
///
/// Under a race two threads may both miss the same fresh key; the solve
/// is deterministic so both compute the identical template and the first
/// insert wins — correctness is unaffected, the miss counter may simply
/// over-count by the number of racing threads.
pub struct RsmtCache {
    shards: Vec<Mutex<HashMap<Vec<Point>, RoutingTree>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for RsmtCache {
    fn default() -> Self {
        RsmtCache::new()
    }
}

impl RsmtCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RsmtCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(key: &[Point]) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    /// Returns the template for `key`, solving and inserting on a miss.
    ///
    /// The solve runs outside the shard lock so concurrent lookups of
    /// other keys are never blocked on a DP run.
    pub fn template(
        &self,
        key: &[Point],
        solve: impl FnOnce(&[Point]) -> RoutingTree,
    ) -> RoutingTree {
        let shard = &self.shards[Self::shard_of(key)];
        if let Some(t) = shard.lock().unwrap().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            dgr_obs::counter("rsmt.cache.hits").add(1);
            return t.clone();
        }
        let t = solve(key);
        self.misses.fetch_add(1, Ordering::Relaxed);
        dgr_obs::counter("rsmt.cache.misses").add(1);
        shard
            .lock()
            .unwrap()
            .entry(key.to_vec())
            .or_insert(t)
            .clone()
    }

    /// Total cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total cache misses (= canonical classes solved, modulo races).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits over total lookups, `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of distinct canonical classes currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no templates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(i32, i32)]) -> Vec<Point> {
        raw.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn forward_inverse_round_trip() {
        let pins = pts(&[(3, -7), (12, 5), (-4, 9), (0, 0)]);
        let (key, map) = canonical_key(&pins);
        let mut mapped: Vec<Point> = pins.iter().map(|&p| map.forward(p)).collect();
        mapped.sort_unstable();
        assert_eq!(mapped, key);
        for &p in &pins {
            assert_eq!(map.inverse(map.forward(p)), p);
        }
    }

    #[test]
    fn key_starts_at_origin() {
        let pins = pts(&[(100, 40), (103, 47), (108, 41)]);
        let (key, _) = canonical_key(&pins);
        assert_eq!(key.iter().map(|p| p.x).min(), Some(0));
        assert_eq!(key.iter().map(|p| p.y).min(), Some(0));
    }

    #[test]
    fn symmetric_configurations_share_a_key() {
        let base = pts(&[(0, 0), (5, 1), (2, 4), (7, 3)]);
        // translation
        let shifted: Vec<Point> = base.iter().map(|p| Point::new(p.x + 40, p.y - 9)).collect();
        // x mirror
        let mirrored: Vec<Point> = base.iter().map(|p| Point::new(-p.x, p.y)).collect();
        // axis swap (transpose)
        let swapped: Vec<Point> = base.iter().map(|p| Point::new(p.y, p.x)).collect();
        // pin permutation
        let mut permuted = base.clone();
        permuted.rotate_left(2);
        let (key, _) = canonical_key(&base);
        for variant in [&shifted, &mirrored, &swapped, &permuted] {
            assert_eq!(canonical_key(variant).0, key);
        }
    }

    #[test]
    fn distinct_configurations_get_distinct_keys() {
        let a = pts(&[(0, 0), (4, 0), (0, 4), (4, 4)]);
        let b = pts(&[(0, 0), (4, 0), (0, 4), (5, 5)]);
        assert_ne!(canonical_key(&a).0, canonical_key(&b).0);
    }

    #[test]
    fn instantiated_template_matches_direct_solve_length() {
        let pins = pts(&[(7, 2), (1, 9), (4, 4), (9, 8), (2, 1)]);
        let (key, map) = canonical_key(&pins);
        let tree = instantiate(&solve_canonical(&key), &map, &pins);
        tree.validate().unwrap();
        // Lengths are invariant under the symmetry group.
        assert_eq!(tree.length(), crate::exact_steiner(&pins).length());
        for p in &pins {
            assert!(tree.nodes().contains(p));
        }
    }

    #[test]
    fn median_star_is_optimal_for_three_pins() {
        let pins = pts(&[(0, 0), (6, 2), (3, 8)]);
        let t = median_star(&pins);
        t.validate().unwrap();
        assert_eq!(t.length(), 6 + 8); // span_x + span_y
        assert_eq!(t.length(), crate::exact_steiner(&pins).length());
    }

    #[test]
    fn median_star_collapses_onto_a_pin() {
        // median == middle pin: no Steiner point survives normalization
        let pins = pts(&[(0, 0), (2, 2), (5, 5)]);
        let t = median_star(&pins);
        t.validate().unwrap();
        assert!(t.steiner_points().is_empty());
        assert_eq!(t.length(), 10);
    }

    #[test]
    fn cache_hits_symmetric_variants() {
        let cache = RsmtCache::new();
        let a = pts(&[(0, 0), (5, 1), (2, 4), (7, 3)]);
        let b: Vec<Point> = a.iter().map(|p| Point::new(p.y + 11, p.x - 3)).collect();
        let (ka, _) = canonical_key(&a);
        let (kb, _) = canonical_key(&b);
        assert_eq!(ka, kb);
        cache.template(&ka, solve_canonical);
        cache.template(&kb, solve_canonical);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }
}
