//! The discrete 2D routing solution and its quality metrics.

use dgr_grid::{DemandMap, Design, OverflowStats, Point};

use crate::train::TrainReport;

/// One realized pattern path: the corner polyline of a routed 2-pin
/// sub-net (endpoints inclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePath {
    /// Waypoints from source to sink; consecutive points are aligned.
    pub corners: Vec<Point>,
}

impl RoutePath {
    /// Wirelength in g-cell edge units.
    pub fn wirelength(&self) -> u64 {
        self.corners
            .windows(2)
            .map(|w| w[0].manhattan_distance(w[1]) as u64)
            .sum()
    }

    /// Number of interior turning points.
    pub fn num_turns(&self) -> u64 {
        self.corners.len().saturating_sub(2) as u64
    }
}

/// The routed form of one net: its chosen tree candidate and one realized
/// path per 2-pin sub-net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRoute {
    /// Net index in the input design.
    pub net: usize,
    /// Global tree index (into the DAG forest) that was selected.
    pub tree: usize,
    /// Realized paths, one per sub-net of the selected tree.
    pub paths: Vec<RoutePath>,
}

impl NetRoute {
    /// Total wirelength of this net's routes.
    pub fn wirelength(&self) -> u64 {
        self.paths.iter().map(RoutePath::wirelength).sum()
    }

    /// Total turning points of this net's routes.
    pub fn num_turns(&self) -> u64 {
        self.paths.iter().map(RoutePath::num_turns).sum()
    }
}

/// Aggregate quality metrics of a 2D solution, in the paper's reporting
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolutionMetrics {
    /// Total wirelength in g-cell edge units.
    pub total_wirelength: u64,
    /// Total 2D turning points (each becomes ≥ 1 via after layer
    /// assignment).
    pub total_turns: u64,
    /// Overflow statistics against the design capacities (Eq. 2 demand).
    pub overflow: OverflowStats,
}

impl SolutionMetrics {
    /// The ICCAD'19 weighted cost `500·overflow + 4·turns + 0.5·WL`
    /// evaluated on the *discrete* solution (total overflow mass).
    pub fn weighted_cost(&self) -> f64 {
        500.0 * self.overflow.total_overflow
            + 4.0 * self.total_turns as f64
            + 0.5 * self.total_wirelength as f64
    }
}

/// A complete discrete 2D routing solution.
#[derive(Debug, Clone)]
pub struct RoutingSolution {
    /// Per-net routes, in input-net order.
    pub routes: Vec<NetRoute>,
    /// Committed demand of the whole solution.
    pub demand: DemandMap,
    /// Quality metrics.
    pub metrics: SolutionMetrics,
    /// Training diagnostics (present when produced by the full pipeline).
    pub train_report: Option<TrainReport>,
}

impl RoutingSolution {
    /// Recomputes metrics from routes against `design` (used after
    /// post-processing mutates routes).
    ///
    /// # Errors
    ///
    /// Propagates grid errors if a route leaves the grid.
    pub fn remeasure(&mut self, design: &Design) -> Result<(), dgr_grid::GridError> {
        let mut demand = DemandMap::new(&design.grid);
        let mut wl = 0u64;
        let mut turns = 0u64;
        for route in &self.routes {
            for path in &route.paths {
                wl += path.wirelength();
                turns += path.num_turns();
                for w in path.corners.windows(2) {
                    demand.add_segment(&design.grid, w[0], w[1])?;
                }
                for corner in path
                    .corners
                    .iter()
                    .skip(1)
                    .take(path.corners.len().saturating_sub(2))
                {
                    demand.add_turn(&design.grid, *corner)?;
                }
            }
        }
        let overflow = OverflowStats::measure(&design.grid, &design.capacity, &demand);
        self.demand = demand;
        self.metrics = SolutionMetrics {
            total_wirelength: wl,
            total_turns: turns,
            overflow,
        };
        Ok(())
    }

    /// Serializes the routes to a plain-text checkpoint:
    ///
    /// ```text
    /// DGR-ROUTES v1
    /// net <index> tree <tree>
    /// path <x> <y> <x> <y> ...
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("DGR-ROUTES v1\n");
        for route in &self.routes {
            out.push_str(&format!("net {} tree {}\n", route.net, route.tree));
            for path in &route.paths {
                out.push_str("path");
                for c in &path.corners {
                    out.push_str(&format!(" {} {}", c.x, c.y));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Restores a solution from [`RoutingSolution::to_text`] output and
    /// re-measures it against `design`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DgrError::BadConfig`] on malformed text (the
    /// checkpoint is configuration-like input) or a grid error if a route
    /// does not fit `design`.
    pub fn from_text(design: &Design, text: &str) -> Result<Self, crate::DgrError> {
        let bad = |why: &str| crate::DgrError::BadConfig(format!("routes checkpoint: {why}"));
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("DGR-ROUTES v1") {
            return Err(bad("missing DGR-ROUTES v1 header"));
        }
        let mut routes: Vec<NetRoute> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            match it.next() {
                Some("net") => {
                    let net: usize = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("bad net index"))?;
                    let tree: usize = match (it.next(), it.next()) {
                        (Some("tree"), Some(t)) => t.parse().map_err(|_| bad("bad tree index"))?,
                        _ => return Err(bad("expected `net <i> tree <t>`")),
                    };
                    routes.push(NetRoute {
                        net,
                        tree,
                        paths: Vec::new(),
                    });
                }
                Some("path") => {
                    let coords: Result<Vec<i32>, _> = it.map(|s| s.parse::<i32>()).collect();
                    let coords = coords.map_err(|_| bad("bad path coordinate"))?;
                    if coords.is_empty() || coords.len() % 2 != 0 {
                        return Err(bad("path needs x/y pairs"));
                    }
                    let corners = coords.chunks(2).map(|c| Point::new(c[0], c[1])).collect();
                    routes
                        .last_mut()
                        .ok_or_else(|| bad("path before any net"))?
                        .paths
                        .push(RoutePath { corners });
                }
                _ => return Err(bad("unknown line")),
            }
        }
        if routes.len() != design.num_nets() {
            return Err(bad(&format!(
                "checkpoint has {} nets, design has {}",
                routes.len(),
                design.num_nets()
            )));
        }
        let mut solution = RoutingSolution {
            routes,
            demand: DemandMap::new(&design.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        solution.remeasure(design).map_err(crate::DgrError::Grid)?;
        Ok(solution)
    }

    /// Number of nets whose routes traverse at least one overflowed edge —
    /// `n₁` of the Fig. 6 weighted-overflow score.
    pub fn overflowed_nets(&self, design: &Design) -> usize {
        let grid = &design.grid;
        let cap = &design.capacity;
        let over_edge: Vec<bool> = grid
            .edge_ids()
            .map(|e| self.demand.total(grid, cap, e) > cap.capacity(e) + 1e-4)
            .collect();
        self.routes
            .iter()
            .filter(|route| {
                route.paths.iter().any(|p| {
                    p.corners.windows(2).any(|w| {
                        let mut edges = Vec::new();
                        grid.push_segment_edges(w[0], w[1], &mut edges)
                            .map(|()| edges.iter().any(|e| over_edge[e.index()]))
                            .unwrap_or(false)
                    })
                })
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::{CapacityBuilder, GcellGrid, Net};

    fn design(tracks: f32) -> Design {
        let grid = GcellGrid::new(8, 8).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks)
            .build(&grid)
            .unwrap();
        Design::new(
            grid,
            cap,
            vec![Net::new("n", vec![Point::new(0, 0), Point::new(4, 4)])],
            5,
        )
        .unwrap()
    }

    fn l_route() -> NetRoute {
        NetRoute {
            net: 0,
            tree: 0,
            paths: vec![RoutePath {
                corners: vec![Point::new(0, 0), Point::new(4, 0), Point::new(4, 4)],
            }],
        }
    }

    #[test]
    fn route_path_stats() {
        let p = RoutePath {
            corners: vec![Point::new(0, 0), Point::new(4, 0), Point::new(4, 4)],
        };
        assert_eq!(p.wirelength(), 8);
        assert_eq!(p.num_turns(), 1);
        let straight = RoutePath {
            corners: vec![Point::new(0, 0), Point::new(4, 0)],
        };
        assert_eq!(straight.num_turns(), 0);
    }

    #[test]
    fn remeasure_counts_everything() {
        let d = design(2.0);
        let mut sol = RoutingSolution {
            routes: vec![l_route()],
            demand: DemandMap::new(&d.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        sol.remeasure(&d).unwrap();
        assert_eq!(sol.metrics.total_wirelength, 8);
        assert_eq!(sol.metrics.total_turns, 1);
        assert_eq!(sol.metrics.overflow.overflowed_edges, 0);
        assert_eq!(sol.overflowed_nets(&d), 0);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let d = design(2.0);
        let mut sol = RoutingSolution {
            routes: vec![l_route()],
            demand: DemandMap::new(&d.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        sol.remeasure(&d).unwrap();
        let text = sol.to_text();
        let restored = RoutingSolution::from_text(&d, &text).unwrap();
        assert_eq!(restored.routes, sol.routes);
        assert_eq!(
            restored.metrics.total_wirelength,
            sol.metrics.total_wirelength
        );
        assert_eq!(restored.demand.wire_slice(), sol.demand.wire_slice());
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        let d = design(2.0);
        assert!(RoutingSolution::from_text(&d, "not a checkpoint").is_err());
        assert!(RoutingSolution::from_text(&d, "DGR-ROUTES v1\npath 1 2\n").is_err());
        assert!(RoutingSolution::from_text(&d, "DGR-ROUTES v1\nnet 0 tree 0\npath 1\n").is_err());
        // wrong net count
        assert!(RoutingSolution::from_text(&d, "DGR-ROUTES v1\n").is_err());
    }

    #[test]
    fn overflowed_nets_detects_congestion() {
        // capacity 0.2 < 1 wire + via pressure → every used edge overflows
        let d = design(0.2);
        let mut sol = RoutingSolution {
            routes: vec![l_route()],
            demand: DemandMap::new(&d.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        sol.remeasure(&d).unwrap();
        assert!(sol.metrics.overflow.overflowed_edges > 0);
        assert_eq!(sol.overflowed_nets(&d), 1);
        assert!(sol.metrics.weighted_cost() > 0.0);
    }
}
