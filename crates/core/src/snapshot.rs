//! Glue between the grid's congestion captures and the obs snapshot
//! stream.
//!
//! `dgr-obs` is dependency-free (plain vectors), `dgr-grid` knows the
//! edge layout; this module converts between the two and owns the write
//! discipline of the stream: header first (idempotent), then snapshots
//! keyed by `(iter, phase)`. Capture sites call these helpers from the
//! training loop (dense Eq. 10 expected demand) and from extraction /
//! post-processing (discrete [`DemandMap`] demand).

use dgr_grid::{capacity_grids, CongestionSnapshot, DemandMap, Design};
use dgr_obs::{SnapshotHeader, SnapshotRecord, SnapshotSink};

use crate::solution::RoutingSolution;

/// Builds the stream header (grid dimensions + capacity rasters) for
/// `design`.
pub fn snapshot_header(design: &Design) -> SnapshotHeader {
    let (h_capacity, v_capacity) = capacity_grids(&design.grid, &design.capacity);
    SnapshotHeader {
        width: design.grid.width(),
        height: design.grid.height(),
        h_capacity,
        v_capacity,
    }
}

/// Writes the header record if the sink does not have one yet.
pub fn ensure_header(sink: &mut SnapshotSink, design: &Design) {
    if !sink.header_written() {
        sink.write_header(&snapshot_header(design));
    }
}

fn to_record(
    snap: CongestionSnapshot,
    iter: u64,
    phase: &str,
    lane: Option<u64>,
) -> SnapshotRecord {
    SnapshotRecord {
        iter,
        phase: phase.to_string(),
        h_demand: snap.h_demand,
        v_demand: snap.v_demand,
        h_overflow: snap.h_overflow,
        v_overflow: snap.v_overflow,
        overflowed_edges: snap.overflowed_edges as u64,
        total_overflow: snap.total_overflow,
        peak_overflow: snap.peak_overflow,
        lane,
    }
}

/// Captures and writes one snapshot of a discrete [`DemandMap`].
pub fn write_demand_snapshot(
    sink: &mut SnapshotSink,
    design: &Design,
    demand: &DemandMap,
    iter: u64,
    phase: &str,
) {
    ensure_header(sink, design);
    let snap = CongestionSnapshot::capture(&design.grid, &design.capacity, demand);
    sink.write_snapshot(&to_record(snap, iter, phase, None));
}

/// Captures and writes one snapshot of the dense per-edge expected
/// demand the relaxed model maintains during training (Eq. 10). A
/// length mismatch is silently dropped — observability must never abort
/// a training run (and the trainer's demand tensor always matches).
pub fn write_dense_snapshot(
    sink: &mut SnapshotSink,
    design: &Design,
    total_demand: &[f32],
    iter: u64,
    phase: &str,
) {
    write_dense_snapshot_lane(sink, design, total_demand, iter, phase, None);
}

/// [`write_dense_snapshot`] with a batch lane tag — batched training
/// captures each instance's demand grid separately and labels it.
pub fn write_dense_snapshot_lane(
    sink: &mut SnapshotSink,
    design: &Design,
    total_demand: &[f32],
    iter: u64,
    phase: &str,
    lane: Option<u64>,
) {
    ensure_header(sink, design);
    debug_assert_eq!(total_demand.len(), design.grid.num_edges());
    if let Ok(snap) = CongestionSnapshot::from_dense(&design.grid, &design.capacity, total_demand) {
        sink.write_snapshot(&to_record(snap, iter, phase, lane));
    }
}

/// Captures and writes one snapshot of an extracted solution's committed
/// demand.
pub fn write_solution_snapshot(
    sink: &mut SnapshotSink,
    design: &Design,
    solution: &RoutingSolution,
    iter: u64,
    phase: &str,
) {
    write_demand_snapshot(sink, design, &solution.demand, iter, phase);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::{CapacityBuilder, GcellGrid, Net, Point};
    use dgr_obs::SnapshotStream;

    fn tiny_design() -> Design {
        let grid = GcellGrid::new(4, 4).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        Design::new(
            grid,
            cap,
            vec![Net::new("n0", vec![Point::new(0, 0), Point::new(3, 3)])],
            3,
        )
        .unwrap()
    }

    #[test]
    fn demand_snapshot_round_trips_through_stream() {
        let design = tiny_design();
        let mut demand = DemandMap::new(&design.grid);
        for _ in 0..2 {
            demand
                .add_segment(&design.grid, Point::new(0, 1), Point::new(2, 1))
                .unwrap();
        }
        let mut sink = SnapshotSink::in_memory();
        write_demand_snapshot(&mut sink, &design, &demand, 7, "train");
        write_demand_snapshot(&mut sink, &design, &demand, 9, "final");
        let stream = SnapshotStream::parse(sink.memory_contents().unwrap()).unwrap();
        let header = stream.header.expect("header written once");
        assert_eq!(header.width, 4);
        assert_eq!(header.h_capacity.len(), design.grid.num_h_edges());
        assert_eq!(stream.snapshots.len(), 2);
        assert_eq!(stream.snapshots[0].iter, 7);
        assert_eq!(stream.snapshots[1].phase, "final");
        // two wires on capacity-1 h-edges → overflow 1 on two edges
        assert_eq!(stream.snapshots[0].overflowed_edges, 2);
        assert_eq!(stream.snapshots[0].total_overflow, 2.0);
    }

    #[test]
    fn dense_snapshot_matches_demand_snapshot() {
        let design = tiny_design();
        let mut demand = DemandMap::new(&design.grid);
        demand
            .add_segment(&design.grid, Point::new(0, 0), Point::new(0, 3))
            .unwrap();
        let dense: Vec<f32> = design
            .grid
            .edge_ids()
            .map(|e| demand.total(&design.grid, &design.capacity, e))
            .collect();

        let mut a = SnapshotSink::in_memory();
        write_demand_snapshot(&mut a, &design, &demand, 0, "x");
        let mut b = SnapshotSink::in_memory();
        write_dense_snapshot(&mut b, &design, &dense, 0, "x");
        assert_eq!(a.memory_contents(), b.memory_contents());
    }
}
