#![warn(missing_docs)]

//! DGR — the differentiable global router (the paper's contribution).
//!
//! The router turns 2D pattern routing into a continuous optimization
//! problem (Section 4 of the paper):
//!
//! 1. build a [DAG forest](dgr_dag::DagForest) of routing-tree and
//!    2-pin-path candidates for every net,
//! 2. relax the discrete tree/path selections to probabilities produced by
//!    per-group Gumbel-softmax over trainable logits ([`relax`]),
//! 3. minimize the expected cost
//!    `a₁·WL + a₂·via + a₃·overflow` (ICCAD'19 weights 0.5 / 4 / 500) with
//!    Adam, annealing the softmax temperature ([`train()`]),
//! 4. extract a discrete solution by tree-argmax + top-p path selection
//!    ([`extract`]).
//!
//! # Examples
//!
//! ```
//! use dgr_core::{DgrConfig, DgrRouter};
//! use dgr_grid::{CapacityBuilder, Design, GcellGrid, Net, Point};
//!
//! let grid = GcellGrid::new(16, 16)?;
//! let cap = CapacityBuilder::uniform(&grid, 4.0).build(&grid)?;
//! let design = Design::new(
//!     grid,
//!     cap,
//!     vec![
//!         Net::new("a", vec![Point::new(1, 1), Point::new(12, 9)]),
//!         Net::new("b", vec![Point::new(2, 10), Point::new(11, 3)]),
//!     ],
//!     5,
//! )?;
//! let mut config = DgrConfig::default();
//! config.iterations = 50; // keep the doc-test fast
//! let routed = DgrRouter::new(config).route(&design)?;
//! assert_eq!(routed.routes.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod attribution;
pub mod config;
pub mod extract;
pub mod memory;
pub mod relax;
pub mod snapshot;
pub mod solution;
pub mod train;

pub use attribution::{attribute_solution, write_attribution, MAX_ATTRIBUTION_NETS};
pub use config::{CostWeights, DgrConfig, ExtractionMode};
pub use extract::{extract_solution, extract_solution_instance};
pub use relax::{build_cost_model, build_cost_model_batched, CostModel};
pub use snapshot::{
    ensure_header, snapshot_header, write_demand_snapshot, write_dense_snapshot,
    write_dense_snapshot_lane, write_solution_snapshot,
};
pub use solution::{NetRoute, RoutePath, RoutingSolution, SolutionMetrics};
pub use train::{
    train, train_batched, train_batched_with_hooks, train_with_hooks, CurvePoint, ProgressConfig,
    SnapshotProbe, TrainHooks, TrainReport, CURVE_POINTS,
};

use dgr_grid::Design;
use dgr_obs::{SnapshotSink, TelemetrySink};

/// Errors produced by the DGR pipeline.
#[derive(Debug)]
pub enum DgrError {
    /// Steiner-tree construction failed.
    Rsmt(dgr_rsmt::RsmtError),
    /// DAG-forest construction failed.
    Dag(dgr_dag::DagError),
    /// Grid-level failure while realizing the solution.
    Grid(dgr_grid::GridError),
    /// The configuration is unusable (e.g. zero iterations).
    BadConfig(String),
    /// The run was cancelled cooperatively (see [`RouteHooks::cancel`]):
    /// the cancel flag was observed between training iterations or
    /// pipeline phases and the run stopped without producing a solution.
    Cancelled,
}

impl std::fmt::Display for DgrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DgrError::Rsmt(e) => write!(f, "tree construction failed: {e}"),
            DgrError::Dag(e) => write!(f, "forest construction failed: {e}"),
            DgrError::Grid(e) => write!(f, "grid operation failed: {e}"),
            DgrError::BadConfig(why) => write!(f, "bad configuration: {why}"),
            DgrError::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl std::error::Error for DgrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DgrError::Rsmt(e) => Some(e),
            DgrError::Dag(e) => Some(e),
            DgrError::Grid(e) => Some(e),
            DgrError::BadConfig(_) | DgrError::Cancelled => None,
        }
    }
}

impl From<dgr_rsmt::RsmtError> for DgrError {
    fn from(e: dgr_rsmt::RsmtError) -> Self {
        DgrError::Rsmt(e)
    }
}

impl From<dgr_dag::DagError> for DgrError {
    fn from(e: dgr_dag::DagError) -> Self {
        DgrError::Dag(e)
    }
}

impl From<dgr_grid::GridError> for DgrError {
    fn from(e: dgr_grid::GridError) -> Self {
        DgrError::Grid(e)
    }
}

/// Spatial-congestion snapshot capture attached to a routing run.
#[derive(Debug)]
pub struct SnapshotConfig {
    /// Destination snapshot stream (owned; flushed when the run
    /// completes or the hooks drop).
    pub sink: SnapshotSink,
    /// Training-loop capture stride in iterations; `0` captures only the
    /// extracted solution.
    pub every: usize,
}

/// Observability hooks threaded through [`DgrRouter::route_with_hooks`].
///
/// The default hooks are inert — [`DgrRouter::route`] uses them — so the
/// instrumented pipeline costs nothing at uninstrumented call sites.
#[derive(Debug, Default)]
pub struct RouteHooks {
    /// Per-iteration JSONL telemetry destination (owned; flushed when the
    /// run completes or the hooks drop).
    pub telemetry: Option<TelemetrySink>,
    /// Per-g-cell congestion snapshot stream: periodic captures of the
    /// relaxed expected demand during training, plus one capture of every
    /// extracted solution (phase `"extract"`).
    pub snap: Option<SnapshotConfig>,
    /// Throttled stderr progress line during training.
    pub progress: Option<ProgressConfig>,
    /// Skip RSS sampling in telemetry rows (determinism tests set this).
    pub skip_rss: bool,
    /// Cooperative cancellation flag. When another thread sets it, the
    /// training loop stops between iterations and
    /// [`DgrRouter::route_with_hooks`] returns [`DgrError::Cancelled`]
    /// instead of extracting a solution. `None` (the default) never
    /// cancels.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl RouteHooks {
    /// Whether the attached cancel flag (if any) has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }
}

/// The end-to-end differentiable global router.
///
/// Owns a [`DgrConfig`] and runs the full pipeline in [`DgrRouter::route`].
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct DgrRouter {
    config: DgrConfig,
}

impl DgrRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: DgrConfig) -> Self {
        DgrRouter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DgrConfig {
        &self.config
    }

    /// Routes `design`: candidates → forest → training → extraction,
    /// plus optional adaptive forest-expansion rounds
    /// ([`DgrConfig::adaptive_rounds`]).
    ///
    /// # Errors
    ///
    /// Returns a [`DgrError`] if tree construction, forest construction,
    /// or solution realization fails, or if the configuration is invalid.
    pub fn route(&self, design: &Design) -> Result<RoutingSolution, DgrError> {
        self.route_with_hooks(design, &mut RouteHooks::default())
    }

    /// [`DgrRouter::route`] with observability hooks: pipeline-phase spans
    /// (`candidates` / `forest` / `relax` / `extract` under the `route`
    /// category), per-iteration telemetry, and a progress line.
    ///
    /// Iteration numbering in telemetry rows and the retained
    /// [`TrainReport::curve`] is monotone across adaptive rounds.
    ///
    /// # Errors
    ///
    /// Same as [`DgrRouter::route`].
    pub fn route_with_hooks(
        &self,
        design: &Design,
        hooks: &mut RouteHooks,
    ) -> Result<RoutingSolution, DgrError> {
        let _route_span = dgr_obs::span("route", "route");
        self.config.validate()?;
        if hooks.is_cancelled() {
            return Err(DgrError::Cancelled);
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        if let Some(s) = hooks.snap.as_mut() {
            snapshot::ensure_header(&mut s.sink, design);
        }

        // 1. per-net tree candidate pools — invariant config hoisted out
        // of the loop, per-net seeds derived by index (deterministic under
        // any parallel schedule), Steiner templates shared via the
        // canonical cache, fan-out over the worker pool.
        let pools = {
            let _s = dgr_obs::span("route", "candidates");
            dgr_obs::status_phase("candidates");
            let mut base_cfg = self.config.candidates.clone();
            base_cfg.clamp = Some(design.grid.bounds());
            let cache = self.config.use_rsmt_cache.then(dgr_rsmt::RsmtCache::new);
            let nets = &design.nets;
            let results = dgr_autodiff::parallel::par_indexed(nets.len(), NET_PAR_MIN, |i| {
                let cfg_i = dgr_rsmt::CandidateConfig {
                    seed: per_net_seed(base_cfg.seed, i),
                    ..base_cfg.clone()
                };
                match &cache {
                    Some(c) => dgr_rsmt::tree_candidates_cached(&nets[i].pins, &cfg_i, c),
                    None => dgr_rsmt::tree_candidates(&nets[i].pins, &cfg_i),
                }
            });
            let mut pools = Vec::with_capacity(results.len());
            for r in results {
                pools.push(r?);
            }
            pools
        };

        let mut extras: std::collections::HashMap<usize, Vec<dgr_dag::PatternPath>> =
            Default::default();
        let mut warm_start: Option<expand::WarmStart> = None;
        let mut total_duration = std::time::Duration::ZERO;
        let mut iter_offset = 0usize;
        let mut curve_acc: Vec<train::CurvePoint> = Vec::new();

        for round in 0..=self.config.adaptive_rounds {
            if hooks.is_cancelled() {
                return Err(DgrError::Cancelled);
            }
            // 2. DAG forest (with any adaptive extras)
            let forest = {
                let _s = dgr_obs::span("route", "forest");
                dgr_obs::status_phase("forest");
                dgr_dag::build_forest_with_extras(
                    &design.grid,
                    &pools,
                    self.config.patterns,
                    &extras,
                )?
            };

            // 3. continuous relaxation + training (warm-started after the
            // first round)
            let mut model = {
                let _s = dgr_obs::span("route", "relax");
                dgr_obs::status_phase("relax");
                build_cost_model(design, &forest, &self.config, &mut rng)
            };
            if let Some(warm) = &warm_start {
                warm.apply(&forest, &mut model);
            }
            let mut round_cfg = self.config.clone();
            if round > 0 {
                round_cfg.iterations = self.config.adaptive_iterations.max(1);
            }
            let mut train_hooks = TrainHooks {
                telemetry: hooks.telemetry.as_mut(),
                snap: hooks.snap.as_mut().map(|s| train::SnapshotProbe {
                    sink: &mut s.sink,
                    design,
                    every: s.every,
                }),
                progress: hooks.progress,
                iter_offset,
                skip_rss: hooks.skip_rss,
                cancel: hooks.cancel.clone(),
            };
            let report = train_with_hooks(&mut model, &round_cfg, &mut rng, &mut train_hooks);
            // a cancel raised mid-training stops the job here: no
            // extraction, no partial solution escapes
            if hooks.is_cancelled() {
                return Err(DgrError::Cancelled);
            }
            total_duration += report.duration;
            iter_offset += round_cfg.iterations;
            curve_acc.extend(report.curve.iter().copied());

            // 4. discrete extraction
            dgr_obs::status_phase("extract");
            let solution = extract_solution(design, &forest, &mut model, &round_cfg)?;

            let done = round == self.config.adaptive_rounds
                || solution.metrics.overflow.overflowed_edges == 0;
            let mut finish = |mut report: TrainReport, mut solution: RoutingSolution| {
                report.duration = total_duration;
                report.curve = std::mem::take(&mut curve_acc);
                solution.train_report = Some(report);
                if let Some(sink) = hooks.telemetry.as_mut() {
                    sink.flush();
                }
                if let Some(s) = hooks.snap.as_mut() {
                    snapshot::write_solution_snapshot(
                        &mut s.sink,
                        design,
                        &solution,
                        iter_offset as u64,
                        "extract",
                    );
                    s.sink.flush();
                }
                solution
            };
            if done {
                return Ok(finish(report, solution));
            }

            // 5. adaptive expansion: congested sub-nets get maze-derived
            // candidates; logits carry over
            let grew = expand::grow_extras(design, &forest, &solution, &mut extras);
            warm_start = Some(expand::WarmStart::capture(&forest, &model));
            if !grew {
                return Ok(finish(report, solution));
            }
        }
        unreachable!("loop returns on its final round");
    }
}

/// Below this many nets, per-net stages (candidate generation, extraction
/// planning) stay on the calling thread.
pub(crate) const NET_PAR_MIN: usize = 64;

/// A distinct, well-mixed RNG seed for net `i` derived from the base
/// candidate seed (splitmix64 finalizer). Depending only on `(base, i)`
/// — never on generation order — keeps parallel candidate generation
/// deterministic at any thread count.
fn per_net_seed(base: u64, i: usize) -> u64 {
    let mut z = base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

mod expand {
    //! Adaptive forest expansion (Section 3.1's future-work direction):
    //! grow the DAG forest where the last round's solution overflowed.

    use dgr_dag::{DagForest, PatternPath};
    use dgr_grid::maze::{maze_route, MazeConfig};
    use dgr_grid::{Design, Rect};

    use crate::relax::CostModel;
    use crate::solution::RoutingSolution;

    /// Trained logits keyed by stable identities (tree order is unchanged
    /// across rounds; paths are matched per subnet by position, extras
    /// appended at the end start from the subnet's best logit).
    pub(crate) struct WarmStart {
        tree_logits: Vec<f32>,
        /// per subnet: the trained path logits, in construction order
        path_logits: Vec<Vec<f32>>,
    }

    impl WarmStart {
        pub(crate) fn capture(forest: &DagForest, model: &CostModel) -> Self {
            let w_tree = model.graph.value(model.w_tree).to_vec();
            let w_path = model.graph.value(model.w_path);
            let path_logits = (0..forest.num_subnets())
                .map(|s| forest.paths_of_subnet(s).map(|i| w_path[i]).collect())
                .collect();
            WarmStart {
                tree_logits: w_tree,
                path_logits,
            }
        }

        pub(crate) fn apply(&self, forest: &DagForest, model: &mut CostModel) {
            model.graph.set_data(model.w_tree, &self.tree_logits);
            let mut w_path = vec![0.0f32; forest.num_paths()];
            for s in 0..forest.num_subnets() {
                let old = &self.path_logits[s];
                let best = old.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                for (k, i) in forest.paths_of_subnet(s).enumerate() {
                    // original candidates keep their logits; appended
                    // extras start competitive with the incumbent
                    w_path[i] = old.get(k).copied().unwrap_or(best);
                }
            }
            model.graph.set_data(model.w_path, &w_path);
        }
    }

    /// Adds a congestion-avoiding maze candidate for every sub-net whose
    /// realized path crosses an overflowed edge. Returns whether anything
    /// new was added.
    pub(crate) fn grow_extras(
        design: &Design,
        forest: &DagForest,
        solution: &RoutingSolution,
        extras: &mut std::collections::HashMap<usize, Vec<PatternPath>>,
    ) -> bool {
        let grid = &design.grid;
        let cap = &design.capacity;
        let demand = &solution.demand;
        let over = crate::extract::overflowed_edges(design, demand);
        let mut grew = false;
        let mut edges = Vec::new();
        for route in &solution.routes {
            for (s, path) in forest.subnets_of_tree(route.tree).zip(&route.paths) {
                let crosses = path.corners.windows(2).any(|w| {
                    edges.clear();
                    grid.push_segment_edges(w[0], w[1], &mut edges)
                        .map(|()| edges.iter().any(|e| over[e.index()]))
                        .unwrap_or(false)
                });
                if !crosses {
                    continue;
                }
                let (a, b) = forest.subnet_endpoints(s);
                if a == b {
                    continue;
                }
                let cfg = MazeConfig {
                    bounds: Some(Rect::bounding(&[a, b]).inflate_clamped(8, grid.bounds())),
                    turn_cost: 1.0,
                };
                let Some(corners) = maze_route(
                    grid,
                    a,
                    b,
                    |e| {
                        let d = demand.total(grid, cap, e);
                        let c = cap.capacity(e);
                        1.0 + 1000.0 * ((d + 1.0 - c).max(0.0) - (d - c).max(0.0))
                    },
                    &cfg,
                ) else {
                    continue;
                };
                let candidate = PatternPath::new(corners);
                let slot = extras.entry(s).or_default();
                if !slot.contains(&candidate) {
                    slot.push(candidate);
                    grew = true;
                }
            }
        }
        grew
    }
}
