//! Continuous relaxation: the expected-cost computation graph (Eqs. 9–12).
//!
//! The discrete selections `x_i` (paths) and `y_j` (trees) become
//! probabilities `p` and `q` produced by per-group Gumbel-softmax over
//! trainable logits `w`. The expected costs are then:
//!
//! ```text
//! qp_i        = q_tree(i) · p_i                      (joint selection mass)
//! WL_cost     = Σ_i qp_i · WL_i                      (Eq. 11)
//! via_cost    = √L · Σ_i qp_i · TP_i                 (Eq. 12)
//! d_e         = Σ_{i∋e} qp_i + ½(β_u·vp_u + β_v·vp_v)  (Eq. 10)
//! overflow    = Σ_e f(d_e − cap_e)                   (Eq. 9)
//! loss        = a₃·overflow + a₂·via + a₁·WL          (Eq. 3)
//! ```
//!
//! where `vp` is the per-cell via pressure scattered from path turning
//! points, and the `½β` endpoint split matches
//! [`dgr_grid::DemandMap::total`] exactly — the continuous cost is the
//! expectation of the discrete metric.
//!
//! The paper applies `f` to the *resource* `cap − d` with a logistic
//! function; equivalently we apply the activation to `d − cap` (rising in
//! congestion), which is the orientation its ReLU/ILP experiment uses.

use std::sync::Arc;

use dgr_autodiff::{Graph, Segments, VarId};
use dgr_dag::DagForest;
use dgr_grid::Design;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::DgrConfig;

/// The assembled expected-cost graph plus handles to every tensor the
/// trainer and extractor need.
#[derive(Debug)]
pub struct CostModel {
    /// The op tape.
    pub graph: Graph,
    /// Trainable tree logits (one per tree candidate).
    pub w_tree: VarId,
    /// Trainable path logits (one per path candidate).
    pub w_path: VarId,
    /// Gumbel-noise leaf for tree logits.
    pub noise_tree: VarId,
    /// Gumbel-noise leaf for path logits.
    pub noise_path: VarId,
    /// Temperature scalar leaf.
    pub temperature: VarId,
    /// Tree probabilities `q` (softmax per net).
    pub q: VarId,
    /// Path probabilities `p` (softmax per sub-net).
    pub p: VarId,
    /// Joint mass `q_tree(i)·p_i` per path.
    pub qp: VarId,
    /// Expected per-edge demand `d_e`.
    pub demand: VarId,
    /// Expected per-cell via pressure.
    pub via_pressure: VarId,
    /// Scalar expected wirelength cost.
    pub wl_cost: VarId,
    /// Scalar expected via cost (already scaled by √L).
    pub via_cost: VarId,
    /// Scalar expected overflow cost.
    pub overflow_cost: VarId,
    /// Scalar total loss.
    pub loss: VarId,
}

impl CostModel {
    /// Convenience: run a forward pass and return
    /// `(loss, overflow, wirelength, via)` scalars (instance 0 when the
    /// model is batched).
    pub fn evaluate(&mut self) -> (f32, f32, f32, f32) {
        self.graph.forward();
        (
            self.graph.value(self.loss)[0],
            self.graph.value(self.overflow_cost)[0],
            self.graph.value(self.wl_cost)[0],
            self.graph.value(self.via_cost)[0],
        )
    }

    /// Number of independent training instances the tape evaluates.
    pub fn batch(&self) -> usize {
        self.graph.batch()
    }
}

/// Builds the expected-cost graph for `forest` over `design`'s grid.
///
/// Logits are initialized `Uniform(−0.5, 0.5)` from `rng` (the paper
/// initializes `w` randomly). The graph is built once; training mutates
/// only the leaf buffers.
pub fn build_cost_model(
    design: &Design,
    forest: &DagForest,
    cfg: &DgrConfig,
    rng: &mut StdRng,
) -> CostModel {
    let mut g = Graph::new();

    // --- probabilities ----------------------------------------------------
    let w_tree = g.param(init_logits(rng, forest.num_trees()));
    let w_path = g.param(init_logits(rng, forest.num_paths()));
    let noise_tree = g.input(vec![0.0; forest.num_trees()]);
    let noise_path = g.input(vec![0.0; forest.num_paths()]);
    let temperature = g.input(vec![cfg.initial_temperature]);

    assemble_cost_graph(
        design,
        forest,
        cfg,
        g,
        w_tree,
        w_path,
        noise_tree,
        noise_path,
        temperature,
    )
}

/// Builds one tape evaluating `seeds.len()` independent training
/// instances (one per seed) in instance-major batch layout.
///
/// Each instance's logits are initialized exactly as a standalone
/// [`build_cost_model`] call with that seed would initialize them
/// (`w_tree` draws, then `w_path` draws, from that seed's RNG), and the
/// returned RNGs have advanced by exactly those draws — so feeding
/// `rngs[b]` to [`crate::train::train_batched`] reproduces the
/// single-instance training trajectory of seed `b` bit for bit.
pub fn build_cost_model_batched(
    design: &Design,
    forest: &DagForest,
    cfg: &DgrConfig,
    seeds: &[u64],
) -> (CostModel, Vec<StdRng>) {
    use rand::SeedableRng;
    assert!(!seeds.is_empty(), "batched model needs at least one seed");
    let batch = seeds.len();
    let num_trees = forest.num_trees();
    let num_paths = forest.num_paths();

    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
    let mut w_tree_data = Vec::with_capacity(num_trees * batch);
    let mut w_path_data = Vec::with_capacity(num_paths * batch);
    for rng in &mut rngs {
        // per-instance draw order matches build_cost_model: trees, paths
        w_tree_data.extend(init_logits(rng, num_trees));
        w_path_data.extend(init_logits(rng, num_paths));
    }

    let mut g = Graph::with_batch(batch);
    // stacked logits are instance-major; noise/temperature zeros and the
    // initial temperature replicate across instances
    let w_tree = g.param_stacked(num_trees, w_tree_data);
    let w_path = g.param_stacked(num_paths, w_path_data);
    let noise_tree = g.input(vec![0.0; num_trees]);
    let noise_path = g.input(vec![0.0; num_paths]);
    let temperature = g.input(vec![cfg.initial_temperature]);

    let model = assemble_cost_graph(
        design,
        forest,
        cfg,
        g,
        w_tree,
        w_path,
        noise_tree,
        noise_path,
        temperature,
    );
    (model, rngs)
}

/// `Uniform(−0.5, 0.5)` logit initialization (the paper initializes `w`
/// randomly).
fn init_logits(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect()
}

/// The shared graph-assembly tail: everything after the leaves. The op
/// tape is identical for single and batched builds — the batch axis lives
/// entirely in the arena layout.
#[allow(clippy::too_many_arguments)]
fn assemble_cost_graph(
    design: &Design,
    forest: &DagForest,
    cfg: &DgrConfig,
    mut g: Graph,
    w_tree: VarId,
    w_path: VarId,
    noise_tree: VarId,
    noise_path: VarId,
    temperature: VarId,
) -> CostModel {
    let grid = &design.grid;
    let cap = &design.capacity;
    let num_edges = grid.num_edges();
    let num_cells = grid.num_cells();
    let num_paths = forest.num_paths();

    let tree_seg = Arc::new(
        Segments::from_offsets(forest.net_tree_offsets_slice().to_vec())
            .expect("forest offsets are valid CSR"),
    );
    let path_seg = Arc::new(
        Segments::from_offsets(forest.subnet_path_offsets_slice().to_vec())
            .expect("forest offsets are valid CSR"),
    );

    let zt = g.add(w_tree, noise_tree);
    let zt = g.div_by_scalar(zt, temperature);
    let q = g.segmented_softmax(zt, tree_seg);

    let zp = g.add(w_path, noise_path);
    let zp = g.div_by_scalar(zp, temperature);
    let p = g.segmented_softmax(zp, path_seg);

    let path_tree_idx = Arc::new(forest.path_tree_slice().to_vec());
    let q_per_path = g.gather(q, path_tree_idx);
    let qp = g.mul(p, q_per_path);

    // --- wirelength and via costs -----------------------------------------
    let wl_cost = g.dot_const(qp, Arc::new(forest.path_wl_slice().to_vec()));
    let tp_raw = g.dot_const(qp, Arc::new(forest.path_turns_slice().to_vec()));
    let via_cost = g.scale(tp_raw, (design.num_layers as f32).sqrt());

    // --- demand ------------------------------------------------------------
    // wire demand: expand qp over the path→edge CSR, scatter into edges
    let (pe_offsets, pe_edges) = forest.path_edge_csr();
    let pe_path_idx = expand_csr_owner(pe_offsets, num_paths);
    let pe_vals = g.gather(qp, Arc::new(pe_path_idx));
    let wire_demand = g.scatter_add(pe_vals, Arc::new(pe_edges.to_vec()), num_edges);

    // via pressure: same trick over the path→via-cell CSR
    let (pv_offsets, pv_cells) = forest.path_via_csr();
    let pv_path_idx = expand_csr_owner(pv_offsets, num_paths);
    let pv_vals = g.gather(qp, Arc::new(pv_path_idx));
    let via_pressure = g.scatter_add(pv_vals, Arc::new(pv_cells.to_vec()), num_cells);

    // endpoint split: d_e += ½·β_u·vp_u + ½·β_v·vp_v
    let mut end_a = Vec::with_capacity(num_edges);
    let mut end_b = Vec::with_capacity(num_edges);
    let mut coeff_a = Vec::with_capacity(num_edges);
    let mut coeff_b = Vec::with_capacity(num_edges);
    for e in grid.edge_ids() {
        let (pa, pb) = grid.edge_endpoints(e);
        let ia = grid.cell_id(pa).expect("endpoint in grid");
        let ib = grid.cell_id(pb).expect("endpoint in grid");
        end_a.push(ia.0);
        end_b.push(ib.0);
        coeff_a.push(0.5 * cap.beta(ia));
        coeff_b.push(0.5 * cap.beta(ib));
    }
    let vp_a = g.gather(via_pressure, Arc::new(end_a));
    let vp_a = g.mul_const(vp_a, Arc::new(coeff_a));
    let vp_b = g.gather(via_pressure, Arc::new(end_b));
    let vp_b = g.mul_const(vp_b, Arc::new(coeff_b));
    let via_demand = g.add(vp_a, vp_b);
    let demand = g.add(wire_demand, via_demand);

    // --- overflow ----------------------------------------------------------
    let neg_cap: Vec<f32> = cap.as_slice().iter().map(|&c| -c).collect();
    let slack = g.add_const(demand, Arc::new(neg_cap));
    let slack = if cfg.overflow_scale != 1.0 {
        g.scale(slack, 1.0 / cfg.overflow_scale)
    } else {
        slack
    };
    let f = g.activate(slack, cfg.activation);
    let overflow_cost = g.sum_all(f);

    // --- total -------------------------------------------------------------
    let loss = g.combine(vec![
        (overflow_cost, cfg.weights.overflow),
        (via_cost, cfg.weights.via),
        (wl_cost, cfg.weights.wirelength),
    ]);

    // Run the loss-reachability analysis at build time so the first
    // training iteration pays no planning cost.
    g.prepare_backward(loss);

    CostModel {
        graph: g,
        w_tree,
        w_path,
        noise_tree,
        noise_path,
        temperature,
        q,
        p,
        qp,
        demand,
        via_pressure,
        wl_cost,
        via_cost,
        overflow_cost,
        loss,
    }
}

/// For a CSR with `offsets.len() - 1 == owners` groups, produces the
/// per-entry owner index (entry `k` belongs to group `g` iff
/// `offsets[g] <= k < offsets[g+1]`).
fn expand_csr_owner(offsets: &[u32], num_owners: usize) -> Vec<u32> {
    let total = *offsets.last().expect("non-empty offsets") as usize;
    let mut out = Vec::with_capacity(total);
    for owner in 0..num_owners {
        let count = (offsets[owner + 1] - offsets[owner]) as usize;
        out.extend(std::iter::repeat_n(owner as u32, count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_dag::{build_forest, PatternConfig};
    use dgr_grid::{CapacityBuilder, GcellGrid, Net, Point};
    use dgr_rsmt::{tree_candidates, CandidateConfig};
    use rand::SeedableRng;

    fn small_design() -> (Design, DagForest) {
        let grid = GcellGrid::new(8, 8).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 2.0).build(&grid).unwrap();
        let nets = vec![
            Net::new("a", vec![Point::new(0, 0), Point::new(5, 4)]),
            Net::new("b", vec![Point::new(1, 5), Point::new(6, 1)]),
        ];
        let design = Design::new(grid, cap, nets, 5).unwrap();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::default()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        (design, forest)
    }

    #[test]
    fn expand_csr_owner_basics() {
        assert_eq!(expand_csr_owner(&[0, 2, 2, 5], 3), vec![0, 0, 2, 2, 2]);
        assert_eq!(expand_csr_owner(&[0], 0), Vec::<u32>::new());
    }

    #[test]
    fn probabilities_are_normalized_per_group() {
        let (design, forest) = small_design();
        let cfg = DgrConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = build_cost_model(&design, &forest, &cfg, &mut rng);
        m.graph.forward();
        for n in 0..forest.num_nets() {
            let r = forest.trees_of_net(n);
            let sum: f32 = m.graph.value(m.q)[r].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        for s in 0..forest.num_subnets() {
            let r = forest.paths_of_subnet(s);
            let sum: f32 = m.graph.value(m.p)[r].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn expected_demand_matches_hand_computation() {
        // single 2-pin diagonal net with uniform probabilities: each L
        // carries mass 0.5, so each edge on either L sees demand 0.5.
        let grid = GcellGrid::new(6, 6).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 2.0).build(&grid).unwrap();
        let design = Design::new(
            grid,
            cap,
            vec![Net::new("n", vec![Point::new(0, 0), Point::new(3, 3)])],
            5,
        )
        .unwrap();
        let pools =
            vec![tree_candidates(&design.nets[0].pins, &CandidateConfig::single()).unwrap()];
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        let cfg = DgrConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = build_cost_model(&design, &forest, &cfg, &mut rng);
        // force equal logits → p = [0.5, 0.5]
        m.graph.set_data(m.w_path, &[0.0, 0.0]);
        m.graph.set_data(m.w_tree, &[0.0]);
        m.graph.forward();
        let demand = m.graph.value(m.demand);
        let e = design.grid.h_edge(0, 0).unwrap(); // on the lower L only
                                                   // wire 0.5 plus via pressure share: corner (3,0) carries vp 0.5 but
                                                   // is far from this edge; corner (0,3) likewise → just 0.5.
        assert!((demand[e.index()] - 0.5).abs() < 1e-5);
        // expected wirelength is the exact manhattan distance
        assert!((m.graph.value(m.wl_cost)[0] - 6.0).abs() < 1e-4);
        // one turn at mass 1.0 total, × √5
        let want_via = 5f32.sqrt();
        assert!((m.graph.value(m.via_cost)[0] - want_via).abs() < 1e-4);
    }

    #[test]
    fn overflow_scale_rescales_the_activation_input() {
        let (design, forest) = small_design();
        let mut rng = StdRng::seed_from_u64(4);
        let base_cfg = DgrConfig {
            activation: dgr_autodiff::Activation::Relu,
            ..DgrConfig::default()
        };
        let mut m1 = build_cost_model(&design, &forest, &base_cfg, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let mut scaled_cfg = base_cfg.clone();
        scaled_cfg.overflow_scale = 2.0;
        let mut m2 = build_cost_model(&design, &forest, &scaled_cfg, &mut rng);
        let (_, ov1, ..) = m1.evaluate();
        let (_, ov2, ..) = m2.evaluate();
        // ReLU is positively homogeneous: relu(x/2) = relu(x)/2
        assert!(
            (ov1 / 2.0 - ov2).abs() < 1e-3 * ov1.abs().max(1.0),
            "ov1 {ov1} ov2 {ov2}"
        );
    }

    #[test]
    fn loss_decreases_under_training_pressure() {
        let (design, forest) = small_design();
        let cfg = DgrConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = build_cost_model(&design, &forest, &cfg, &mut rng);
        let (l0, ..) = m.evaluate();
        let mut adam = dgr_autodiff::Adam::new(&m.graph, 0.2);
        for _ in 0..60 {
            m.graph.forward();
            m.graph.backward(m.loss);
            adam.step(&mut m.graph);
        }
        let (l1, ..) = m.evaluate();
        assert!(l1 <= l0, "loss went up: {l0} → {l1}");
    }

    #[test]
    fn batched_build_replicates_per_seed_initialization() {
        let (design, forest) = small_design();
        let cfg = DgrConfig::default();
        let seeds = [11u64, 23, 47];
        let (batched, rngs) = build_cost_model_batched(&design, &forest, &cfg, &seeds);
        assert_eq!(batched.batch(), 3);
        assert_eq!(rngs.len(), 3);
        for (b, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let single = build_cost_model(&design, &forest, &cfg, &mut rng);
            assert_eq!(
                batched.graph.value_at(batched.w_tree, b),
                single.graph.value(single.w_tree),
                "w_tree of instance {b} differs from standalone seed {seed}"
            );
            assert_eq!(
                batched.graph.value_at(batched.w_path, b),
                single.graph.value(single.w_path),
            );
        }
    }

    #[test]
    fn batched_forward_matches_standalone_per_instance() {
        let (design, forest) = small_design();
        let cfg = DgrConfig::default();
        let seeds = [5u64, 9];
        let (mut batched, _) = build_cost_model_batched(&design, &forest, &cfg, &seeds);
        batched.graph.forward();
        for (b, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut single = build_cost_model(&design, &forest, &cfg, &mut rng);
            single.graph.forward();
            assert_eq!(
                batched.graph.value_at(batched.loss, b),
                single.graph.value(single.loss),
            );
            assert_eq!(
                batched.graph.value_at(batched.demand, b),
                single.graph.value(single.demand),
            );
        }
    }

    #[test]
    fn empty_design_produces_trivial_model() {
        let grid = GcellGrid::new(4, 4).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        let design = Design::new(grid, cap, vec![], 3).unwrap();
        let forest = build_forest(&design.grid, &[], PatternConfig::l_only()).unwrap();
        let cfg = DgrConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = build_cost_model(&design, &forest, &cfg, &mut rng);
        let (loss, ov, wl, via) = m.evaluate();
        assert_eq!(wl, 0.0);
        assert_eq!(via, 0.0);
        // overflow of an empty design is Σ f(−cap) — a constant baseline
        assert!(loss.is_finite());
        assert!(ov >= 0.0);
    }
}
