//! Discrete read-out of the optimized probabilities (Section 4.5).
//!
//! * **Trees**: the highest-probability candidate per net — after
//!   temperature annealing these probabilities are close to one-hot.
//! * **Paths**: top-p candidate sets (rank by probability, take until the
//!   cumulative mass passes the threshold), then a greedy congestion-aware
//!   pick inside each set against the demand committed so far. With
//!   [`ExtractionMode::Argmax`] the set degenerates to the single most
//!   probable path (the Table-1 read-out).
//!
//! The greedy/rip-up phases run against [`FastDemand`], a flat-array
//! mirror of [`DemandMap`] with the per-edge endpoint cells, `½β`
//! coefficients, capacities, and per-cell incident-edge lists resolved
//! once up front: every `total(e)` in the hot loops is three loads and
//! two multiply-adds instead of an endpoint → cell-id walk, and commits
//! traverse the forest's precomputed per-path edge/via lists instead of
//! re-deriving edges from corner polylines. All expressions keep the
//! [`DemandMap`] evaluation order, so picks are bit-identical to the
//! map-backed read-out.

use dgr_autodiff::parallel::{par_indexed, par_map_mut, return_scratch, take_scratch};
use dgr_dag::DagForest;
use dgr_grid::{DemandMap, Design, EdgeId, GcellId};

use crate::config::{DgrConfig, ExtractionMode};
use crate::relax::CostModel;
use crate::solution::{NetRoute, RoutePath, RoutingSolution, SolutionMetrics};
use crate::{DgrError, NET_PAR_MIN};

/// Below this many g-cell edges the overflow raster is computed on the
/// calling thread.
const EDGE_PAR_MIN: usize = 4096;

/// A net's extraction plan — everything about its read-out that does not
/// depend on the demand committed by earlier nets, computed in parallel:
/// the argmax tree and, per subnet of that tree, the ranked candidate set
/// the serial greedy pass chooses from.
struct NetPlan {
    tree: usize,
    sets: Vec<Vec<usize>>,
}

/// Flat-array demand state for the extraction hot loops.
///
/// Geometry (`end_*`, `coeff_*`, `cap_e`, the incident-edge CSR) is
/// resolved once per extraction; `wire`/`vp` are borrowed from the
/// executor scratch pool so repeated extractions (adaptive rounds, batch
/// read-outs) reuse the same allocations.
struct FastDemand {
    /// Per-edge wire demand (mirror of [`DemandMap`]'s wire array).
    wire: Vec<f32>,
    /// Per-cell via pressure.
    vp: Vec<f32>,
    /// Endpoint cell ids of each edge.
    end_a: Vec<u32>,
    end_b: Vec<u32>,
    /// `½β` of the respective endpoint cell.
    coeff_a: Vec<f32>,
    coeff_b: Vec<f32>,
    /// Per-edge capacity.
    cap_e: Vec<f32>,
    /// Per-cell `½β` (the via-pressure share a turn adds to each
    /// incident edge).
    share: Vec<f32>,
    /// Per-cell incident-edge CSR, in [`dgr_grid::GcellGrid::incident_edges`]
    /// order so greedy cost accumulation keeps the legacy float order.
    inc_off: Vec<u32>,
    inc_edges: Vec<u32>,
}

impl FastDemand {
    fn new(design: &Design) -> Self {
        let grid = &design.grid;
        let cap = &design.capacity;
        let num_edges = grid.num_edges();
        let num_cells = grid.num_cells();
        let mut end_a = Vec::with_capacity(num_edges);
        let mut end_b = Vec::with_capacity(num_edges);
        let mut coeff_a = Vec::with_capacity(num_edges);
        let mut coeff_b = Vec::with_capacity(num_edges);
        let mut cap_e = Vec::with_capacity(num_edges);
        for e in grid.edge_ids() {
            let (pa, pb) = grid.edge_endpoints(e);
            let ia = grid.cell_id(pa).expect("endpoint in grid");
            let ib = grid.cell_id(pb).expect("endpoint in grid");
            end_a.push(ia.0);
            end_b.push(ib.0);
            coeff_a.push(0.5 * cap.beta(ia));
            coeff_b.push(0.5 * cap.beta(ib));
            cap_e.push(cap.capacity(e));
        }
        let mut share = Vec::with_capacity(num_cells);
        let mut inc_off = Vec::with_capacity(num_cells + 1);
        let mut inc_edges = Vec::new();
        inc_off.push(0u32);
        for c in 0..num_cells {
            let cell = GcellId(c as u32);
            share.push(0.5 * cap.beta(cell));
            let p = grid.cell_point(cell);
            inc_edges.extend(grid.incident_edges(p).map(|e| e.0));
            inc_off.push(inc_edges.len() as u32);
        }
        FastDemand {
            wire: take_scratch(num_edges),
            vp: take_scratch(num_cells),
            end_a,
            end_b,
            coeff_a,
            coeff_b,
            cap_e,
            share,
            inc_off,
            inc_edges,
        }
    }

    /// Eq. (2) total demand of edge `e` — bit-identical to
    /// [`DemandMap::total`] (`½β` is pre-folded; `0.5 * β * vp` parses as
    /// `(0.5·β)·vp`, so folding preserves every rounding).
    #[inline]
    fn total(&self, e: usize) -> f32 {
        self.wire[e]
            + self.coeff_a[e] * self.vp[self.end_a[e] as usize]
            + self.coeff_b[e] * self.vp[self.end_b[e] as usize]
    }

    /// Commits path `i` (unit wire demand per edge, one turn per via
    /// cell). `+1.0` on integer-valued f32 is exact, so commit order
    /// cannot perturb later reads.
    fn commit(&mut self, forest: &DagForest, i: usize) {
        for &e in forest.path_edges(i) {
            self.wire[e as usize] += 1.0;
        }
        for &v in forest.path_vias(i) {
            self.vp[v as usize] += 1.0;
        }
    }

    /// Rips up path `i`.
    fn uncommit(&mut self, forest: &DagForest, i: usize) {
        for &e in forest.path_edges(i) {
            self.wire[e as usize] -= 1.0;
        }
        for &v in forest.path_vias(i) {
            self.vp[v as usize] -= 1.0;
        }
    }

    /// The per-edge overflow mask of the committed demand — a pure
    /// per-edge read, computed in parallel, bit-identical at any thread
    /// count.
    fn overflow_mask(&self) -> Vec<bool> {
        par_indexed(self.cap_e.len(), EDGE_PAR_MIN, |e| {
            self.total(e) > self.cap_e[e] + 1e-4
        })
    }

    /// Returns the mutable buffers to the executor scratch pool.
    fn release(self) {
        return_scratch(self.wire);
        return_scratch(self.vp);
    }
}

/// Extracts a discrete 2D solution from a trained model.
///
/// Runs one noise-free forward pass at the final annealed temperature,
/// then realizes the selections net by net, committing demand as it goes
/// (so later greedy picks see earlier commitments). On a batched model
/// this reads instance 0; use [`extract_solution_instance`] for the
/// others.
///
/// # Errors
///
/// Propagates grid errors if a realized path leaves the grid (cannot
/// happen for forests built against the same grid).
pub fn extract_solution(
    design: &Design,
    forest: &DagForest,
    model: &mut CostModel,
    cfg: &DgrConfig,
) -> Result<RoutingSolution, DgrError> {
    extract_solution_instance(design, forest, model, cfg, 0)
}

/// [`extract_solution`] for batch instance `instance` of a batched model
/// (the noise-free forward pass evaluates every instance; the read-out
/// uses instance `instance`'s probabilities).
///
/// # Panics
///
/// Panics if `instance >= model.batch()`.
pub fn extract_solution_instance(
    design: &Design,
    forest: &DagForest,
    model: &mut CostModel,
    cfg: &DgrConfig,
    instance: usize,
) -> Result<RoutingSolution, DgrError> {
    let _span = dgr_obs::span("route", "extract");
    // deterministic read-out: no noise, final temperature (all instances)
    model.graph.data_mut(model.noise_tree).fill(0.0);
    model.graph.data_mut(model.noise_path).fill(0.0);
    let final_temp = cfg.temperature_at(cfg.iterations.saturating_sub(1));
    model.graph.data_mut(model.temperature).fill(final_temp);
    model.graph.forward();
    let q = model.graph.value_at(model.q, instance);
    let p = model.graph.value_at(model.p, instance);

    let grid = &design.grid;

    // Demand-independent per-path cost (wirelength + via terms of the
    // greedy objective), computed once in parallel instead of per greedy
    // evaluation. The expression matches the serial seed path bit for bit.
    let sqrt_l = (design.num_layers as f32).sqrt();
    let mut static_cost = take_scratch(forest.num_paths());
    par_map_mut(&mut static_cost, |i, v| {
        *v = cfg.weights.wirelength * forest.path_wirelength(i)
            + cfg.weights.via * sqrt_l * forest.path_turn_count(i);
    });

    // Phase 1 (parallel, pure): per-net plans — argmax tree plus ranked
    // candidate sets. Placement is by net index, so the plan vector is
    // identical at any thread count.
    let plans: Vec<NetPlan> = par_indexed(forest.num_nets(), NET_PAR_MIN, |n| {
        let tree = forest
            .trees_of_net(n)
            .max_by(|&a, &b| q[a].total_cmp(&q[b]))
            .expect("net has at least one tree");
        let sets = forest
            .subnets_of_tree(tree)
            .map(|s| match cfg.extraction {
                ExtractionMode::Argmax => vec![forest
                    .paths_of_subnet(s)
                    .max_by(|&a, &b| p[a].total_cmp(&p[b]))
                    .expect("subnet has at least one path")],
                ExtractionMode::TopP { threshold } => top_p_set(forest, s, p, threshold),
            })
            .collect();
        NetPlan { tree, sets }
    });

    // Phase 2 (serial): greedy picks against the demand committed so far —
    // inherently order-dependent, kept in net order. `picks` remembers each
    // route's forest path indices so the rip-up scans below can walk
    // `path_edges` instead of re-deriving edges from corner polylines.
    let mut fd = FastDemand::new(design);
    let mut routes = Vec::with_capacity(forest.num_nets());
    let mut picks: Vec<Vec<usize>> = Vec::with_capacity(forest.num_nets());
    for (n, plan) in plans.into_iter().enumerate() {
        let mut paths = Vec::with_capacity(plan.sets.len());
        let mut net_picks = Vec::with_capacity(plan.sets.len());
        for (s, set) in forest.subnets_of_tree(plan.tree).zip(&plan.sets) {
            let pick = if set.len() == 1 {
                set[0]
            } else {
                greedy_pick(forest, cfg, &fd, &static_cost, set)
            };
            fd.commit(forest, pick);
            paths.push(realize_path(grid, forest, s, pick));
            net_picks.push(pick);
        }
        routes.push(NetRoute {
            net: n,
            tree: plan.tree,
            paths,
        });
        picks.push(net_picks);
    }

    // rip-up/re-pick rounds: nets over congested edges re-choose their
    // paths greedily over the full candidate set of their selected tree.
    // The overflow raster and the victim scan are pure reads of the
    // committed demand — parallel; the re-pick loop commits — serial.
    for _ in 0..cfg.extraction_rounds {
        let over = fd.overflow_mask();
        let victim_mask = par_indexed(routes.len(), NET_PAR_MIN, |n| {
            picks[n]
                .iter()
                .any(|&i| forest.path_edges(i).iter().any(|&e| over[e as usize]))
        });
        let victims: Vec<usize> = (0..routes.len()).filter(|&n| victim_mask[n]).collect();
        if victims.is_empty() {
            break;
        }
        for &n in &victims {
            // rip up
            for &i in &picks[n] {
                fd.uncommit(forest, i);
            }
            // re-pick over all candidates of the selected tree
            let tree = routes[n].tree;
            let mut paths = Vec::with_capacity(routes[n].paths.len());
            let mut net_picks = Vec::with_capacity(routes[n].paths.len());
            for s in forest.subnets_of_tree(tree) {
                let set: Vec<usize> = forest.paths_of_subnet(s).collect();
                let pick = greedy_pick(forest, cfg, &fd, &static_cost, &set);
                fd.commit(forest, pick);
                paths.push(realize_path(grid, forest, s, pick));
                net_picks.push(pick);
            }
            routes[n].paths = paths;
            picks[n] = net_picks;
        }
    }
    fd.release();
    return_scratch(static_cost);

    let mut solution = RoutingSolution {
        routes,
        demand: DemandMap::new(grid),
        metrics: SolutionMetrics {
            total_wirelength: 0,
            total_turns: 0,
            overflow: Default::default(),
        },
        train_report: None,
    };
    // remeasure rebuilds the demand map from the realized polylines —
    // identical to the demand the flat arrays tracked incrementally.
    solution.remeasure(design)?;
    Ok(solution)
}

/// The top-p candidate set of subnet `s`: paths in descending probability
/// until the cumulative mass passes `threshold` (always ≥ 1 path).
fn top_p_set(forest: &DagForest, s: usize, p: &[f32], threshold: f32) -> Vec<usize> {
    let mut ranked: Vec<usize> = forest.paths_of_subnet(s).collect();
    ranked.sort_by(|&a, &b| p[b].total_cmp(&p[a]));
    let mut cum = 0.0f32;
    let mut set = Vec::new();
    for i in ranked {
        set.push(i);
        cum += p[i];
        if cum >= threshold {
            break;
        }
    }
    set
}

/// The per-edge overflow mask of a committed [`DemandMap`] (shared with
/// the adaptive-expansion pass). A pure per-edge read, computed in
/// parallel — bit-identical at any thread count.
pub(crate) fn overflowed_edges(design: &Design, demand: &DemandMap) -> Vec<bool> {
    let grid = &design.grid;
    let cap = &design.capacity;
    par_indexed(grid.num_edges(), EDGE_PAR_MIN, |i| {
        let e = EdgeId(i as u32);
        demand.total(grid, cap, e) > cap.capacity(e) + 1e-4
    })
}

/// Greedy pick inside a top-p set: minimize the marginal discrete cost
/// against the demand committed so far. `static_cost[i]` carries the
/// demand-independent wirelength + via terms.
fn greedy_pick(
    forest: &DagForest,
    cfg: &DgrConfig,
    fd: &FastDemand,
    static_cost: &[f32],
    set: &[usize],
) -> usize {
    let mut best = set[0];
    let mut best_cost = f32::INFINITY;
    for &i in set {
        let mut cost = static_cost[i];
        // marginal wire overflow along the path's edges
        for &e in forest.path_edges(i) {
            let e = e as usize;
            let d = fd.total(e);
            let c = fd.cap_e[e];
            cost += cfg.weights.overflow * ((d + 1.0 - c).max(0.0) - (d - c).max(0.0));
        }
        // marginal via-pressure overflow around the turn cells
        for &v in forest.path_vias(i) {
            let v = v as usize;
            let share = fd.share[v];
            for &e in &fd.inc_edges[fd.inc_off[v] as usize..fd.inc_off[v + 1] as usize] {
                let e = e as usize;
                let d = fd.total(e);
                let c = fd.cap_e[e];
                cost += cfg.weights.overflow * ((d + share - c).max(0.0) - (d - c).max(0.0));
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    best
}

/// Materializes path `i` of subnet `s` as a corner polyline.
fn realize_path(grid: &dgr_grid::GcellGrid, forest: &DagForest, s: usize, i: usize) -> RoutePath {
    let (a, b) = forest.subnet_endpoints(s);
    let mut corners = Vec::with_capacity(forest.path_vias(i).len() + 2);
    corners.push(a);
    for &v in forest.path_vias(i) {
        corners.push(grid.cell_point(GcellId(v)));
    }
    if b != a {
        corners.push(b);
    }
    RoutePath { corners }
}

/// Returns, for diagnostic purposes, whether a probability vector is
/// nearly one-hot within every group of `offsets` (max ≥ `threshold`).
pub fn sharpness(p: &[f32], offsets: &[u32], threshold: f32) -> f64 {
    let groups = offsets.len() - 1;
    if groups == 0 {
        return 1.0;
    }
    let mut sharp = 0usize;
    for g in 0..groups {
        let r = offsets[g] as usize..offsets[g + 1] as usize;
        if r.is_empty() {
            sharp += 1;
            continue;
        }
        let max = p[r].iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if max >= threshold {
            sharp += 1;
        }
    }
    sharp as f64 / groups as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax::build_cost_model;
    use crate::train::train;
    use dgr_dag::{build_forest, PatternConfig};
    use dgr_grid::{CapacityBuilder, GcellGrid, Net, Point};
    use dgr_rsmt::{tree_candidates, CandidateConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn routed(tracks: f32, mode: ExtractionMode, seed: u64) -> (Design, RoutingSolution) {
        let grid = GcellGrid::new(8, 8).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks)
            .build(&grid)
            .unwrap();
        let design = Design::new(
            grid,
            cap,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(6, 6)]),
                Net::new("b", vec![Point::new(0, 0), Point::new(6, 6)]),
                Net::new("c", vec![Point::new(0, 6), Point::new(6, 0)]),
            ],
            5,
        )
        .unwrap();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        let cfg = DgrConfig {
            iterations: 150,
            extraction: mode,
            seed,
            ..DgrConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
        train(&mut model, &cfg, &mut rng);
        let sol = extract_solution(&design, &forest, &mut model, &cfg).unwrap();
        (design, sol)
    }

    #[test]
    fn solution_connects_all_subnets_with_minimal_wirelength() {
        let (_, sol) = routed(4.0, ExtractionMode::Argmax, 1);
        assert_eq!(sol.routes.len(), 3);
        for route in &sol.routes {
            assert_eq!(route.paths.len(), 1);
            let p = &route.paths[0];
            assert_eq!(p.wirelength(), 12); // monotone pattern = manhattan
            assert!(p.num_turns() <= 1);
        }
        assert_eq!(sol.metrics.total_wirelength, 36);
    }

    #[test]
    fn top_p_greedy_matches_or_beats_argmax_on_overflow() {
        let (_, am) = routed(1.0, ExtractionMode::Argmax, 3);
        let (_, tp) = routed(1.0, ExtractionMode::TopP { threshold: 0.95 }, 3);
        assert!(
            tp.metrics.overflow.total_overflow <= am.metrics.overflow.total_overflow + 1e-6,
            "top-p {} vs argmax {}",
            tp.metrics.overflow.total_overflow,
            am.metrics.overflow.total_overflow
        );
    }

    #[test]
    fn demand_is_consistent_with_remeasure() {
        let (design, sol) = routed(2.0, ExtractionMode::TopP { threshold: 0.9 }, 5);
        // remeasure from scratch and compare
        let mut copy = sol.clone();
        copy.remeasure(&design).unwrap();
        assert_eq!(copy.metrics.total_wirelength, sol.metrics.total_wirelength);
        assert_eq!(copy.demand.wire_slice(), sol.demand.wire_slice());
    }

    #[test]
    fn fast_demand_total_matches_demand_map_bitwise() {
        let (design, sol) = routed(1.0, ExtractionMode::TopP { threshold: 0.95 }, 7);
        // replay the committed routes into a FastDemand via the forest-free
        // arrays and compare every edge total against DemandMap::total
        let mut fd = FastDemand::new(&design);
        fd.wire.copy_from_slice(sol.demand.wire_slice());
        fd.vp.copy_from_slice(sol.demand.via_pressure_slice());
        let grid = &design.grid;
        let cap = &design.capacity;
        for e in grid.edge_ids() {
            assert_eq!(
                fd.total(e.index()),
                sol.demand.total(grid, cap, e),
                "edge {e:?}"
            );
        }
        let mask = fd.overflow_mask();
        assert_eq!(mask, overflowed_edges(&design, &sol.demand));
        fd.release();
    }

    #[test]
    fn batched_instance_extraction_matches_standalone() {
        let grid = GcellGrid::new(8, 8).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        let design = Design::new(
            grid,
            cap,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(6, 6)]),
                Net::new("b", vec![Point::new(0, 0), Point::new(6, 6)]),
            ],
            5,
        )
        .unwrap();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        let cfg = DgrConfig {
            iterations: 60,
            ..DgrConfig::default()
        };
        let seeds = [2u64, 9];
        let (mut batched, mut rngs) =
            crate::relax::build_cost_model_batched(&design, &forest, &cfg, &seeds);
        crate::train::train_batched(&mut batched, &cfg, &mut rngs);
        for (b, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut single = build_cost_model(&design, &forest, &cfg, &mut rng);
            train(&mut single, &cfg, &mut rng);
            let solo = extract_solution(&design, &forest, &mut single, &cfg).unwrap();
            let inst = extract_solution_instance(&design, &forest, &mut batched, &cfg, b).unwrap();
            assert_eq!(inst.routes, solo.routes, "instance {b} (seed {seed})");
            assert_eq!(inst.demand.wire_slice(), solo.demand.wire_slice());
        }
    }

    #[test]
    fn sharpness_reports_one_hot_groups() {
        let p = [0.99f32, 0.01, 0.5, 0.5];
        let offsets = [0u32, 2, 4];
        let s = sharpness(&p, &offsets, 0.9);
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn top_p_set_respects_threshold() {
        let grid = GcellGrid::new(8, 8).unwrap();
        let pool = tree_candidates(
            &[Point::new(0, 0), Point::new(4, 4)],
            &CandidateConfig::single(),
        )
        .unwrap();
        let forest = build_forest(&grid, &[pool], PatternConfig::l_only()).unwrap();
        // two paths with p = [0.8, 0.2]
        let p = vec![0.8f32, 0.2];
        assert_eq!(top_p_set(&forest, 0, &p, 0.7), vec![0]);
        assert_eq!(top_p_set(&forest, 0, &p, 0.9), vec![0, 1]);
        assert_eq!(top_p_set(&forest, 0, &p, 1.0), vec![0, 1]);
    }
}
