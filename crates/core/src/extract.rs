//! Discrete read-out of the optimized probabilities (Section 4.5).
//!
//! * **Trees**: the highest-probability candidate per net — after
//!   temperature annealing these probabilities are close to one-hot.
//! * **Paths**: top-p candidate sets (rank by probability, take until the
//!   cumulative mass passes the threshold), then a greedy congestion-aware
//!   pick inside each set against the demand committed so far. With
//!   [`ExtractionMode::Argmax`] the set degenerates to the single most
//!   probable path (the Table-1 read-out).

use dgr_autodiff::parallel::{par_indexed, par_map_mut};
use dgr_dag::DagForest;
use dgr_grid::{DemandMap, Design, EdgeId, GcellId};

use crate::config::{DgrConfig, ExtractionMode};
use crate::relax::CostModel;
use crate::solution::{NetRoute, RoutePath, RoutingSolution, SolutionMetrics};
use crate::{DgrError, NET_PAR_MIN};

/// Below this many g-cell edges the overflow raster is computed on the
/// calling thread.
const EDGE_PAR_MIN: usize = 4096;

/// A net's extraction plan — everything about its read-out that does not
/// depend on the demand committed by earlier nets, computed in parallel:
/// the argmax tree and, per subnet of that tree, the ranked candidate set
/// the serial greedy pass chooses from.
struct NetPlan {
    tree: usize,
    sets: Vec<Vec<usize>>,
}

/// Extracts a discrete 2D solution from a trained model.
///
/// Runs one noise-free forward pass at the final annealed temperature,
/// then realizes the selections net by net, committing demand as it goes
/// (so later greedy picks see earlier commitments).
///
/// # Errors
///
/// Propagates grid errors if a realized path leaves the grid (cannot
/// happen for forests built against the same grid).
pub fn extract_solution(
    design: &Design,
    forest: &DagForest,
    model: &mut CostModel,
    cfg: &DgrConfig,
) -> Result<RoutingSolution, DgrError> {
    let _span = dgr_obs::span("route", "extract");
    // deterministic read-out: no noise, final temperature
    let zero_tree = vec![0.0f32; model.graph.len_of(model.noise_tree)];
    let zero_path = vec![0.0f32; model.graph.len_of(model.noise_path)];
    model.graph.set_data(model.noise_tree, &zero_tree);
    model.graph.set_data(model.noise_path, &zero_path);
    let final_temp = cfg.temperature_at(cfg.iterations.saturating_sub(1));
    model.graph.set_data(model.temperature, &[final_temp]);
    model.graph.forward();
    let q = model.graph.value(model.q).to_vec();
    let p = model.graph.value(model.p).to_vec();

    let grid = &design.grid;

    // Demand-independent per-path cost (wirelength + via terms of the
    // greedy objective), computed once in parallel instead of per greedy
    // evaluation. The expression matches the serial seed path bit for bit.
    let sqrt_l = (design.num_layers as f32).sqrt();
    let mut static_cost = vec![0.0f32; forest.num_paths()];
    par_map_mut(&mut static_cost, |i, v| {
        *v = cfg.weights.wirelength * forest.path_wirelength(i)
            + cfg.weights.via * sqrt_l * forest.path_turn_count(i);
    });

    // Phase 1 (parallel, pure): per-net plans — argmax tree plus ranked
    // candidate sets. Placement is by net index, so the plan vector is
    // identical at any thread count.
    let plans: Vec<NetPlan> = par_indexed(forest.num_nets(), NET_PAR_MIN, |n| {
        let tree = forest
            .trees_of_net(n)
            .max_by(|&a, &b| q[a].total_cmp(&q[b]))
            .expect("net has at least one tree");
        let sets = forest
            .subnets_of_tree(tree)
            .map(|s| match cfg.extraction {
                ExtractionMode::Argmax => vec![forest
                    .paths_of_subnet(s)
                    .max_by(|&a, &b| p[a].total_cmp(&p[b]))
                    .expect("subnet has at least one path")],
                ExtractionMode::TopP { threshold } => top_p_set(forest, s, &p, threshold),
            })
            .collect();
        NetPlan { tree, sets }
    });

    // Phase 2 (serial): greedy picks against the demand committed so far —
    // inherently order-dependent, kept in net order. `picks` remembers each
    // route's forest path indices so the rip-up scans below can walk
    // `path_edges` instead of re-deriving edges from corner polylines.
    let mut demand = DemandMap::new(grid);
    let mut routes = Vec::with_capacity(forest.num_nets());
    let mut picks: Vec<Vec<usize>> = Vec::with_capacity(forest.num_nets());
    for (n, plan) in plans.into_iter().enumerate() {
        let mut paths = Vec::with_capacity(plan.sets.len());
        let mut net_picks = Vec::with_capacity(plan.sets.len());
        for (s, set) in forest.subnets_of_tree(plan.tree).zip(&plan.sets) {
            let pick = if set.len() == 1 {
                set[0]
            } else {
                greedy_pick(design, forest, cfg, &demand, &static_cost, set)
            };
            let route = realize_path(grid, forest, s, pick);
            commit(grid, &mut demand, &route)?;
            paths.push(route);
            net_picks.push(pick);
        }
        routes.push(NetRoute {
            net: n,
            tree: plan.tree,
            paths,
        });
        picks.push(net_picks);
    }

    // rip-up/re-pick rounds: nets over congested edges re-choose their
    // paths greedily over the full candidate set of their selected tree.
    // The overflow raster and the victim scan are pure reads of the
    // committed demand — parallel; the re-pick loop commits — serial.
    for _ in 0..cfg.extraction_rounds {
        let over = overflowed_edges(design, &demand);
        let victim_mask = par_indexed(routes.len(), NET_PAR_MIN, |n| {
            picks[n]
                .iter()
                .any(|&i| forest.path_edges(i).iter().any(|&e| over[e as usize]))
        });
        let victims: Vec<usize> = (0..routes.len()).filter(|&n| victim_mask[n]).collect();
        if victims.is_empty() {
            break;
        }
        for &n in &victims {
            // rip up
            for path in &routes[n].paths {
                uncommit(grid, &mut demand, path)?;
            }
            // re-pick over all candidates of the selected tree
            let tree = routes[n].tree;
            let mut paths = Vec::with_capacity(routes[n].paths.len());
            let mut net_picks = Vec::with_capacity(routes[n].paths.len());
            for s in forest.subnets_of_tree(tree) {
                let set: Vec<usize> = forest.paths_of_subnet(s).collect();
                let pick = greedy_pick(design, forest, cfg, &demand, &static_cost, &set);
                let route = realize_path(grid, forest, s, pick);
                commit(grid, &mut demand, &route)?;
                paths.push(route);
                net_picks.push(pick);
            }
            routes[n].paths = paths;
            picks[n] = net_picks;
        }
    }

    let mut solution = RoutingSolution {
        routes,
        demand,
        metrics: SolutionMetrics {
            total_wirelength: 0,
            total_turns: 0,
            overflow: Default::default(),
        },
        train_report: None,
    };
    solution.remeasure(design)?;
    Ok(solution)
}

/// The top-p candidate set of subnet `s`: paths in descending probability
/// until the cumulative mass passes `threshold` (always ≥ 1 path).
fn top_p_set(forest: &DagForest, s: usize, p: &[f32], threshold: f32) -> Vec<usize> {
    let mut ranked: Vec<usize> = forest.paths_of_subnet(s).collect();
    ranked.sort_by(|&a, &b| p[b].total_cmp(&p[a]));
    let mut cum = 0.0f32;
    let mut set = Vec::new();
    for i in ranked {
        set.push(i);
        cum += p[i];
        if cum >= threshold {
            break;
        }
    }
    set
}

/// The per-edge overflow mask of the committed demand (shared with the
/// adaptive-expansion pass). A pure per-edge read, computed in parallel —
/// bit-identical at any thread count.
pub(crate) fn overflowed_edges(design: &Design, demand: &DemandMap) -> Vec<bool> {
    let grid = &design.grid;
    let cap = &design.capacity;
    par_indexed(grid.num_edges(), EDGE_PAR_MIN, |i| {
        let e = EdgeId(i as u32);
        demand.total(grid, cap, e) > cap.capacity(e) + 1e-4
    })
}

/// Greedy pick inside a top-p set: minimize the marginal discrete cost
/// against the demand committed so far. `static_cost[i]` carries the
/// demand-independent wirelength + via terms.
fn greedy_pick(
    design: &Design,
    forest: &DagForest,
    cfg: &DgrConfig,
    demand: &DemandMap,
    static_cost: &[f32],
    set: &[usize],
) -> usize {
    let grid = &design.grid;
    let cap = &design.capacity;
    let mut best = set[0];
    let mut best_cost = f32::INFINITY;
    for &i in set {
        let mut cost = static_cost[i];
        // marginal wire overflow along the path's edges
        for &e in forest.path_edges(i) {
            let e = dgr_grid::EdgeId(e);
            let d = demand.total(grid, cap, e);
            let c = cap.capacity(e);
            cost += cfg.weights.overflow * ((d + 1.0 - c).max(0.0) - (d - c).max(0.0));
        }
        // marginal via-pressure overflow around the turn cells
        for &v in forest.path_vias(i) {
            let cell = GcellId(v);
            let point = grid.cell_point(cell);
            let share = 0.5 * cap.beta(cell);
            for e in grid.incident_edges(point) {
                let d = demand.total(grid, cap, e);
                let c = cap.capacity(e);
                cost += cfg.weights.overflow * ((d + share - c).max(0.0) - (d - c).max(0.0));
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    best
}

/// Materializes path `i` of subnet `s` as a corner polyline.
fn realize_path(grid: &dgr_grid::GcellGrid, forest: &DagForest, s: usize, i: usize) -> RoutePath {
    let (a, b) = forest.subnet_endpoints(s);
    let mut corners = Vec::with_capacity(forest.path_vias(i).len() + 2);
    corners.push(a);
    for &v in forest.path_vias(i) {
        corners.push(grid.cell_point(GcellId(v)));
    }
    if b != a {
        corners.push(b);
    }
    RoutePath { corners }
}

/// Removes a realized path from the running demand map (rip-up).
fn uncommit(
    grid: &dgr_grid::GcellGrid,
    demand: &mut DemandMap,
    path: &RoutePath,
) -> Result<(), DgrError> {
    for w in path.corners.windows(2) {
        demand.remove_segment(grid, w[0], w[1])?;
    }
    let n = path.corners.len();
    if n > 2 {
        for corner in &path.corners[1..n - 1] {
            demand.remove_turn(grid, *corner)?;
        }
    }
    Ok(())
}

/// Commits a realized path into the running demand map.
fn commit(
    grid: &dgr_grid::GcellGrid,
    demand: &mut DemandMap,
    path: &RoutePath,
) -> Result<(), DgrError> {
    for w in path.corners.windows(2) {
        demand.add_segment(grid, w[0], w[1])?;
    }
    let n = path.corners.len();
    if n > 2 {
        for corner in &path.corners[1..n - 1] {
            demand.add_turn(grid, *corner)?;
        }
    }
    Ok(())
}

/// Returns, for diagnostic purposes, whether a probability vector is
/// nearly one-hot within every group of `offsets` (max ≥ `threshold`).
pub fn sharpness(p: &[f32], offsets: &[u32], threshold: f32) -> f64 {
    let groups = offsets.len() - 1;
    if groups == 0 {
        return 1.0;
    }
    let mut sharp = 0usize;
    for g in 0..groups {
        let r = offsets[g] as usize..offsets[g + 1] as usize;
        if r.is_empty() {
            sharp += 1;
            continue;
        }
        let max = p[r].iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if max >= threshold {
            sharp += 1;
        }
    }
    sharp as f64 / groups as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax::build_cost_model;
    use crate::train::train;
    use dgr_dag::{build_forest, PatternConfig};
    use dgr_grid::{CapacityBuilder, GcellGrid, Net, Point};
    use dgr_rsmt::{tree_candidates, CandidateConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn routed(tracks: f32, mode: ExtractionMode, seed: u64) -> (Design, RoutingSolution) {
        let grid = GcellGrid::new(8, 8).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks)
            .build(&grid)
            .unwrap();
        let design = Design::new(
            grid,
            cap,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(6, 6)]),
                Net::new("b", vec![Point::new(0, 0), Point::new(6, 6)]),
                Net::new("c", vec![Point::new(0, 6), Point::new(6, 0)]),
            ],
            5,
        )
        .unwrap();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        let cfg = DgrConfig {
            iterations: 150,
            extraction: mode,
            seed,
            ..DgrConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
        train(&mut model, &cfg, &mut rng);
        let sol = extract_solution(&design, &forest, &mut model, &cfg).unwrap();
        (design, sol)
    }

    #[test]
    fn solution_connects_all_subnets_with_minimal_wirelength() {
        let (_, sol) = routed(4.0, ExtractionMode::Argmax, 1);
        assert_eq!(sol.routes.len(), 3);
        for route in &sol.routes {
            assert_eq!(route.paths.len(), 1);
            let p = &route.paths[0];
            assert_eq!(p.wirelength(), 12); // monotone pattern = manhattan
            assert!(p.num_turns() <= 1);
        }
        assert_eq!(sol.metrics.total_wirelength, 36);
    }

    #[test]
    fn top_p_greedy_matches_or_beats_argmax_on_overflow() {
        let (_, am) = routed(1.0, ExtractionMode::Argmax, 3);
        let (_, tp) = routed(1.0, ExtractionMode::TopP { threshold: 0.95 }, 3);
        assert!(
            tp.metrics.overflow.total_overflow <= am.metrics.overflow.total_overflow + 1e-6,
            "top-p {} vs argmax {}",
            tp.metrics.overflow.total_overflow,
            am.metrics.overflow.total_overflow
        );
    }

    #[test]
    fn demand_is_consistent_with_remeasure() {
        let (design, sol) = routed(2.0, ExtractionMode::TopP { threshold: 0.9 }, 5);
        // remeasure from scratch and compare
        let mut copy = sol.clone();
        copy.remeasure(&design).unwrap();
        assert_eq!(copy.metrics.total_wirelength, sol.metrics.total_wirelength);
        assert_eq!(copy.demand.wire_slice(), sol.demand.wire_slice());
    }

    #[test]
    fn sharpness_reports_one_hot_groups() {
        let p = [0.99f32, 0.01, 0.5, 0.5];
        let offsets = [0u32, 2, 4];
        let s = sharpness(&p, &offsets, 0.9);
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn top_p_set_respects_threshold() {
        let grid = GcellGrid::new(8, 8).unwrap();
        let pool = tree_candidates(
            &[Point::new(0, 0), Point::new(4, 4)],
            &CandidateConfig::single(),
        )
        .unwrap();
        let forest = build_forest(&grid, &[pool], PatternConfig::l_only()).unwrap();
        // two paths with p = [0.8, 0.2]
        let p = vec![0.8f32, 0.2];
        assert_eq!(top_p_set(&forest, 0, &p, 0.7), vec![0]);
        assert_eq!(top_p_set(&forest, 0, &p, 0.9), vec![0, 1]);
        assert_eq!(top_p_set(&forest, 0, &p, 1.0), vec![0, 1]);
    }
}
