//! The training loop: Adam over the expected cost with temperature
//! annealing and per-iteration Gumbel noise resampling.
//!
//! The loop is instrumented through `dgr-obs` (see [`TrainHooks`]):
//! per-iteration `forward`/`backward`/`adam` spans when the global
//! observability switch is on, per-iteration JSONL telemetry rows when a
//! [`TelemetrySink`] is attached, and a throttled stderr progress line
//! when a [`ProgressConfig`] is attached. With no hooks and observability
//! off, the loop is byte-for-byte the uninstrumented hot path plus one
//! relaxed atomic load per iteration phase.

use std::time::{Duration, Instant};

use dgr_autodiff::{gumbel, Adam};
use dgr_grid::Design;
use dgr_obs::{IterationRow, SnapshotSink, TelemetrySink};
use rand::rngs::StdRng;

use crate::config::DgrConfig;
use crate::memory::rss_bytes;
use crate::relax::CostModel;

/// Maximum number of [`CurvePoint`]s retained in a [`TrainReport`].
pub const CURVE_POINTS: usize = 256;

/// How often the training loop re-reads the process RSS for telemetry
/// (`/proc` reads are microseconds — cheap, but not per-iteration cheap).
const RSS_SAMPLE_INTERVAL: usize = 16;

/// One retained sample of the training trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Iteration index (offset by [`TrainHooks::iter_offset`]).
    pub iter: usize,
    /// Total weighted loss at this iteration.
    pub loss: f32,
    /// Unweighted expected-overflow term at this iteration.
    pub overflow: f32,
}

/// What happened during training — loss trajectory, timings, memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Iterations executed.
    pub iterations: usize,
    /// `(iteration, loss)` samples at `loss_record_interval`.
    pub loss_history: Vec<(usize, f32)>,
    /// Downsampled loss/overflow trajectory (≤ [`CURVE_POINTS`] samples,
    /// final iteration always included) retained so comparison tooling
    /// (`dgr compare`, fig5/fig6) does not re-derive it ad hoc.
    pub curve: Vec<CurvePoint>,
    /// Loss of the final iteration.
    pub final_loss: f32,
    /// Final annealed temperature.
    pub final_temperature: f32,
    /// Wall-clock training time.
    pub duration: Duration,
    /// Time spent in forward sweeps across all iterations.
    pub forward_time: Duration,
    /// Time spent in backward sweeps across all iterations.
    pub backward_time: Duration,
    /// Bytes held by the op tape (values + gradients) — the "GPU memory"
    /// analogue reported in the Fig. 5b reproduction.
    pub graph_bytes: usize,
}

/// Throttled stderr progress reporting for long `dgr route` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressConfig {
    /// Print every `every` iterations (the final iteration always
    /// prints).
    pub every: usize,
    /// Minimum wall-clock gap between lines, so tiny fast runs do not
    /// flood stderr.
    pub min_gap: Duration,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig {
            every: 100,
            min_gap: Duration::from_millis(200),
        }
    }
}

/// Periodic spatial-congestion capture during training: every `every`
/// iterations (plus the final one) the dense Eq. 10 expected demand is
/// frozen into a [`SnapshotRecord`](dgr_obs::SnapshotRecord) on `sink`.
#[derive(Debug)]
pub struct SnapshotProbe<'a> {
    /// Destination snapshot stream.
    pub sink: &'a mut SnapshotSink,
    /// Grid and capacities the demand is measured against.
    pub design: &'a Design,
    /// Capture stride in iterations; `0` disables captures.
    pub every: usize,
}

/// Optional instrumentation threaded through [`train_with_hooks`].
///
/// The default hooks are inert: [`train`] forwards to them, so the
/// uninstrumented call sites behave exactly as before.
#[derive(Debug, Default)]
pub struct TrainHooks<'a> {
    /// Per-iteration JSONL telemetry destination.
    pub telemetry: Option<&'a mut TelemetrySink>,
    /// Periodic spatial congestion snapshots.
    pub snap: Option<SnapshotProbe<'a>>,
    /// Throttled stderr progress line.
    pub progress: Option<ProgressConfig>,
    /// Added to every reported iteration index, so adaptive rounds
    /// continue numbering instead of restarting at zero.
    pub iter_offset: usize,
    /// Skip RSS sampling in telemetry rows (`mem_rss` stays `null`). RSS
    /// is inherently nondeterministic; the determinism tests disable it.
    pub skip_rss: bool,
    /// Cooperative cancellation flag, checked once per iteration (one
    /// relaxed load). When raised, the loop stops before the next
    /// forward pass; the report covers the iterations that ran.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl TrainHooks<'_> {
    fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }
}

/// Trains `model` in place per `cfg` and returns the report.
///
/// Every iteration: update the temperature leaf from the annealing
/// schedule, resample Gumbel noise (if enabled), forward, backward, Adam
/// step. The graph is never rebuilt.
pub fn train(model: &mut CostModel, cfg: &DgrConfig, rng: &mut StdRng) -> TrainReport {
    train_with_hooks(model, cfg, rng, &mut TrainHooks::default())
}

/// [`train`] with observability hooks: telemetry rows, progress lines,
/// and per-iteration phase spans (`forward` / `backward` / `adam` under
/// the `train` category) recorded when `dgr_obs::enabled()`.
pub fn train_with_hooks(
    model: &mut CostModel,
    cfg: &DgrConfig,
    rng: &mut StdRng,
    hooks: &mut TrainHooks<'_>,
) -> TrainReport {
    let _train_span = dgr_obs::span("train", "train");
    dgr_obs::status_phase("train");
    let start = Instant::now();
    let mut adam = Adam::new(&model.graph, cfg.learning_rate);
    let mut loss_history = Vec::new();
    let mut curve = Vec::new();
    let mut final_loss = f32::NAN;
    let mut forward_time = Duration::ZERO;
    let mut backward_time = Duration::ZERO;
    let mut noise_buf_tree = vec![0.0f32; model.graph.len_of(model.noise_tree)];
    let mut noise_buf_path = vec![0.0f32; model.graph.len_of(model.noise_path)];
    let curve_stride = cfg.iterations.div_ceil(CURVE_POINTS).max(1);
    let mut last_progress: Option<Instant> = None;
    let mut rss_cache: Option<u64> = None;

    for it in 0..cfg.iterations {
        if hooks.is_cancelled() {
            break;
        }
        let temp = cfg.temperature_at(it);
        model.graph.set_data(model.temperature, &[temp]);
        if cfg.gumbel_noise {
            gumbel::fill_gumbel(rng, &mut noise_buf_tree);
            gumbel::fill_gumbel(rng, &mut noise_buf_path);
            model.graph.set_data(model.noise_tree, &noise_buf_tree);
            model.graph.set_data(model.noise_path, &noise_buf_path);
        }
        let fwd_start = Instant::now();
        {
            let _s = dgr_obs::span("train", "forward");
            model.graph.forward();
        }
        forward_time += fwd_start.elapsed();
        let loss = model.graph.value(model.loss)[0];
        final_loss = loss;
        if cfg.loss_record_interval > 0 && it % cfg.loss_record_interval == 0 {
            loss_history.push((it, loss));
        }
        let last_iter = it + 1 == cfg.iterations;
        if it % curve_stride == 0 || last_iter {
            curve.push(CurvePoint {
                iter: hooks.iter_offset + it,
                loss,
                overflow: model.graph.value(model.overflow_cost)[0],
            });
        }
        let bwd_start = Instant::now();
        {
            let _s = dgr_obs::span("train", "backward");
            model.graph.backward(model.loss);
        }
        backward_time += bwd_start.elapsed();
        if let Some(probe) = hooks.snap.as_mut() {
            if probe.every > 0 && (it % probe.every == 0 || last_iter) {
                crate::snapshot::write_dense_snapshot(
                    probe.sink,
                    probe.design,
                    model.graph.value(model.demand),
                    (hooks.iter_offset + it) as u64,
                    "train",
                );
            }
        }
        // a row is materialized when a sink wants it OR the global obs
        // switch is on (the live /status endpoint feeds off status_tick)
        if hooks.telemetry.is_some() || dgr_obs::enabled() {
            if !hooks.skip_rss && (it % RSS_SAMPLE_INTERVAL == 0 || last_iter) {
                rss_cache = rss_bytes();
            }
            let grad_sq: f32 = model
                .graph
                .grad(model.w_tree)
                .iter()
                .chain(model.graph.grad(model.w_path))
                .map(|g| g * g)
                .sum();
            let row = IterationRow {
                iter: hooks.iter_offset + it,
                loss,
                wl: model.graph.value(model.wl_cost)[0],
                vias: model.graph.value(model.via_cost)[0],
                overflow: model.graph.value(model.overflow_cost)[0],
                temperature: temp,
                grad_norm: grad_sq.sqrt(),
                mem_rss: rss_cache,
                lane: None,
            };
            if let Some(sink) = hooks.telemetry.as_deref_mut() {
                sink.record(&row);
            }
            dgr_obs::status_tick(&row);
            dgr_obs::sentinel_tick(&row);
        }
        {
            let _s = dgr_obs::span("train", "adam");
            adam.step(&mut model.graph);
        }
        if let Some(progress) = hooks.progress {
            let due = progress.every > 0 && (it % progress.every == 0 || last_iter);
            let spaced = last_progress.is_none_or(|t| t.elapsed() >= progress.min_gap);
            if due && (spaced || last_iter) {
                last_progress = Some(Instant::now());
                eprintln!(
                    "[dgr] iter {:>6}/{}  loss {:>12.4}  overflow {:>10.4}  elapsed {:.1}s",
                    hooks.iter_offset + it,
                    hooks.iter_offset + cfg.iterations,
                    loss,
                    model.graph.value(model.overflow_cost)[0],
                    start.elapsed().as_secs_f64(),
                );
            }
        }
    }

    if let Some(sink) = hooks.telemetry.as_deref_mut() {
        sink.flush();
    }
    if let Some(probe) = hooks.snap.as_mut() {
        probe.sink.flush();
    }

    TrainReport {
        iterations: cfg.iterations,
        loss_history,
        curve,
        final_loss,
        final_temperature: cfg.temperature_at(cfg.iterations.saturating_sub(1)),
        duration: start.elapsed(),
        forward_time,
        backward_time,
        graph_bytes: model.graph.bytes(),
    }
}

/// Trains a batched model (see
/// [`build_cost_model_batched`](crate::relax::build_cost_model_batched))
/// and returns one report per instance.
///
/// One forward/backward/Adam sweep advances every instance together —
/// the tape walk, reachability plan, and dispatch overhead are paid once
/// per iteration instead of once per seed. Instance `b` resamples its
/// Gumbel noise from `rngs[b]` in the single-instance draw order (tree
/// noise, then path noise), and the annealing temperature is shared, so
/// instance `b`'s trajectory is bit-for-bit the trajectory
/// [`train`] would produce for that seed.
///
/// Reported wall-clock numbers (`duration`, `forward_time`,
/// `backward_time`, `graph_bytes`) are whole-batch figures, replicated
/// into every report: phases are fused across instances and cannot be
/// attributed per seed.
///
/// # Panics
///
/// Panics if `rngs.len()` differs from the model's batch size.
pub fn train_batched(
    model: &mut CostModel,
    cfg: &DgrConfig,
    rngs: &mut [StdRng],
) -> Vec<TrainReport> {
    train_batched_with_hooks(model, cfg, rngs, &mut TrainHooks::default())
}

/// [`train_batched`] with observability hooks. Telemetry rows and dense
/// snapshots are written once per lane per capture point, tagged with
/// the lane index (`lane` field), so batched runs remain attributable;
/// progress lines and live status track lane 0.
///
/// # Panics
///
/// Panics if `rngs.len()` differs from the model's batch size.
pub fn train_batched_with_hooks(
    model: &mut CostModel,
    cfg: &DgrConfig,
    rngs: &mut [StdRng],
    hooks: &mut TrainHooks<'_>,
) -> Vec<TrainReport> {
    let _train_span = dgr_obs::span("train", "train_batched");
    dgr_obs::status_phase("train");
    let batch = model.graph.batch();
    assert_eq!(rngs.len(), batch, "one RNG per batch instance");
    let start = Instant::now();
    let mut adam = Adam::new(&model.graph, cfg.learning_rate);
    let n_tree = model.graph.logical_len_of(model.noise_tree);
    let n_path = model.graph.logical_len_of(model.noise_path);
    let mut noise_buf_tree = vec![0.0f32; n_tree * batch];
    let mut noise_buf_path = vec![0.0f32; n_path * batch];
    let mut loss_history = vec![Vec::new(); batch];
    let mut curve = vec![Vec::new(); batch];
    let mut final_loss = vec![f32::NAN; batch];
    let mut forward_time = Duration::ZERO;
    let mut backward_time = Duration::ZERO;
    let curve_stride = cfg.iterations.div_ceil(CURVE_POINTS).max(1);
    let n_w_tree = model.graph.logical_len_of(model.w_tree);
    let n_w_path = model.graph.logical_len_of(model.w_path);
    let mut last_progress: Option<Instant> = None;
    let mut rss_cache: Option<u64> = None;

    for it in 0..cfg.iterations {
        if hooks.is_cancelled() {
            break;
        }
        let temp = cfg.temperature_at(it);
        model.graph.data_mut(model.temperature).fill(temp);
        if cfg.gumbel_noise {
            // instance-major refill, preserving each seed's single-run
            // draw order: tree noise then path noise from its own RNG
            for (b, rng) in rngs.iter_mut().enumerate() {
                gumbel::fill_gumbel(rng, &mut noise_buf_tree[b * n_tree..(b + 1) * n_tree]);
                gumbel::fill_gumbel(rng, &mut noise_buf_path[b * n_path..(b + 1) * n_path]);
            }
            model.graph.set_data(model.noise_tree, &noise_buf_tree);
            model.graph.set_data(model.noise_path, &noise_buf_path);
        }
        let fwd_start = Instant::now();
        {
            let _s = dgr_obs::span("train", "forward");
            model.graph.forward();
        }
        forward_time += fwd_start.elapsed();
        let last_iter = it + 1 == cfg.iterations;
        let record_loss = cfg.loss_record_interval > 0 && it % cfg.loss_record_interval == 0;
        let record_curve = it % curve_stride == 0 || last_iter;
        for b in 0..batch {
            let loss = model.graph.value(model.loss)[b];
            final_loss[b] = loss;
            if record_loss {
                loss_history[b].push((it, loss));
            }
            if record_curve {
                curve[b].push(CurvePoint {
                    iter: it,
                    loss,
                    overflow: model.graph.value(model.overflow_cost)[b],
                });
            }
        }
        let bwd_start = Instant::now();
        {
            let _s = dgr_obs::span("train", "backward");
            model.graph.backward(model.loss);
        }
        backward_time += bwd_start.elapsed();
        if let Some(probe) = hooks.snap.as_mut() {
            if probe.every > 0 && (it % probe.every == 0 || last_iter) {
                let demand = model.graph.value(model.demand);
                let per_lane = demand.len() / batch;
                for b in 0..batch {
                    crate::snapshot::write_dense_snapshot_lane(
                        probe.sink,
                        probe.design,
                        &demand[b * per_lane..(b + 1) * per_lane],
                        (hooks.iter_offset + it) as u64,
                        "train",
                        Some(b as u64),
                    );
                }
            }
        }
        if hooks.telemetry.is_some() || dgr_obs::enabled() {
            if !hooks.skip_rss && (it % RSS_SAMPLE_INTERVAL == 0 || last_iter) {
                rss_cache = rss_bytes();
            }
            let grad_tree = model.graph.grad(model.w_tree);
            let grad_path = model.graph.grad(model.w_path);
            for b in 0..batch {
                let grad_sq: f32 = grad_tree[b * n_w_tree..(b + 1) * n_w_tree]
                    .iter()
                    .chain(&grad_path[b * n_w_path..(b + 1) * n_w_path])
                    .map(|g| g * g)
                    .sum();
                let row = IterationRow {
                    iter: hooks.iter_offset + it,
                    loss: model.graph.value(model.loss)[b],
                    wl: model.graph.value(model.wl_cost)[b],
                    vias: model.graph.value(model.via_cost)[b],
                    overflow: model.graph.value(model.overflow_cost)[b],
                    temperature: temp,
                    grad_norm: grad_sq.sqrt(),
                    mem_rss: rss_cache,
                    lane: Some(b as u64),
                };
                if let Some(sink) = hooks.telemetry.as_deref_mut() {
                    sink.record(&row);
                }
                dgr_obs::status_tick(&row);
                dgr_obs::sentinel_tick(&row);
            }
        }
        {
            let _s = dgr_obs::span("train", "adam");
            adam.step(&mut model.graph);
        }
        if let Some(progress) = hooks.progress {
            let due = progress.every > 0 && (it % progress.every == 0 || last_iter);
            let spaced = last_progress.is_none_or(|t| t.elapsed() >= progress.min_gap);
            if due && (spaced || last_iter) {
                last_progress = Some(Instant::now());
                eprintln!(
                    "[dgr] iter {:>6}/{}  loss {:>12.4}  overflow {:>10.4}  elapsed {:.1}s  (lane 0 of {batch})",
                    hooks.iter_offset + it,
                    hooks.iter_offset + cfg.iterations,
                    model.graph.value(model.loss)[0],
                    model.graph.value(model.overflow_cost)[0],
                    start.elapsed().as_secs_f64(),
                );
            }
        }
    }

    if let Some(sink) = hooks.telemetry.as_deref_mut() {
        sink.flush();
    }
    if let Some(probe) = hooks.snap.as_mut() {
        probe.sink.flush();
    }

    let duration = start.elapsed();
    let final_temperature = cfg.temperature_at(cfg.iterations.saturating_sub(1));
    let graph_bytes = model.graph.bytes();
    loss_history
        .into_iter()
        .zip(curve)
        .zip(final_loss)
        .map(|((loss_history, curve), final_loss)| TrainReport {
            iterations: cfg.iterations,
            loss_history,
            curve,
            final_loss,
            final_temperature,
            duration,
            forward_time,
            backward_time,
            graph_bytes,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax::build_cost_model;
    use dgr_dag::{build_forest, PatternConfig};
    use dgr_grid::{CapacityBuilder, Design, GcellGrid, Net, Point};
    use dgr_rsmt::{tree_candidates, CandidateConfig};
    use rand::SeedableRng;

    fn contended_design() -> Design {
        // two nets forced through a 1-track corridor: training must split
        // them across the two L corridors.
        let grid = GcellGrid::new(6, 6).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        Design::new(
            grid,
            cap,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(5, 5)]),
                Net::new("b", vec![Point::new(0, 0), Point::new(5, 5)]),
            ],
            5,
        )
        .unwrap()
    }

    #[test]
    fn training_reduces_loss_and_separates_nets() {
        let design = contended_design();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        // ReLU gives a crisp separation signal on this symmetric toy; a pure
        // sigmoid is exchange-invariant around the capacity midpoint
        // (σ(1) + σ(−1) = 2σ(0)), so it cannot split two identical nets.
        let cfg = DgrConfig {
            iterations: 200,
            loss_record_interval: 50,
            activation: dgr_autodiff::Activation::Relu,
            ..DgrConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
        let report = train(&mut model, &cfg, &mut rng);

        assert_eq!(report.iterations, 200);
        assert_eq!(report.loss_history.len(), 4);
        let first = report.loss_history[0].1;
        assert!(report.final_loss < first, "{first} → {}", report.final_loss);

        // with noise off at readout, the two nets should prefer opposite Ls
        model.graph.set_data(model.noise_path, &[0.0; 4]);
        model.graph.set_data(model.noise_tree, &[0.0; 2]);
        model.graph.forward();
        let p = model.graph.value(model.p);
        let a_choice = p[0] > p[1];
        let b_choice = p[2] > p[3];
        assert_ne!(a_choice, b_choice, "nets did not separate: p = {p:?}");
    }

    #[test]
    fn report_has_finite_numbers_and_memory() {
        let design = contended_design();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        let cfg = DgrConfig {
            iterations: 5,
            ..DgrConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
        let report = train(&mut model, &cfg, &mut rng);
        assert!(report.final_loss.is_finite());
        assert!(report.graph_bytes > 0);
        assert!((report.final_temperature - 1.0).abs() < 1e-6); // < 100 iters
    }

    #[test]
    fn batched_training_reproduces_single_instance_trajectories_bitwise() {
        let design = contended_design();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        let cfg = DgrConfig {
            iterations: 40,
            loss_record_interval: 10,
            ..DgrConfig::default()
        };
        let seeds = [3u64, 3, 8];
        let (mut batched, mut rngs) =
            crate::relax::build_cost_model_batched(&design, &forest, &cfg, &seeds);
        let reports = train_batched(&mut batched, &cfg, &mut rngs);
        assert_eq!(reports.len(), 3);

        for (b, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut single = build_cost_model(&design, &forest, &cfg, &mut rng);
            let solo = train(&mut single, &cfg, &mut rng);
            // bit-for-bit: the loss trajectory, final loss, and the final
            // trained logits of instance b equal the standalone run
            assert_eq!(reports[b].final_loss, solo.final_loss, "seed {seed}");
            assert_eq!(reports[b].loss_history, solo.loss_history);
            assert_eq!(
                batched.graph.value_at(batched.w_path, b),
                single.graph.value(single.w_path),
            );
            assert_eq!(
                batched.graph.value_at(batched.w_tree, b),
                single.graph.value(single.w_tree),
            );
        }
        // identical seeds produce identical instances
        assert_eq!(reports[0].final_loss, reports[1].final_loss);
        assert_eq!(
            batched.graph.value_at(batched.w_path, 0),
            batched.graph.value_at(batched.w_path, 1),
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let design = contended_design();
        let run = |seed| {
            let pools: Vec<_> = design
                .nets
                .iter()
                .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
                .collect();
            let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
            let cfg = DgrConfig {
                iterations: 30,
                ..DgrConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
            train(&mut model, &cfg, &mut rng).final_loss
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6)); // different seeds explore differently
    }
}
