//! The training loop: Adam over the expected cost with temperature
//! annealing and per-iteration Gumbel noise resampling.

use dgr_autodiff::{gumbel, Adam};
use rand::rngs::StdRng;

use crate::config::DgrConfig;
use crate::relax::CostModel;

/// What happened during training — loss trajectory, timings, memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Iterations executed.
    pub iterations: usize,
    /// `(iteration, loss)` samples at `loss_record_interval`.
    pub loss_history: Vec<(usize, f32)>,
    /// Loss of the final iteration.
    pub final_loss: f32,
    /// Final annealed temperature.
    pub final_temperature: f32,
    /// Wall-clock training time.
    pub duration: std::time::Duration,
    /// Time spent in forward sweeps across all iterations.
    pub forward_time: std::time::Duration,
    /// Time spent in backward sweeps across all iterations.
    pub backward_time: std::time::Duration,
    /// Bytes held by the op tape (values + gradients) — the "GPU memory"
    /// analogue reported in the Fig. 5b reproduction.
    pub graph_bytes: usize,
}

/// Trains `model` in place per `cfg` and returns the report.
///
/// Every iteration: update the temperature leaf from the annealing
/// schedule, resample Gumbel noise (if enabled), forward, backward, Adam
/// step. The graph is never rebuilt.
pub fn train(model: &mut CostModel, cfg: &DgrConfig, rng: &mut StdRng) -> TrainReport {
    let start = std::time::Instant::now();
    let mut adam = Adam::new(&model.graph, cfg.learning_rate);
    let mut loss_history = Vec::new();
    let mut final_loss = f32::NAN;
    let mut forward_time = std::time::Duration::ZERO;
    let mut backward_time = std::time::Duration::ZERO;
    let mut noise_buf_tree = vec![0.0f32; model.graph.len_of(model.noise_tree)];
    let mut noise_buf_path = vec![0.0f32; model.graph.len_of(model.noise_path)];

    for it in 0..cfg.iterations {
        let temp = cfg.temperature_at(it);
        model.graph.set_data(model.temperature, &[temp]);
        if cfg.gumbel_noise {
            gumbel::fill_gumbel(rng, &mut noise_buf_tree);
            gumbel::fill_gumbel(rng, &mut noise_buf_path);
            model.graph.set_data(model.noise_tree, &noise_buf_tree);
            model.graph.set_data(model.noise_path, &noise_buf_path);
        }
        let fwd_start = std::time::Instant::now();
        model.graph.forward();
        forward_time += fwd_start.elapsed();
        let loss = model.graph.value(model.loss)[0];
        final_loss = loss;
        if cfg.loss_record_interval > 0 && it % cfg.loss_record_interval == 0 {
            loss_history.push((it, loss));
        }
        let bwd_start = std::time::Instant::now();
        model.graph.backward(model.loss);
        backward_time += bwd_start.elapsed();
        adam.step(&mut model.graph);
    }

    TrainReport {
        iterations: cfg.iterations,
        loss_history,
        final_loss,
        final_temperature: cfg.temperature_at(cfg.iterations.saturating_sub(1)),
        duration: start.elapsed(),
        forward_time,
        backward_time,
        graph_bytes: model.graph.bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax::build_cost_model;
    use dgr_dag::{build_forest, PatternConfig};
    use dgr_grid::{CapacityBuilder, Design, GcellGrid, Net, Point};
    use dgr_rsmt::{tree_candidates, CandidateConfig};
    use rand::SeedableRng;

    fn contended_design() -> Design {
        // two nets forced through a 1-track corridor: training must split
        // them across the two L corridors.
        let grid = GcellGrid::new(6, 6).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        Design::new(
            grid,
            cap,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(5, 5)]),
                Net::new("b", vec![Point::new(0, 0), Point::new(5, 5)]),
            ],
            5,
        )
        .unwrap()
    }

    #[test]
    fn training_reduces_loss_and_separates_nets() {
        let design = contended_design();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        // ReLU gives a crisp separation signal on this symmetric toy; a pure
        // sigmoid is exchange-invariant around the capacity midpoint
        // (σ(1) + σ(−1) = 2σ(0)), so it cannot split two identical nets.
        let cfg = DgrConfig {
            iterations: 200,
            loss_record_interval: 50,
            activation: dgr_autodiff::Activation::Relu,
            ..DgrConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
        let report = train(&mut model, &cfg, &mut rng);

        assert_eq!(report.iterations, 200);
        assert_eq!(report.loss_history.len(), 4);
        let first = report.loss_history[0].1;
        assert!(report.final_loss < first, "{first} → {}", report.final_loss);

        // with noise off at readout, the two nets should prefer opposite Ls
        model.graph.set_data(model.noise_path, &[0.0; 4]);
        model.graph.set_data(model.noise_tree, &[0.0; 2]);
        model.graph.forward();
        let p = model.graph.value(model.p);
        let a_choice = p[0] > p[1];
        let b_choice = p[2] > p[3];
        assert_ne!(a_choice, b_choice, "nets did not separate: p = {p:?}");
    }

    #[test]
    fn report_has_finite_numbers_and_memory() {
        let design = contended_design();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
            .collect();
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
        let cfg = DgrConfig {
            iterations: 5,
            ..DgrConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
        let report = train(&mut model, &cfg, &mut rng);
        assert!(report.final_loss.is_finite());
        assert!(report.graph_bytes > 0);
        assert!((report.final_temperature - 1.0).abs() < 1e-6); // < 100 iters
    }

    #[test]
    fn deterministic_given_seed() {
        let design = contended_design();
        let run = |seed| {
            let pools: Vec<_> = design
                .nets
                .iter()
                .map(|n| tree_candidates(&n.pins, &CandidateConfig::single()).unwrap())
                .collect();
            let forest = build_forest(&design.grid, &pools, PatternConfig::l_only()).unwrap();
            let cfg = DgrConfig {
                iterations: 30,
                ..DgrConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
            train(&mut model, &cfg, &mut rng).final_loss
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6)); // different seeds explore differently
    }
}
