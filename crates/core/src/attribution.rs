//! Per-net attribution of the overflow term — "which nets put the
//! congestion there".
//!
//! For an extracted solution, every overflowed edge's excess
//! (`max(0, demand − capacity)`) is charged in equal parts to the nets
//! *responsible* for demand on that edge: nets whose wire crosses it,
//! plus nets with a turning point at one of its endpoint g-cells (via
//! pressure reaches the edge through the ½β endpoint split of Eq. 2).
//! Summed over edges this yields each net's overflow share; together
//! with the net's own wirelength and turn counts that gives a per-net
//! ICCAD'19 weighted cost, and ranking by share produces the "top
//! offender" table of the post-mortem report.
//!
//! Excess on edges no net touches (possible when via pressure from an
//! untraversed neighbouring cell pushes an edge over) stays uncharged;
//! the record reports `charged_excess` next to `total_excess` so the
//! gap is visible rather than silently re-normalized away.

use dgr_grid::{edge_excess, Design};
use dgr_obs::{AttributionRecord, NetShare, SnapshotSink};

use crate::config::CostWeights;
use crate::solution::RoutingSolution;

/// Maximum [`NetShare`] entries written per attribution record; the
/// ranking is complete before truncation and `ranked_nets` preserves the
/// true offender count.
pub const MAX_ATTRIBUTION_NETS: usize = 64;

/// Runs the attribution pass over an extracted solution.
///
/// The returned record's `nets` are the offending nets (nonzero
/// overflow share) ranked worst first — by share, then weighted cost,
/// then net index — truncated to [`MAX_ATTRIBUTION_NETS`] entries.
pub fn attribute_solution(
    design: &Design,
    solution: &RoutingSolution,
    weights: &CostWeights,
    phase: &str,
) -> AttributionRecord {
    let grid = &design.grid;
    let excess = edge_excess(grid, &design.capacity, &solution.demand);
    let total_excess: f32 = excess.iter().sum();

    // contributing nets per overflowed edge (tiny per-edge lists; dedup
    // by linear scan)
    let mut contributors: Vec<Vec<usize>> = vec![Vec::new(); grid.num_edges()];
    let mut add = |edge: usize, net: usize| {
        if excess[edge] > 0.0 && !contributors[edge].contains(&net) {
            contributors[edge].push(net);
        }
    };
    let mut edge_buf = Vec::new();
    for route in &solution.routes {
        for path in &route.paths {
            // wire crossings
            for w in path.corners.windows(2) {
                edge_buf.clear();
                if grid.push_segment_edges(w[0], w[1], &mut edge_buf).is_ok() {
                    for e in &edge_buf {
                        add(e.index(), route.net);
                    }
                }
            }
            // via pressure: a turn at cell v loads every edge incident
            // to v through the Eq. 2 endpoint split
            let interior = path.corners.len().saturating_sub(2);
            for corner in path.corners.iter().skip(1).take(interior) {
                for e in grid.incident_edges(*corner) {
                    add(e.index(), route.net);
                }
            }
        }
    }

    let num_nets = design.num_nets();
    let mut share = vec![0.0f64; num_nets];
    let mut edges_hit = vec![0u64; num_nets];
    let mut charged_excess = 0.0f64;
    for (e, nets) in contributors.iter().enumerate() {
        if nets.is_empty() || excess[e] <= 0.0 {
            continue;
        }
        charged_excess += excess[e] as f64;
        let part = excess[e] as f64 / nets.len() as f64;
        for &n in nets {
            share[n] += part;
            edges_hit[n] += 1;
        }
    }

    let mut nets: Vec<NetShare> = solution
        .routes
        .iter()
        .filter(|route| share[route.net] > 0.0)
        .map(|route| {
            let wl = route.wirelength();
            let turns = route.num_turns();
            NetShare {
                net: route.net as u64,
                name: design.nets[route.net].name.clone(),
                wirelength: wl,
                turns,
                overflow_share: share[route.net] as f32,
                overflowed_edges: edges_hit[route.net],
                cost: weights.overflow as f64 * share[route.net]
                    + weights.via as f64 * turns as f64
                    + weights.wirelength as f64 * wl as f64,
            }
        })
        .collect();
    nets.sort_by(|a, b| {
        b.overflow_share
            .total_cmp(&a.overflow_share)
            .then_with(|| b.cost.total_cmp(&a.cost))
            .then_with(|| a.net.cmp(&b.net))
    });
    let ranked_nets = nets.len() as u64;
    nets.truncate(MAX_ATTRIBUTION_NETS);

    AttributionRecord {
        phase: phase.to_string(),
        total_nets: num_nets as u64,
        ranked_nets,
        total_excess,
        charged_excess: charged_excess as f32,
        nets,
    }
}

/// Runs [`attribute_solution`] and appends the record to a snapshot
/// stream (writing the header first if the stream is fresh).
pub fn write_attribution(
    sink: &mut SnapshotSink,
    design: &Design,
    solution: &RoutingSolution,
    weights: &CostWeights,
    phase: &str,
) {
    crate::snapshot::ensure_header(sink, design);
    sink.write_attribution(&attribute_solution(design, solution, weights, phase));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::{NetRoute, RoutePath, SolutionMetrics};
    use dgr_grid::{CapacityBuilder, DemandMap, GcellGrid, Net, Point};

    /// Two nets down the same 1-track column, one net far away.
    fn contended() -> (Design, RoutingSolution) {
        let grid = GcellGrid::new(5, 5).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        let nets = vec![
            Net::new("a", vec![Point::new(2, 0), Point::new(2, 4)]),
            Net::new("b", vec![Point::new(2, 0), Point::new(2, 4)]),
            Net::new("far", vec![Point::new(0, 0), Point::new(0, 4)]),
        ];
        let design = Design::new(grid, cap, nets, 3).unwrap();
        let straight = |x: i32| RoutePath {
            corners: vec![Point::new(x, 0), Point::new(x, 4)],
        };
        let mut solution = RoutingSolution {
            routes: vec![
                NetRoute {
                    net: 0,
                    tree: 0,
                    paths: vec![straight(2)],
                },
                NetRoute {
                    net: 1,
                    tree: 1,
                    paths: vec![straight(2)],
                },
                NetRoute {
                    net: 2,
                    tree: 2,
                    paths: vec![straight(0)],
                },
            ],
            demand: DemandMap::new(&design.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        solution.remeasure(&design).unwrap();
        (design, solution)
    }

    #[test]
    fn excess_splits_evenly_between_co_offenders() {
        let (design, solution) = contended();
        let record = attribute_solution(&design, &solution, &CostWeights::default(), "final");
        assert_eq!(record.total_nets, 3);
        // nets a and b overflow 4 column edges by 1 each; far is clean
        assert_eq!(record.ranked_nets, 2);
        assert_eq!(record.nets.len(), 2);
        for n in &record.nets {
            assert!(n.net <= 1, "clean net must not appear: {n:?}");
            assert!((n.overflow_share - 2.0).abs() < 1e-5, "4 edges × ½ each");
            assert_eq!(n.overflowed_edges, 4);
            assert_eq!(n.wirelength, 4);
            assert_eq!(n.turns, 0);
            // 500·2 + 0.5·4
            assert!((n.cost - 1002.0).abs() < 1e-6);
        }
        assert!((record.total_excess - 4.0).abs() < 1e-5);
        assert_eq!(record.charged_excess, record.total_excess);
    }

    #[test]
    fn clean_solution_has_empty_table() {
        let grid = GcellGrid::new(5, 5).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 4.0).build(&grid).unwrap();
        let design = Design::new(
            grid,
            cap,
            vec![Net::new("n", vec![Point::new(0, 0), Point::new(4, 4)])],
            3,
        )
        .unwrap();
        let mut solution = RoutingSolution {
            routes: vec![NetRoute {
                net: 0,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(0, 0), Point::new(4, 0), Point::new(4, 4)],
                }],
            }],
            demand: DemandMap::new(&design.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        solution.remeasure(&design).unwrap();
        let record = attribute_solution(&design, &solution, &CostWeights::default(), "final");
        assert_eq!(record.ranked_nets, 0);
        assert!(record.nets.is_empty());
        assert_eq!(record.total_excess, 0.0);
    }

    #[test]
    fn turn_via_pressure_charges_incident_edges() {
        // one net with a turn next to an edge it never crosses, second
        // net whose wire overfills that edge: both must be charged
        let grid = GcellGrid::new(4, 4).unwrap();
        let mut b = CapacityBuilder::uniform(&grid, 1.0);
        // the edge (1,1)-(2,1) gets capacity 0.4: one wire (net w) plus
        // ½ via pressure (net t's turn at (1,1)) both overflow it
        b.set_tracks(grid.h_edge(1, 1).unwrap(), 0.4);
        let cap = b.build(&grid).unwrap();
        let design = Design::new(
            grid,
            cap,
            vec![
                Net::new("t", vec![Point::new(1, 0), Point::new(0, 1)]),
                Net::new("w", vec![Point::new(0, 1), Point::new(3, 1)]),
            ],
            3,
        )
        .unwrap();
        let mut solution = RoutingSolution {
            routes: vec![
                NetRoute {
                    net: 0,
                    tree: 0,
                    // turn at (1,1): via pressure reaches edge (1,1)-(2,1)
                    paths: vec![RoutePath {
                        corners: vec![Point::new(1, 0), Point::new(1, 1), Point::new(0, 1)],
                    }],
                },
                NetRoute {
                    net: 1,
                    tree: 1,
                    paths: vec![RoutePath {
                        corners: vec![Point::new(0, 1), Point::new(3, 1)],
                    }],
                },
            ],
            demand: DemandMap::new(&design.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        solution.remeasure(&design).unwrap();
        let record = attribute_solution(&design, &solution, &CostWeights::default(), "final");
        let charged: Vec<u64> = record.nets.iter().map(|n| n.net).collect();
        assert!(charged.contains(&0), "turning net charged via pressure");
        assert!(charged.contains(&1), "crossing net charged");
        assert_eq!(record.charged_excess, record.total_excess);
    }
}
