//! Router configuration: cost weights, training schedule, extraction.

use dgr_autodiff::Activation;
use dgr_dag::PatternConfig;
use dgr_rsmt::CandidateConfig;

use crate::DgrError;

/// Weights of the three cost terms in Eq. (3).
///
/// The default is the ICCAD'19 contest metric the paper adopts:
/// `cost = 500·overflow + 4·via + 0.5·wirelength`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// `a₁` — wirelength weight.
    pub wirelength: f32,
    /// `a₂` — via weight.
    pub via: f32,
    /// `a₃` — overflow weight.
    pub overflow: f32,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            wirelength: 0.5,
            via: 4.0,
            overflow: 500.0,
        }
    }
}

/// How the discrete 2D solution is read out of the optimized
/// probabilities (Section 4.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExtractionMode {
    /// Pick the highest-probability path per sub-net (used in the ILP
    /// comparison, Table 1).
    Argmax,
    /// Top-p candidate sets per sub-net, then a greedy congestion-aware
    /// pick inside each set (the paper's default read-out).
    TopP {
        /// Cumulative-probability threshold; candidates are taken in
        /// descending probability until the threshold is passed.
        threshold: f32,
    },
}

impl Default for ExtractionMode {
    fn default() -> Self {
        ExtractionMode::TopP { threshold: 0.9 }
    }
}

/// Full configuration of [`crate::DgrRouter`].
///
/// Defaults reproduce the paper's experimental setup: 1000 iterations of
/// Adam at lr 0.3, initial temperature 1.0 decayed ×0.9 every 100
/// iterations, sigmoid overflow activation, Gumbel noise on, top-p
/// extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct DgrConfig {
    /// Cost-term weights (Eq. 3).
    pub weights: CostWeights,
    /// Number of optimization iterations.
    pub iterations: usize,
    /// Adam learning rate (paper default 0.3).
    pub learning_rate: f32,
    /// Initial Gumbel-softmax temperature.
    pub initial_temperature: f32,
    /// Multiplicative temperature decay factor.
    pub temperature_decay: f32,
    /// Apply the decay every this many iterations.
    pub temperature_interval: usize,
    /// Overflow activation `f` in Eq. (9) — the Fig. 6 knob.
    pub activation: Activation,
    /// Scale applied to the activation input: `f((d − cap) / scale)`.
    /// Saturating activations (sigmoid/CELU) lose their gradient when
    /// `|d − cap|` spans tens of tracks; a scale of a few tracks keeps
    /// congested edges inside the responsive band. `1.0` reproduces the
    /// unscaled formula.
    pub overflow_scale: f32,
    /// Whether to add Gumbel noise to the logits (`false` degrades to a
    /// plain deterministic softmax — an ablation in this reproduction).
    pub gumbel_noise: bool,
    /// Discrete read-out strategy.
    pub extraction: ExtractionMode,
    /// RNG seed for logit init and Gumbel noise.
    pub seed: u64,
    /// Routing-tree candidate pool configuration.
    pub candidates: CandidateConfig,
    /// Memoize Dreyfus–Wagner solves across nets via the canonical
    /// pin-configuration cache ([`dgr_rsmt::RsmtCache`]). Cached and
    /// uncached runs produce identical trees (both solve in canonical
    /// space); disabling exists for benchmarking the cache itself.
    pub use_rsmt_cache: bool,
    /// Pattern families per 2-pin sub-net.
    pub patterns: PatternConfig,
    /// Record the loss every this many iterations (0 = never).
    pub loss_record_interval: usize,
    /// Rip-up/re-pick rounds after the first extraction pass: nets that
    /// cross overflowed edges re-choose their paths greedily over the
    /// full candidate set of their selected tree. `0` reproduces the
    /// plain one-pass read-out.
    pub extraction_rounds: usize,
    /// Adaptive forest-expansion rounds (the paper's future-work
    /// extension): after a routing round that leaves overflow, sub-nets
    /// crossing overflowed edges receive additional maze-derived path
    /// candidates, logits are warm-started, and training resumes for
    /// [`DgrConfig::adaptive_iterations`]. `0` disables the feature.
    pub adaptive_rounds: usize,
    /// Training iterations of each adaptive round.
    pub adaptive_iterations: usize,
}

impl Default for DgrConfig {
    fn default() -> Self {
        DgrConfig {
            weights: CostWeights::default(),
            iterations: 1000,
            learning_rate: 0.3,
            initial_temperature: 1.0,
            temperature_decay: 0.9,
            temperature_interval: 100,
            activation: Activation::Sigmoid,
            overflow_scale: 1.0,
            gumbel_noise: true,
            extraction: ExtractionMode::default(),
            seed: 0,
            candidates: CandidateConfig::default(),
            use_rsmt_cache: true,
            patterns: PatternConfig::default(),
            loss_record_interval: 10,
            extraction_rounds: 2,
            adaptive_rounds: 0,
            adaptive_iterations: 200,
        }
    }
}

impl DgrConfig {
    /// The configuration used for the Table-1 ILP comparison: a single
    /// tree candidate per net, ReLU overflow (the only activation an ILP
    /// can mirror), overflow-only objective, argmax read-out.
    pub fn ilp_comparison() -> Self {
        DgrConfig {
            weights: CostWeights {
                wirelength: 0.0,
                via: 0.0,
                overflow: 1.0,
            },
            activation: Activation::Relu,
            extraction: ExtractionMode::Argmax,
            candidates: CandidateConfig::single(),
            extraction_rounds: 0,
            ..DgrConfig::default()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DgrError::BadConfig`] describing the first problem.
    pub fn validate(&self) -> Result<(), DgrError> {
        if self.iterations == 0 {
            return Err(DgrError::BadConfig("iterations must be > 0".into()));
        }
        // `!(x > 0)` deliberately catches NaN as invalid
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.learning_rate > 0.0) {
            return Err(DgrError::BadConfig("learning rate must be > 0".into()));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.initial_temperature > 0.0) {
            return Err(DgrError::BadConfig("temperature must be > 0".into()));
        }
        if !(0.0 < self.temperature_decay && self.temperature_decay <= 1.0) {
            return Err(DgrError::BadConfig(
                "temperature decay must be in (0, 1]".into(),
            ));
        }
        if self.temperature_interval == 0 {
            return Err(DgrError::BadConfig(
                "temperature interval must be > 0".into(),
            ));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.overflow_scale > 0.0) {
            return Err(DgrError::BadConfig("overflow scale must be > 0".into()));
        }
        if let ExtractionMode::TopP { threshold } = self.extraction {
            if !(0.0 < threshold && threshold <= 1.0) {
                return Err(DgrError::BadConfig(
                    "top-p threshold must be in (0, 1]".into(),
                ));
            }
        }
        Ok(())
    }

    /// The temperature at iteration `it` under the annealing schedule.
    pub fn temperature_at(&self, it: usize) -> f32 {
        self.initial_temperature
            * self
                .temperature_decay
                .powi((it / self.temperature_interval) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = DgrConfig::default();
        assert_eq!(c.weights.overflow, 500.0);
        assert_eq!(c.weights.via, 4.0);
        assert_eq!(c.weights.wirelength, 0.5);
        assert_eq!(c.iterations, 1000);
        assert_eq!(c.learning_rate, 0.3);
        assert_eq!(c.activation, Activation::Sigmoid);
        c.validate().unwrap();
    }

    #[test]
    fn annealing_schedule() {
        let c = DgrConfig::default();
        assert_eq!(c.temperature_at(0), 1.0);
        assert_eq!(c.temperature_at(99), 1.0);
        assert!((c.temperature_at(100) - 0.9).abs() < 1e-6);
        assert!((c.temperature_at(999) - 0.9f32.powi(9)).abs() < 1e-6);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = DgrConfig {
            iterations: 0,
            ..DgrConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DgrConfig {
            temperature_decay: 1.5,
            ..DgrConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DgrConfig {
            extraction: ExtractionMode::TopP { threshold: 0.0 },
            ..DgrConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn ilp_comparison_profile() {
        let c = DgrConfig::ilp_comparison();
        assert_eq!(c.activation, Activation::Relu);
        assert_eq!(c.extraction, ExtractionMode::Argmax);
        assert_eq!(c.candidates.max_candidates, 1);
        assert_eq!(c.weights.wirelength, 0.0);
        c.validate().unwrap();
    }
}
