//! Process-memory measurement for the scalability study (Fig. 5b).
//!
//! The paper plots peak CPU and GPU memory against net count. In this
//! reproduction "CPU memory" is the process RSS read from
//! `/proc/self/status` and "device memory" is the byte accounting of the
//! op tape ([`dgr_autodiff::Graph::bytes`]) plus the DAG forest arenas
//! ([`dgr_dag::DagForest::bytes`]).

/// A snapshot of process memory, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemorySnapshot {
    /// Current resident set size.
    pub rss: u64,
    /// Peak resident set size since process start.
    pub peak_rss: u64,
}

/// Reads the current and peak RSS of this process.
///
/// Returns zeros on platforms without `/proc` (the snapshot is best-effort
/// diagnostics, not a hard dependency).
pub fn memory_snapshot() -> MemorySnapshot {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return MemorySnapshot::default();
    };
    let mut snap = MemorySnapshot::default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            snap.rss = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            snap.peak_rss = parse_kb(rest);
        }
    }
    snap
}

/// Current process RSS in bytes, or `None` on platforms where it cannot
/// be read (no `/proc/self/status` — macOS, Windows).
///
/// Telemetry consumers use this instead of [`memory_snapshot`] so
/// "unmeasurable" is distinguishable from "zero": the JSONL `mem_rss`
/// field serializes `None` as `null`, never as `0`.
pub fn rss_bytes() -> Option<u64> {
    let snap = memory_snapshot();
    if snap.rss == 0 {
        None
    } else {
        Some(snap.rss)
    }
}

fn parse_kb(rest: &str) -> u64 {
    rest.trim()
        .trim_end_matches("kB")
        .trim()
        .parse::<u64>()
        .unwrap_or(0)
        * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sane_on_linux() {
        let snap = memory_snapshot();
        // on Linux both numbers exist and peak ≥ current
        if snap.rss > 0 {
            assert!(snap.peak_rss >= snap.rss);
            assert!(snap.rss > 1024 * 1024); // more than 1 MiB resident
        }
    }

    #[test]
    fn rss_bytes_agrees_with_snapshot() {
        let snap = memory_snapshot();
        match rss_bytes() {
            Some(rss) => assert_eq!(rss, snap.rss),
            None => assert_eq!(snap.rss, 0, "None only when RSS is unreadable"),
        }
    }

    #[test]
    fn parse_kb_units() {
        assert_eq!(parse_kb("   1234 kB"), 1234 * 1024);
        assert_eq!(parse_kb("garbage"), 0);
    }

    #[test]
    fn allocation_grows_rss() {
        let before = memory_snapshot();
        let buf = vec![1u8; 32 * 1024 * 1024];
        let after = memory_snapshot();
        std::hint::black_box(&buf);
        if before.rss > 0 {
            assert!(after.peak_rss >= before.rss);
        }
    }
}
