//! Dynamic-programming layer assignment (Section 4.6).
//!
//! Every 2D wire segment is assigned to a routing layer whose preferred
//! direction matches the segment. The assignment of one net is solved by
//! a tree DP over its segment graph: `dp[v][l]` is the optimal cost of
//! the subtree hanging off node `v` when the wire arriving at `v` sits on
//! layer `l`, combining
//!
//! * per-layer congestion (marginal overflow of the segment's edges on
//!   the candidate layer against the demand committed by earlier nets),
//! * via cost `|l_child − l_parent|` at every junction, and
//! * pin access cost `l` at pin nodes (pins live on the lowest metal).
//!
//! Nets are processed sequentially (largest first), committing per-layer
//! demand — the same greedy-sequential scheme CUGR2 uses. Via counts are
//! then measured exactly as the layer *span* at every node (a stack of
//! vias from the lowest to the highest layer touching the node).

use std::collections::HashMap;

use dgr_core::RoutingSolution;
use dgr_grid::{Design, EdgeDir, Point};

use crate::layers::LayerModel;
use crate::PostError;

/// Configuration of the layer assignment DP.
#[derive(Debug, Clone, Copy)]
pub struct AssignConfig {
    /// Weight of marginal per-layer overflow in the DP cost.
    pub overflow_weight: f32,
    /// Weight of one via (one layer crossed) in the DP cost.
    pub via_weight: f32,
    /// Whether layer 0 routes horizontally.
    pub first_horizontal: bool,
}

impl Default for AssignConfig {
    fn default() -> Self {
        AssignConfig {
            overflow_weight: 500.0,
            via_weight: 4.0,
            first_horizontal: true,
        }
    }
}

/// The segment graph of one routed net, exposed so the differential
/// oracle (`dgr-oracle`) can re-derive the DP's search space
/// independently.
#[derive(Debug, Clone)]
pub struct NetTopology {
    /// Interned junction points, in first-appearance order.
    pub points: Vec<Point>,
    /// `(node_a, node_b, a, b)` per segment, in route order. Segment `i`
    /// here corresponds to `Net3d::segments[i]`.
    pub segs: Vec<(usize, usize, Point, Point)>,
    /// Whether the segment is part of the spanning tree the DP runs on
    /// (`false` = cycle closer, assigned greedily after the DP).
    pub in_tree: Vec<bool>,
}

impl NetTopology {
    /// Builds the segment graph of `route`: interns corner points as
    /// nodes, one segment per non-degenerate corner window, and marks a
    /// union-find spanning tree in segment order.
    pub fn of_route(route: &dgr_core::NetRoute) -> Self {
        let mut node_of: HashMap<Point, usize> = HashMap::new();
        let mut points: Vec<Point> = Vec::new();
        let mut segs: Vec<(usize, usize, Point, Point)> = Vec::new();
        let intern = |p: Point, points: &mut Vec<Point>, node_of: &mut HashMap<Point, usize>| {
            *node_of.entry(p).or_insert_with(|| {
                points.push(p);
                points.len() - 1
            })
        };
        for path in &route.paths {
            for w in path.corners.windows(2) {
                if w[0] == w[1] {
                    continue;
                }
                let na = intern(w[0], &mut points, &mut node_of);
                let nb = intern(w[1], &mut points, &mut node_of);
                segs.push((na, nb, w[0], w[1]));
            }
        }
        let n_nodes = points.len();
        let mut in_tree = vec![false; segs.len()];
        let mut parent: Vec<usize> = (0..n_nodes).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for (si, &(na, nb, ..)) in segs.iter().enumerate() {
            let (ra, rb) = (find(&mut parent, na), find(&mut parent, nb));
            if ra != rb {
                parent[ra] = rb;
                in_tree[si] = true;
            }
        }
        NetTopology {
            points,
            segs,
            in_tree,
        }
    }
}

/// A wire segment placed on a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment3d {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
    /// Assigned layer.
    pub layer: u32,
}

/// One net's 3D realization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net3d {
    /// Net index in the input design.
    pub net: usize,
    /// Layer-assigned segments.
    pub segments: Vec<Segment3d>,
    /// Exact via count (sum of layer spans over the net's nodes).
    pub vias: u64,
}

/// The complete 3D assignment with its quality metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Assigned3d {
    /// Per-net results, in input order.
    pub nets: Vec<Net3d>,
    /// Total vias across nets (the paper's `# Vias` column).
    pub total_vias: u64,
    /// Number of (layer, edge) pairs whose demand exceeds the per-layer
    /// capacity share.
    pub overflowed_edges3d: usize,
    /// Total 3D overflow mass.
    pub total_overflow3d: f64,
    /// Peak per-(layer, edge) overflow.
    pub peak_overflow3d: f32,
    /// Nets touching at least one overflowed (layer, edge) — `n₁` in the
    /// Fig. 6 weighted-overflow score.
    pub overflowed_nets: usize,
}

/// Assigns layers to every net of `solution`.
///
/// 3D accounting covers wire demand; the 2D via-pressure term of Eq. (2)
/// has already shaped the 2D solution and is not double-counted here.
///
/// # Errors
///
/// * [`PostError::TooFewLayers`] if the design has < 2 layers,
/// * [`PostError::Grid`] if a route leaves the grid.
pub fn assign_layers(
    design: &Design,
    solution: &RoutingSolution,
    cfg: AssignConfig,
) -> Result<Assigned3d, PostError> {
    let _span = dgr_obs::span("post", "assign_layers");
    if design.num_layers < 2 {
        return Err(PostError::TooFewLayers {
            got: design.num_layers,
        });
    }
    let model = LayerModel::alternating(design.num_layers, cfg.first_horizontal);
    let grid = &design.grid;
    let num_edges = grid.num_edges();
    let num_layers = model.num_layers() as usize;
    let mut layer_demand = vec![vec![0.0f32; num_edges]; num_layers];

    // big nets first: they have the least flexibility per layer
    let mut order: Vec<usize> = (0..solution.routes.len()).collect();
    order.sort_by_key(|&n| std::cmp::Reverse(solution.routes[n].wirelength()));

    let mut nets: Vec<Option<Net3d>> = vec![None; solution.routes.len()];
    for &n in &order {
        let route = &solution.routes[n];
        let pins: std::collections::HashSet<Point> =
            design.nets[route.net].pins.iter().copied().collect();
        let assignment = assign_net(design, &model, cfg, route, &pins, &mut layer_demand)?;
        nets[n] = Some(assignment.net3d);
    }
    let nets: Vec<Net3d> = nets.into_iter().map(|n| n.expect("assigned")).collect();

    // 3D overflow accounting
    let mut overflowed_edges3d = 0usize;
    let mut total_overflow3d = 0.0f64;
    let mut peak = 0.0f32;
    let mut over_flag = vec![vec![false; num_edges]; num_layers];
    for (l, dem) in layer_demand.iter().enumerate() {
        for e in grid.edge_ids() {
            let dir = grid.edge_dir(e);
            if model.dir_of(l as u32) != dir {
                continue;
            }
            let cap = model.layer_capacity(design.capacity.capacity(e), dir);
            let over = dem[e.index()] - cap;
            if over > 1e-4 {
                overflowed_edges3d += 1;
                total_overflow3d += over as f64;
                peak = peak.max(over);
                over_flag[l][e.index()] = true;
            }
        }
    }
    let mut overflowed_nets = 0usize;
    let total_vias = nets.iter().map(|n| n.vias).sum();
    for net in &nets {
        let hit = net.segments.iter().any(|s| {
            let mut edges = Vec::new();
            grid.push_segment_edges(s.a, s.b, &mut edges)
                .map(|()| edges.iter().any(|e| over_flag[s.layer as usize][e.index()]))
                .unwrap_or(false)
        });
        if hit {
            overflowed_nets += 1;
        }
    }

    Ok(Assigned3d {
        nets,
        total_vias,
        overflowed_edges3d,
        total_overflow3d,
        peak_overflow3d: peak,
        overflowed_nets,
    })
}

/// One net's layer assignment, with the DP internals the oracle checks.
#[derive(Debug, Clone)]
pub struct NetAssignment {
    /// The committed 3D realization (segment `i` = `topology.segs[i]`).
    pub net3d: Net3d,
    /// The segment graph the DP ran on.
    pub topology: NetTopology,
    /// `dp[root][root_layer]`: the optimum the DP claims over tree
    /// segments and pin-access vias. Cycle closers (assigned greedily
    /// after the DP) are *not* included.
    pub dp_cost: f32,
    /// The root layer chosen by the free minimization at the root node.
    pub root_layer: u32,
}

/// Runs the per-net layer-assignment DP against the demand committed in
/// `layer_demand` (one slice per layer, `grid.num_edges()` long each),
/// commits the chosen assignment into it, and returns the DP internals.
///
/// This is the oracle hook behind [`assign_layers`], which calls it per
/// net in descending-wirelength order.
///
/// # Errors
///
/// * [`PostError::TooFewLayers`] if the design has < 2 layers,
/// * [`PostError::Grid`] if a route leaves the grid.
pub fn assign_net_dp(
    design: &Design,
    cfg: AssignConfig,
    route: &dgr_core::NetRoute,
    pins: &std::collections::HashSet<Point>,
    layer_demand: &mut [Vec<f32>],
) -> Result<NetAssignment, PostError> {
    if design.num_layers < 2 {
        return Err(PostError::TooFewLayers {
            got: design.num_layers,
        });
    }
    let model = LayerModel::alternating(design.num_layers, cfg.first_horizontal);
    assign_net(design, &model, cfg, route, pins, layer_demand)
}

fn assign_net(
    design: &Design,
    model: &LayerModel,
    cfg: AssignConfig,
    route: &dgr_core::NetRoute,
    pins: &std::collections::HashSet<Point>,
    layer_demand: &mut [Vec<f32>],
) -> Result<NetAssignment, PostError> {
    let grid = &design.grid;

    // 1. collect segments and nodes, 2. spanning tree (extras = cycle
    // closers)
    let topology = NetTopology::of_route(route);
    let points = &topology.points;
    let segs = &topology.segs;
    let in_tree = &topology.in_tree;
    if segs.is_empty() {
        return Ok(NetAssignment {
            net3d: Net3d {
                net: route.net,
                segments: Vec::new(),
                vias: 0,
            },
            topology,
            dp_cost: 0.0,
            root_layer: 0,
        });
    }
    let n_nodes = points.len();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_nodes]; // (seg, other)
    for (si, &(na, nb, ..)) in segs.iter().enumerate() {
        if in_tree[si] {
            adj[na].push((si, nb));
            adj[nb].push((si, na));
        }
    }

    let num_layers = model.num_layers() as usize;
    let seg_dir = |si: usize| -> EdgeDir {
        let (_, _, a, b) = segs[si];
        if a.y == b.y {
            EdgeDir::Horizontal
        } else {
            EdgeDir::Vertical
        }
    };
    let mut seg_edge_cache: Vec<Option<Vec<dgr_grid::EdgeId>>> = vec![None; segs.len()];
    let seg_edges = |si: usize,
                     cache: &mut Vec<Option<Vec<dgr_grid::EdgeId>>>|
     -> Result<Vec<dgr_grid::EdgeId>, PostError> {
        if cache[si].is_none() {
            let (_, _, a, b) = segs[si];
            let mut edges = Vec::new();
            grid.push_segment_edges(a, b, &mut edges)?;
            cache[si] = Some(edges);
        }
        Ok(cache[si].clone().expect("just filled"))
    };
    let seg_cost = |si: usize,
                    layer: u32,
                    layer_demand: &[Vec<f32>],
                    cache: &mut Vec<Option<Vec<dgr_grid::EdgeId>>>|
     -> Result<f32, PostError> {
        let dir = seg_dir(si);
        let mut cost = 0.0;
        for e in seg_edges(si, cache)? {
            let cap = model.layer_capacity(design.capacity.capacity(e), dir);
            let d = layer_demand[layer as usize][e.index()];
            cost += cfg.overflow_weight * ((d + 1.0 - cap).max(0.0) - (d - cap).max(0.0));
        }
        Ok(cost)
    };

    // 3. tree DP from node 0 (post-order via explicit stack)
    const INF: f32 = f32::INFINITY;
    let mut dp = vec![vec![0.0f32; num_layers]; n_nodes];
    // choice[child_seg][parent_layer] = chosen layer of that segment
    let mut choice: Vec<Vec<u32>> = vec![vec![0; num_layers]; segs.len()];
    let root = 0usize;
    // iterative post-order
    let mut visit_order = Vec::with_capacity(n_nodes);
    let mut parent_seg = vec![usize::MAX; n_nodes];
    {
        let mut stack = vec![(root, usize::MAX)];
        let mut seen = vec![false; n_nodes];
        while let Some((v, pseg)) = stack.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            parent_seg[v] = pseg;
            visit_order.push(v);
            for &(si, u) in &adj[v] {
                if !seen[u] {
                    stack.push((u, si));
                }
            }
        }
    }
    for &v in visit_order.iter().rev() {
        for l in 0..num_layers {
            let mut cost = if pins.contains(&points[v]) {
                cfg.via_weight * l as f32
            } else {
                0.0
            };
            for &(si, u) in &adj[v] {
                if parent_seg[u] != si {
                    continue; // u is v's parent through si
                }
                // segment si connects v down to child u
                let dir = seg_dir(si);
                let mut best = INF;
                let mut best_l = 0u32;
                for &ls in &model.layers_of(dir) {
                    let c = cfg.via_weight * (ls as f32 - l as f32).abs()
                        + seg_cost(si, ls, layer_demand, &mut seg_edge_cache)?
                        + dp[u][ls as usize];
                    if c < best {
                        best = c;
                        best_l = ls;
                    }
                }
                choice[si][l] = best_l;
                cost += best;
            }
            dp[v][l] = cost;
        }
    }

    // 4. pick the root layer and backtrack
    let root_l = (0..num_layers)
        .min_by(|&a, &b| dp[root][a].total_cmp(&dp[root][b]))
        .expect("≥2 layers") as u32;
    let dp_cost = dp[root][root_l as usize];
    let mut seg_layer = vec![u32::MAX; segs.len()];
    let mut stack = vec![(root, root_l)];
    while let Some((v, l)) = stack.pop() {
        for &(si, u) in &adj[v] {
            if parent_seg[u] != si {
                continue;
            }
            let ls = choice[si][l as usize];
            seg_layer[si] = ls;
            stack.push((u, ls));
        }
    }
    // cycle-closing extras: pick the cheapest layer against the incident
    // assigned layers
    let node_layer = |node: usize, seg_layer: &[u32]| -> u32 {
        adj[node]
            .iter()
            .map(|&(si, _)| seg_layer[si])
            .find(|&l| l != u32::MAX)
            .unwrap_or(0)
    };
    for si in 0..segs.len() {
        if in_tree[si] || seg_layer[si] != u32::MAX {
            continue;
        }
        let (na, nb, ..) = segs[si];
        let (la, lb) = (node_layer(na, &seg_layer), node_layer(nb, &seg_layer));
        let dir = seg_dir(si);
        let mut best = INF;
        let mut best_l = model.layers_of(dir)[0];
        for &ls in &model.layers_of(dir) {
            let c = cfg.via_weight
                * ((ls as f32 - la as f32).abs() + (ls as f32 - lb as f32).abs())
                + seg_cost(si, ls, layer_demand, &mut seg_edge_cache)?;
            if c < best {
                best = c;
                best_l = ls;
            }
        }
        seg_layer[si] = best_l;
    }

    // 5. commit demand and count vias exactly (layer span per node)
    let mut segments = Vec::with_capacity(segs.len());
    for (si, &(_, _, a, b)) in segs.iter().enumerate() {
        let layer = seg_layer[si];
        for e in seg_edges(si, &mut seg_edge_cache)? {
            layer_demand[layer as usize][e.index()] += 1.0;
        }
        segments.push(Segment3d { a, b, layer });
    }
    let mut touch: HashMap<Point, (u32, u32)> = HashMap::new();
    for s in &segments {
        for p in [s.a, s.b] {
            let e = touch.entry(p).or_insert((s.layer, s.layer));
            e.0 = e.0.min(s.layer);
            e.1 = e.1.max(s.layer);
        }
    }
    let mut vias = 0u64;
    for (p, (lo, hi)) in &touch {
        let lo = if pins.contains(p) { 0 } else { *lo };
        vias += (*hi - lo) as u64;
    }

    Ok(NetAssignment {
        net3d: Net3d {
            net: route.net,
            segments,
            vias,
        },
        topology,
        dp_cost,
        root_layer: root_l,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_core::{NetRoute, RoutePath, SolutionMetrics};
    use dgr_grid::{CapacityBuilder, DemandMap, GcellGrid, Net};

    fn design(tracks: f32, nets: Vec<Net>, layers: u32) -> Design {
        let grid = GcellGrid::new(10, 10).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks)
            .build(&grid)
            .unwrap();
        Design::new(grid, cap, nets, layers).unwrap()
    }

    fn solution_for(design: &Design, routes: Vec<NetRoute>) -> RoutingSolution {
        let mut sol = RoutingSolution {
            routes,
            demand: DemandMap::new(&design.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        sol.remeasure(design).unwrap();
        sol
    }

    #[test]
    fn straight_horizontal_wire_lands_on_horizontal_layer() {
        let d = design(
            4.0,
            vec![Net::new("a", vec![Point::new(0, 0), Point::new(6, 0)])],
            5,
        );
        let sol = solution_for(
            &d,
            vec![NetRoute {
                net: 0,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(0, 0), Point::new(6, 0)],
                }],
            }],
        );
        let a = assign_layers(&d, &sol, AssignConfig::default()).unwrap();
        assert_eq!(a.nets[0].segments.len(), 1);
        let s = a.nets[0].segments[0];
        assert_eq!(
            LayerModel::alternating(5, true).dir_of(s.layer),
            EdgeDir::Horizontal
        );
        // pins at both ends: vias = 2 × layer (down to metal 0)
        assert_eq!(a.nets[0].vias, 2 * s.layer as u64);
        assert_eq!(a.overflowed_edges3d, 0);
    }

    #[test]
    fn l_route_uses_two_layers_and_one_junction() {
        let d = design(
            4.0,
            vec![Net::new("a", vec![Point::new(0, 0), Point::new(5, 5)])],
            5,
        );
        let sol = solution_for(
            &d,
            vec![NetRoute {
                net: 0,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(0, 0), Point::new(5, 0), Point::new(5, 5)],
                }],
            }],
        );
        let a = assign_layers(&d, &sol, AssignConfig::default()).unwrap();
        assert_eq!(a.nets[0].segments.len(), 2);
        let dirs: Vec<EdgeDir> = a.nets[0]
            .segments
            .iter()
            .map(|s| LayerModel::alternating(5, true).dir_of(s.layer))
            .collect();
        assert!(dirs.contains(&EdgeDir::Horizontal));
        assert!(dirs.contains(&EdgeDir::Vertical));
        // at least one via at the corner plus pin access
        assert!(a.nets[0].vias >= 1);
        assert_eq!(a.total_vias, a.nets[0].vias);
    }

    #[test]
    fn congestion_spreads_across_layers() {
        // 6 horizontal wires on the same row; 3 horizontal layers with
        // per-layer capacity 2 each → DP must use all three layers
        let nets: Vec<Net> = (0..6)
            .map(|i| Net::new(format!("n{i}"), vec![Point::new(0, 4), Point::new(9, 4)]))
            .collect();
        let d = design(6.0, nets, 5);
        let routes: Vec<NetRoute> = (0..6)
            .map(|net| NetRoute {
                net,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(0, 4), Point::new(9, 4)],
                }],
            })
            .collect();
        let sol = solution_for(&d, routes);
        let a = assign_layers(&d, &sol, AssignConfig::default()).unwrap();
        let used: std::collections::HashSet<u32> =
            a.nets.iter().map(|n| n.segments[0].layer).collect();
        assert_eq!(used.len(), 3, "expected all horizontal layers used");
        assert_eq!(a.overflowed_edges3d, 0);
        assert_eq!(a.overflowed_nets, 0);
    }

    #[test]
    fn overflow_is_detected_when_unavoidable() {
        // 8 wires, 3 horizontal layers × capacity 2 = 6 → overflow
        let nets: Vec<Net> = (0..8)
            .map(|i| Net::new(format!("n{i}"), vec![Point::new(0, 4), Point::new(9, 4)]))
            .collect();
        let d = design(6.0, nets, 5);
        let routes: Vec<NetRoute> = (0..8)
            .map(|net| NetRoute {
                net,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(0, 4), Point::new(9, 4)],
                }],
            })
            .collect();
        let sol = solution_for(&d, routes);
        let a = assign_layers(&d, &sol, AssignConfig::default()).unwrap();
        assert!(a.overflowed_edges3d > 0);
        assert!(a.overflowed_nets > 0);
        assert!(a.total_overflow3d > 0.0);
    }

    #[test]
    fn rejects_single_layer_design() {
        let d = design(1.0, vec![], 1);
        let sol = solution_for(&d, vec![]);
        assert!(matches!(
            assign_layers(&d, &sol, AssignConfig::default()),
            Err(PostError::TooFewLayers { got: 1 })
        ));
    }

    #[test]
    fn vertical_first_stack_flips_directions() {
        let d = design(
            4.0,
            vec![Net::new("a", vec![Point::new(0, 0), Point::new(6, 0)])],
            5,
        );
        let sol = solution_for(
            &d,
            vec![NetRoute {
                net: 0,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(0, 0), Point::new(6, 0)],
                }],
            }],
        );
        let cfg = AssignConfig {
            first_horizontal: false,
            ..AssignConfig::default()
        };
        let a = assign_layers(&d, &sol, cfg).unwrap();
        let s = a.nets[0].segments[0];
        // with a vertical-first stack, horizontal wires live on odd layers
        assert_eq!(
            LayerModel::alternating(5, false).dir_of(s.layer),
            EdgeDir::Horizontal
        );
        assert!(s.layer % 2 == 1);
    }

    #[test]
    fn single_pin_net_has_no_segments_or_vias() {
        let d = design(2.0, vec![Net::new("p", vec![Point::new(3, 3)])], 5);
        let sol = solution_for(
            &d,
            vec![NetRoute {
                net: 0,
                tree: 0,
                paths: vec![],
            }],
        );
        let a = assign_layers(&d, &sol, AssignConfig::default()).unwrap();
        assert!(a.nets[0].segments.is_empty());
        assert_eq!(a.total_vias, 0);
    }
}
