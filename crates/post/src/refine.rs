//! Maze-routing refinement of congested nets (Section 4.6).
//!
//! After the pattern-routing solution is extracted, nets that cross
//! overflowed g-cell edges are ripped up and rerouted with the maze
//! engine under an overflow-penalized cost. This is the same refinement
//! CUGR2 applies to DGR's 2D output before layer assignment.

use dgr_baseline::cost::overflow_marginal;
use dgr_baseline::maze::{maze_route, MazeConfig};
use dgr_core::{RoutePath, RoutingSolution};
use dgr_grid::{Design, Rect};

use crate::PostError;

/// Configuration of the refinement pass.
#[derive(Debug, Clone, Copy)]
pub struct RefineConfig {
    /// Maximum rip-up/reroute rounds.
    pub rounds: usize,
    /// Overflow penalty added to the unit wire cost in the maze search.
    pub overflow_penalty: f32,
    /// Turn cost in the maze search (via proxy).
    pub turn_cost: f32,
    /// Search-window inflation around each sub-net's bounding box.
    pub margin: i32,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            rounds: 2,
            overflow_penalty: 1000.0,
            turn_cost: 1.0,
            margin: 8,
        }
    }
}

/// What the refinement accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineReport {
    /// Rounds actually executed.
    pub rounds: usize,
    /// Nets rerouted in total (with multiplicity across rounds).
    pub nets_rerouted: usize,
    /// Overflowed edges before refinement.
    pub overflowed_before: usize,
    /// Overflowed edges after refinement.
    pub overflowed_after: usize,
}

/// Reroutes nets crossing overflowed edges, in place. Only accepts a
/// rerouted net if it does not worsen the solution's overflow.
///
/// # Errors
///
/// Propagates grid errors (impossible for solutions produced against the
/// same design).
pub fn refine(
    design: &Design,
    solution: &mut RoutingSolution,
    cfg: RefineConfig,
) -> Result<RefineReport, PostError> {
    let _span = dgr_obs::span("post", "refine");
    let grid = &design.grid;
    let cap = &design.capacity;
    let overflowed_before = solution.metrics.overflow.overflowed_edges;
    let mut nets_rerouted = 0usize;
    let mut rounds = 0usize;

    for _ in 0..cfg.rounds {
        let victims: Vec<usize> = {
            let over: Vec<bool> = grid
                .edge_ids()
                .map(|e| solution.demand.total(grid, cap, e) > cap.capacity(e) + 1e-4)
                .collect();
            (0..solution.routes.len())
                .filter(|&n| {
                    solution.routes[n].paths.iter().any(|p| {
                        p.corners.windows(2).any(|w| {
                            let mut edges = Vec::new();
                            grid.push_segment_edges(w[0], w[1], &mut edges)
                                .map(|()| edges.iter().any(|e| over[e.index()]))
                                .unwrap_or(false)
                        })
                    })
                })
                .collect()
        };
        if victims.is_empty() {
            break;
        }
        rounds += 1;
        for &n in &victims {
            // rip up net n
            let old_paths = solution.routes[n].paths.clone();
            for path in &old_paths {
                for w in path.corners.windows(2) {
                    solution.demand.remove_segment(grid, w[0], w[1])?;
                }
                let k = path.corners.len();
                if k > 2 {
                    for c in &path.corners[1..k - 1] {
                        solution.demand.remove_turn(grid, *c)?;
                    }
                }
            }
            // reroute each sub-net by maze under overflow penalty
            let mut new_paths = Vec::with_capacity(old_paths.len());
            let mut ok = true;
            for path in &old_paths {
                let (a, b) = (
                    *path.corners.first().expect("non-empty"),
                    *path.corners.last().expect("non-empty"),
                );
                if a == b {
                    new_paths.push(path.clone());
                    continue;
                }
                let mcfg = MazeConfig {
                    bounds: Some(
                        Rect::bounding(&[a, b]).inflate_clamped(cfg.margin, grid.bounds()),
                    ),
                    turn_cost: cfg.turn_cost,
                };
                let demand = &solution.demand;
                let cost_fn =
                    |e| 1.0 + cfg.overflow_penalty * overflow_marginal(grid, cap, demand, e);
                // windowed search, escalating to the full grid when the
                // window cannot dodge the congestion
                let windowed = maze_route(grid, a, b, cost_fn, &mcfg).filter(|corners| {
                    corners.windows(2).all(|w| {
                        let mut edges = Vec::new();
                        grid.push_segment_edges(w[0], w[1], &mut edges)
                            .map(|()| {
                                edges
                                    .iter()
                                    .all(|&e| overflow_marginal(grid, cap, demand, e) <= 0.0)
                            })
                            .unwrap_or(false)
                    })
                });
                let escalated = windowed.or_else(|| {
                    maze_route(
                        grid,
                        a,
                        b,
                        cost_fn,
                        &MazeConfig {
                            bounds: None,
                            turn_cost: cfg.turn_cost,
                        },
                    )
                });
                match escalated {
                    Some(corners) => {
                        let p = RoutePath { corners };
                        for w in p.corners.windows(2) {
                            solution.demand.add_segment(grid, w[0], w[1])?;
                        }
                        let k = p.corners.len();
                        if k > 2 {
                            for c in &p.corners[1..k - 1] {
                                solution.demand.add_turn(grid, *c)?;
                            }
                        }
                        new_paths.push(p);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                solution.routes[n].paths = new_paths;
                nets_rerouted += 1;
            } else {
                // roll back: remove whatever was committed, restore old
                for p in &new_paths {
                    for w in p.corners.windows(2) {
                        solution.demand.remove_segment(grid, w[0], w[1])?;
                    }
                    let k = p.corners.len();
                    if k > 2 {
                        for c in &p.corners[1..k - 1] {
                            solution.demand.remove_turn(grid, *c)?;
                        }
                    }
                }
                for path in &old_paths {
                    for w in path.corners.windows(2) {
                        solution.demand.add_segment(grid, w[0], w[1])?;
                    }
                    let k = path.corners.len();
                    if k > 2 {
                        for c in &path.corners[1..k - 1] {
                            solution.demand.add_turn(grid, *c)?;
                        }
                    }
                }
            }
        }
    }

    solution.remeasure(design)?;
    Ok(RefineReport {
        rounds,
        nets_rerouted,
        overflowed_before,
        overflowed_after: solution.metrics.overflow.overflowed_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_core::{NetRoute, SolutionMetrics};
    use dgr_grid::{CapacityBuilder, DemandMap, GcellGrid, Net, Point};

    fn overflowing_solution() -> (Design, RoutingSolution) {
        // two nets stacked on the same row although a free row exists
        let grid = GcellGrid::new(10, 10).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.5).build(&grid).unwrap();
        let design = Design::new(
            grid,
            cap,
            vec![
                Net::new("a", vec![Point::new(0, 5), Point::new(9, 5)]),
                Net::new("b", vec![Point::new(1, 5), Point::new(8, 5)]),
            ],
            5,
        )
        .unwrap();
        let routes = vec![
            NetRoute {
                net: 0,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(0, 5), Point::new(9, 5)],
                }],
            },
            NetRoute {
                net: 1,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(1, 5), Point::new(8, 5)],
                }],
            },
        ];
        let mut sol = RoutingSolution {
            routes,
            demand: DemandMap::new(&design.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        sol.remeasure(&design).unwrap();
        (design, sol)
    }

    #[test]
    fn refinement_removes_avoidable_overflow() {
        let (design, mut sol) = overflowing_solution();
        assert!(sol.metrics.overflow.overflowed_edges > 0);
        let report = refine(&design, &mut sol, RefineConfig::default()).unwrap();
        assert_eq!(report.overflowed_after, 0, "refinement failed: {report:?}");
        assert!(report.nets_rerouted >= 1);
        assert!(report.overflowed_before > report.overflowed_after);
        // the solution metrics were re-measured
        assert_eq!(
            sol.metrics.overflow.overflowed_edges,
            report.overflowed_after
        );
    }

    #[test]
    fn refinement_is_a_noop_on_clean_solutions() {
        let grid = GcellGrid::new(10, 10).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 4.0).build(&grid).unwrap();
        let design = Design::new(
            grid,
            cap,
            vec![Net::new("a", vec![Point::new(0, 0), Point::new(9, 0)])],
            5,
        )
        .unwrap();
        let mut sol = RoutingSolution {
            routes: vec![NetRoute {
                net: 0,
                tree: 0,
                paths: vec![RoutePath {
                    corners: vec![Point::new(0, 0), Point::new(9, 0)],
                }],
            }],
            demand: DemandMap::new(&design.grid),
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        sol.remeasure(&design).unwrap();
        let before = sol.clone();
        let report = refine(&design, &mut sol, RefineConfig::default()).unwrap();
        assert_eq!(report.rounds, 0);
        assert_eq!(report.nets_rerouted, 0);
        assert_eq!(
            sol.metrics.total_wirelength,
            before.metrics.total_wirelength
        );
    }

    #[test]
    fn wirelength_may_grow_but_overflow_shrinks() {
        let (design, mut sol) = overflowing_solution();
        let wl_before = sol.metrics.total_wirelength;
        let ov_before = sol.metrics.overflow.total_overflow;
        refine(&design, &mut sol, RefineConfig::default()).unwrap();
        assert!(sol.metrics.overflow.total_overflow < ov_before);
        assert!(sol.metrics.total_wirelength >= wl_before);
    }
}
