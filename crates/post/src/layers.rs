//! The layer stack model.

use dgr_grid::EdgeDir;

/// A stack of routing layers with alternating preferred directions.
///
/// Layer 0 is the lowest routable metal. By default even layers run
/// horizontally and odd layers vertically (`first_horizontal = true`);
/// each 2D edge's capacity is split evenly across the layers of its
/// direction.
///
/// # Examples
///
/// ```
/// use dgr_grid::EdgeDir;
/// use dgr_post::LayerModel;
///
/// let stack = LayerModel::alternating(5, true);
/// assert_eq!(stack.dir_of(0), EdgeDir::Horizontal);
/// assert_eq!(stack.dir_of(1), EdgeDir::Vertical);
/// assert_eq!(stack.layers_of(EdgeDir::Horizontal), vec![0, 2, 4]);
/// assert_eq!(stack.count_of(EdgeDir::Vertical), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerModel {
    num_layers: u32,
    first_horizontal: bool,
}

impl LayerModel {
    /// Builds an alternating stack of `num_layers` layers.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers < 2` (both directions need at least one
    /// layer; use [`crate::PostError::TooFewLayers`]-returning entry
    /// points for fallible handling).
    pub fn alternating(num_layers: u32, first_horizontal: bool) -> Self {
        assert!(num_layers >= 2, "need at least 2 layers");
        LayerModel {
            num_layers,
            first_horizontal,
        }
    }

    /// Number of layers in the stack.
    pub fn num_layers(&self) -> u32 {
        self.num_layers
    }

    /// Preferred direction of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn dir_of(&self, layer: u32) -> EdgeDir {
        assert!(layer < self.num_layers, "layer out of range");
        let even = layer.is_multiple_of(2);
        match (even, self.first_horizontal) {
            (true, true) | (false, false) => EdgeDir::Horizontal,
            _ => EdgeDir::Vertical,
        }
    }

    /// The layers whose preferred direction is `dir`, in ascending order.
    pub fn layers_of(&self, dir: EdgeDir) -> Vec<u32> {
        (0..self.num_layers)
            .filter(|&l| self.dir_of(l) == dir)
            .collect()
    }

    /// Number of layers with preferred direction `dir`.
    pub fn count_of(&self, dir: EdgeDir) -> usize {
        self.layers_of(dir).len()
    }

    /// Per-layer capacity share of a 2D edge with total capacity `cap2d`
    /// and direction `dir`.
    pub fn layer_capacity(&self, cap2d: f32, dir: EdgeDir) -> f32 {
        cap2d / self.count_of(dir) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternation_and_counts() {
        let m = LayerModel::alternating(5, true);
        assert_eq!(m.layers_of(EdgeDir::Horizontal), vec![0, 2, 4]);
        assert_eq!(m.layers_of(EdgeDir::Vertical), vec![1, 3]);
        let m = LayerModel::alternating(4, false);
        assert_eq!(m.layers_of(EdgeDir::Vertical), vec![0, 2]);
        assert_eq!(m.layers_of(EdgeDir::Horizontal), vec![1, 3]);
    }

    #[test]
    fn capacity_split() {
        let m = LayerModel::alternating(5, true);
        assert!((m.layer_capacity(6.0, EdgeDir::Horizontal) - 2.0).abs() < 1e-6);
        assert!((m.layer_capacity(6.0, EdgeDir::Vertical) - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 2 layers")]
    fn rejects_single_layer() {
        let _ = LayerModel::alternating(1, true);
    }
}
