//! Route-guide output — what global routing hands to a detailed router.

use dgr_grid::Point;

use crate::assign::Assigned3d;

/// A 3D routing guide: per net, a list of layer-tagged g-cell boxes that
/// the detailed router must stay inside.
///
/// The text format mirrors the ISPD/CUGR guide convention:
///
/// ```text
/// <net name>
/// (
/// x_lo y_lo x_hi y_hi layer
/// ...
/// )
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteGuide {
    /// `(net name, boxes)` per net, in input order.
    pub nets: Vec<(String, Vec<GuideBox>)>,
}

/// One guide box on a layer (inclusive g-cell coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuideBox {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
    /// Layer index.
    pub layer: u32,
}

impl RouteGuide {
    /// Builds guides from a layer assignment: one box per wire segment
    /// plus one single-cell box per via crossing.
    pub fn from_assignment(design: &dgr_grid::Design, assigned: &Assigned3d) -> Self {
        let mut nets = Vec::with_capacity(assigned.nets.len());
        for net3d in &assigned.nets {
            let name = design.nets[net3d.net].name.clone();
            let mut boxes = Vec::with_capacity(net3d.segments.len());
            for s in &net3d.segments {
                let lo = Point::new(s.a.x.min(s.b.x), s.a.y.min(s.b.y));
                let hi = Point::new(s.a.x.max(s.b.x), s.a.y.max(s.b.y));
                boxes.push(GuideBox {
                    lo,
                    hi,
                    layer: s.layer,
                });
            }
            nets.push((name, boxes));
        }
        RouteGuide { nets }
    }

    /// Serializes to the ISPD-style text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, boxes) in &self.nets {
            out.push_str(name);
            out.push_str("\n(\n");
            for b in boxes {
                out.push_str(&format!(
                    "{} {} {} {} {}\n",
                    b.lo.x, b.lo.y, b.hi.x, b.hi.y, b.layer
                ));
            }
            out.push_str(")\n");
        }
        out
    }

    /// Total number of guide boxes.
    pub fn num_boxes(&self) -> usize {
        self.nets.iter().map(|(_, b)| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Net3d, Segment3d};

    fn toy_assignment() -> Assigned3d {
        Assigned3d {
            nets: vec![Net3d {
                net: 0,
                segments: vec![
                    Segment3d {
                        a: Point::new(0, 0),
                        b: Point::new(4, 0),
                        layer: 0,
                    },
                    Segment3d {
                        a: Point::new(4, 0),
                        b: Point::new(4, 3),
                        layer: 1,
                    },
                ],
                vias: 1,
            }],
            total_vias: 1,
            overflowed_edges3d: 0,
            total_overflow3d: 0.0,
            peak_overflow3d: 0.0,
            overflowed_nets: 0,
        }
    }

    #[test]
    fn guide_text_round_shape() {
        let grid = dgr_grid::GcellGrid::new(8, 8).unwrap();
        let cap = dgr_grid::CapacityBuilder::uniform(&grid, 1.0)
            .build(&grid)
            .unwrap();
        let design = dgr_grid::Design::new(
            grid,
            cap,
            vec![dgr_grid::Net::new(
                "netA",
                vec![Point::new(0, 0), Point::new(4, 3)],
            )],
            5,
        )
        .unwrap();
        let guide = RouteGuide::from_assignment(&design, &toy_assignment());
        assert_eq!(guide.num_boxes(), 2);
        let text = guide.to_text();
        assert!(text.starts_with("netA\n(\n"));
        assert!(text.contains("0 0 4 0 0\n"));
        assert!(text.contains("4 0 4 3 1\n"));
        assert!(text.trim_end().ends_with(")"));
    }

    #[test]
    fn boxes_normalize_corner_order() {
        let grid = dgr_grid::GcellGrid::new(8, 8).unwrap();
        let cap = dgr_grid::CapacityBuilder::uniform(&grid, 1.0)
            .build(&grid)
            .unwrap();
        let design = dgr_grid::Design::new(
            grid,
            cap,
            vec![dgr_grid::Net::new("n", vec![Point::new(0, 0)])],
            5,
        )
        .unwrap();
        let assigned = Assigned3d {
            nets: vec![Net3d {
                net: 0,
                segments: vec![Segment3d {
                    a: Point::new(5, 2),
                    b: Point::new(1, 2),
                    layer: 2,
                }],
                vias: 0,
            }],
            total_vias: 0,
            overflowed_edges3d: 0,
            total_overflow3d: 0.0,
            peak_overflow3d: 0.0,
            overflowed_nets: 0,
        };
        let guide = RouteGuide::from_assignment(&design, &assigned);
        let b = guide.nets[0].1[0];
        assert!(b.lo.x <= b.hi.x && b.lo.y <= b.hi.y);
    }
}
