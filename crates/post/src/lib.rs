#![warn(missing_docs)]

//! Post-processing: 2D pattern routes → 3D routing guides.
//!
//! DGR (like CUGR2) routes in 2D and lifts the result to 3D afterwards
//! (Section 4.6 of the paper):
//!
//! 1. [`assign_layers`] — dynamic-programming layer assignment: every
//!    wire segment picks a routing layer of matching preferred direction,
//!    trading per-layer congestion against via count (layer changes at
//!    segment junctions),
//! 2. [`refine()`] — maze rerouting of nets that cross overflowed edges,
//!    followed by re-assignment,
//! 3. [`RouteGuide`] — the final guide boxes handed to a detailed router.
//!
//! The layer model alternates preferred directions (metal1 horizontal by
//! default) and splits each 2D edge capacity evenly across the layers of
//! its direction.

pub mod assign;
pub mod guide;
pub mod layers;
pub mod refine;

pub use assign::{
    assign_layers, assign_net_dp, AssignConfig, Assigned3d, Net3d, NetAssignment, NetTopology,
    Segment3d,
};
pub use guide::RouteGuide;
pub use layers::LayerModel;
pub use refine::{refine, RefineConfig, RefineReport};

/// Errors produced by post-processing.
#[derive(Debug)]
pub enum PostError {
    /// Grid-level failure (a route leaving the grid).
    Grid(dgr_grid::GridError),
    /// The design has fewer than two routable layers.
    TooFewLayers {
        /// Layers available.
        got: u32,
    },
}

impl std::fmt::Display for PostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostError::Grid(e) => write!(f, "grid operation failed: {e}"),
            PostError::TooFewLayers { got } => {
                write!(f, "layer assignment needs ≥ 2 layers, got {got}")
            }
        }
    }
}

impl std::error::Error for PostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PostError::Grid(e) => Some(e),
            PostError::TooFewLayers { .. } => None,
        }
    }
}

impl From<dgr_grid::GridError> for PostError {
    fn from(e: dgr_grid::GridError) -> Self {
        PostError::Grid(e)
    }
}
