//! An SPRoute 2.0-style soft-capacity maze router (Table 3 baseline).
//!
//! SPRoute 2.0 (He et al., ASP-DAC'22) routes nets with maze search under
//! a *soft capacity* model: edges may exceed a fraction of their nominal
//! capacity only at steeply growing cost, which reserves slack for
//! detailed routing. This reproduction keeps the algorithmic core —
//! sequential maze routing with a utilization-driven soft cost and a few
//! reroute rounds — single-threaded (the original's determinism-preserving
//! parallelism is an engineering layer, not a quality lever).

use dgr_core::{NetRoute, RoutePath, RoutingSolution, SolutionMetrics};
use dgr_grid::{DemandMap, Design, Rect};

use crate::maze::{maze_route, MazeConfig};
use crate::BaselineError;

/// Tuning knobs of the soft-capacity router.
#[derive(Debug, Clone)]
pub struct SprouteConfig {
    /// Fraction of nominal capacity treated as "soft" headroom.
    pub soft_fraction: f32,
    /// Cost multiplier applied beyond the soft boundary.
    pub penalty: f32,
    /// Reroute rounds after the initial pass.
    pub rounds: usize,
    /// Turn cost in the maze search.
    pub turn_cost: f32,
    /// Maze window inflation around each sub-net's bounding box.
    pub margin: i32,
}

impl Default for SprouteConfig {
    fn default() -> Self {
        SprouteConfig {
            soft_fraction: 0.9,
            penalty: 50.0,
            rounds: 2,
            turn_cost: 1.0,
            margin: 8,
        }
    }
}

/// The SPRoute-style baseline. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct SprouteRouter {
    config: SprouteConfig,
}

impl SprouteRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: SprouteConfig) -> Self {
        SprouteRouter { config }
    }

    /// Routes `design` and returns the 2D solution.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Unroutable`] when a sub-net cannot be
    /// connected (zero-capacity cut across its window), or propagates
    /// construction errors.
    pub fn route(&self, design: &Design) -> Result<RoutingSolution, BaselineError> {
        let grid = &design.grid;
        let mut demand = DemandMap::new(grid);
        let mut trees = Vec::with_capacity(design.nets.len());
        for net in &design.nets {
            trees.push(dgr_rsmt::rsmt(&net.pins)?);
        }
        let mut order: Vec<usize> = (0..design.nets.len()).collect();
        order.sort_by_key(|&n| {
            let pins = &design.nets[n].pins;
            if pins.is_empty() {
                0
            } else {
                Rect::bounding(pins).half_perimeter()
            }
        });

        let mut routes: Vec<Vec<RoutePath>> = vec![Vec::new(); design.nets.len()];
        for &n in &order {
            routes[n] = self.route_net(design, &trees[n], &mut demand, n)?;
        }
        for _ in 0..self.config.rounds {
            let victims: Vec<usize> = (0..design.nets.len())
                .filter(|&n| self.net_overflows(design, &demand, &routes[n]))
                .collect();
            if victims.is_empty() {
                break;
            }
            for &n in &victims {
                rip_up(grid, &routes[n], &mut demand)?;
                routes[n] = self.route_net(design, &trees[n], &mut demand, n)?;
            }
        }

        let mut solution = RoutingSolution {
            routes: routes
                .into_iter()
                .enumerate()
                .map(|(net, paths)| NetRoute {
                    net,
                    tree: 0,
                    paths,
                })
                .collect(),
            demand,
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        solution.remeasure(design).map_err(BaselineError::Grid)?;
        Ok(solution)
    }

    fn soft_cost(&self, design: &Design, demand: &DemandMap, e: dgr_grid::EdgeId) -> f32 {
        let d = demand.total(&design.grid, &design.capacity, e);
        let c = design.capacity.capacity(e).max(1e-3);
        let u = (d + 1.0) / c;
        if u <= self.config.soft_fraction {
            1.0
        } else {
            1.0 + self.config.penalty * (u - self.config.soft_fraction).powi(2) / 0.01
        }
    }

    fn route_net(
        &self,
        design: &Design,
        tree: &dgr_rsmt::RoutingTree,
        demand: &mut DemandMap,
        net: usize,
    ) -> Result<Vec<RoutePath>, BaselineError> {
        let grid = &design.grid;
        let mut out = Vec::new();
        for (a, b) in tree.subnets() {
            let cfg = MazeConfig {
                bounds: Some(
                    Rect::bounding(&[a, b]).inflate_clamped(self.config.margin, grid.bounds()),
                ),
                turn_cost: self.config.turn_cost,
            };
            // windowed search first; escalate to the whole grid when the
            // window's best still rides overflowed edges (far detours)
            let corners = maze_route(grid, a, b, |e| self.soft_cost(design, demand, e), &cfg)
                .filter(|corners| {
                    !crate::sequential::corners_overflow(grid, &design.capacity, demand, corners)
                        .unwrap_or(true)
                })
                .or_else(|| {
                    maze_route(
                        grid,
                        a,
                        b,
                        |e| self.soft_cost(design, demand, e),
                        &MazeConfig {
                            bounds: None,
                            turn_cost: self.config.turn_cost,
                        },
                    )
                })
                .ok_or(BaselineError::Unroutable { net })?;
            let path = RoutePath { corners };
            for w in path.corners.windows(2) {
                demand
                    .add_segment(grid, w[0], w[1])
                    .map_err(BaselineError::Grid)?;
            }
            let k = path.corners.len();
            if k > 2 {
                for c in &path.corners[1..k - 1] {
                    demand.add_turn(grid, *c).map_err(BaselineError::Grid)?;
                }
            }
            out.push(path);
        }
        Ok(out)
    }

    fn net_overflows(&self, design: &Design, demand: &DemandMap, paths: &[RoutePath]) -> bool {
        let grid = &design.grid;
        let cap = &design.capacity;
        paths.iter().any(|p| {
            p.corners.windows(2).any(|w| {
                let mut edges = Vec::new();
                grid.push_segment_edges(w[0], w[1], &mut edges)
                    .map(|()| {
                        edges
                            .iter()
                            .any(|&e| demand.total(grid, cap, e) > cap.capacity(e) + 1e-4)
                    })
                    .unwrap_or(false)
            })
        })
    }
}

pub(crate) fn rip_up(
    grid: &dgr_grid::GcellGrid,
    paths: &[RoutePath],
    demand: &mut DemandMap,
) -> Result<(), BaselineError> {
    for path in paths {
        for w in path.corners.windows(2) {
            demand
                .remove_segment(grid, w[0], w[1])
                .map_err(BaselineError::Grid)?;
        }
        let k = path.corners.len();
        if k > 2 {
            for c in &path.corners[1..k - 1] {
                demand.remove_turn(grid, *c).map_err(BaselineError::Grid)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::{CapacityBuilder, GcellGrid, Net, Point};

    fn design(tracks: f32, nets: Vec<Net>) -> Design {
        let grid = GcellGrid::new(12, 12).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks)
            .build(&grid)
            .unwrap();
        Design::new(grid, cap, nets, 5).unwrap()
    }

    #[test]
    fn routes_and_respects_capacity() {
        let d = design(
            2.0,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(9, 9)]),
                Net::new("b", vec![Point::new(0, 9), Point::new(9, 0)]),
                Net::new("c", vec![Point::new(3, 0), Point::new(3, 9)]),
            ],
        );
        let sol = SprouteRouter::default().route(&d).unwrap();
        assert_eq!(sol.routes.len(), 3);
        assert_eq!(sol.metrics.overflow.overflowed_edges, 0);
    }

    #[test]
    fn soft_cost_grows_superlinearly_near_capacity() {
        let d = design(2.0, vec![]);
        let router = SprouteRouter::default();
        let mut demand = DemandMap::new(&d.grid);
        let e = d.grid.h_edge(0, 0).unwrap();
        let empty = router.soft_cost(&d, &demand, e);
        demand.add_wire(e, 1.0);
        let half = router.soft_cost(&d, &demand, e);
        demand.add_wire(e, 1.0);
        let full = router.soft_cost(&d, &demand, e);
        assert_eq!(empty, 1.0);
        assert!(half >= empty);
        assert!(full > half + 1.0);
    }

    #[test]
    fn detours_instead_of_overflowing() {
        // capacity 1.5: two nets sharing row 5 would give 2.0 wire; the
        // soft cost pushes one to a neighbouring row, where 1 wire + 0.5
        // corner via pressure = 1.5 fits exactly
        let grid = GcellGrid::new(12, 12).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.5).build(&grid).unwrap();
        let d = Design::new(
            grid,
            cap,
            vec![
                Net::new("a", vec![Point::new(0, 5), Point::new(11, 5)]),
                Net::new("b", vec![Point::new(1, 5), Point::new(10, 5)]),
            ],
            5,
        )
        .unwrap();
        let sol = SprouteRouter::default().route(&d).unwrap();
        assert_eq!(sol.metrics.overflow.overflowed_edges, 0);
        // one of the two detoured: more than the 11 + 9 direct wirelength
        assert!(sol.metrics.total_wirelength > 20);
    }

    #[test]
    fn zero_capacity_is_soft_not_hard() {
        let grid = GcellGrid::new(8, 8).unwrap();
        // zero nominal capacity everywhere: soft cost is huge but finite,
        // so the net still connects and the overflow is reported honestly
        let cap = CapacityBuilder::uniform(&grid, 0.0).build(&grid).unwrap();
        let d = Design::new(
            grid,
            cap,
            vec![Net::new("a", vec![Point::new(0, 0), Point::new(7, 7)])],
            5,
        )
        .unwrap();
        let sol = SprouteRouter::default().route(&d).unwrap();
        assert!(sol.metrics.overflow.overflowed_edges > 0);
    }
}
