//! Exact overflow minimization over L-shape choices — the paper's ILP
//! reference (Table 1).
//!
//! The Table-1 experiment fixes one routing tree per net and asks for the
//! L-shape assignment minimizing `Σ_e ReLU(d_e − cap_e)` (wire demand
//! only, because a linear program cannot model the other activations).
//! The paper solves this with CVXPY; we solve it **exactly** with
//! branch-and-bound:
//!
//! * **decomposition** — nets whose bounding boxes do not overlap cannot
//!   share an edge, so connected components of the bbox-overlap graph are
//!   solved independently,
//! * **admissible bound** — `overflow(committed) + Σ_s min-choice
//!   marginal(s)`: because ReLU is convex, a path's marginal overflow
//!   against the current demand can only grow as other paths commit, so
//!   this never overestimates,
//! * **dynamic branching** — expand the remaining sub-net whose two
//!   choices differ most under the current demand, cheapest choice first,
//! * **wall-clock limit** — instances the bound cannot close in time
//!   report [`IlpStatus::TimedOut`], mirroring the paper's `N/A` rows.

use std::time::{Duration, Instant};

use dgr_dag::{build_forest, DagForest, PatternConfig};
use dgr_grid::{Design, Rect};
use dgr_rsmt::CandidateConfig;

use crate::BaselineError;

/// Completion status of an ILP run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpStatus {
    /// The returned overflow is provably optimal.
    Optimal,
    /// The time limit expired; the returned overflow is the best
    /// incumbent (an upper bound on the optimum).
    TimedOut,
}

/// Result of an ILP solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpResult {
    /// Total `Σ_e ReLU(d_e − cap_e)` of the best assignment found.
    pub overflow: f64,
    /// Whether the value is proven optimal.
    pub status: IlpStatus,
    /// Wall-clock solve time.
    pub runtime: Duration,
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
}

/// Exact branch-and-bound solver for the Table-1 problem.
#[derive(Debug, Clone)]
pub struct IlpSolver {
    /// Wall-clock budget; `TimedOut` is reported when exceeded.
    pub time_limit: Duration,
}

impl Default for IlpSolver {
    fn default() -> Self {
        IlpSolver {
            time_limit: Duration::from_secs(600),
        }
    }
}

struct Component<'f> {
    subnets: Vec<usize>,
    forest: &'f DagForest,
}

impl IlpSolver {
    /// Creates a solver with the given time budget.
    pub fn new(time_limit: Duration) -> Self {
        IlpSolver { time_limit }
    }

    /// Solves the L-shape assignment problem for `design`.
    ///
    /// # Errors
    ///
    /// Propagates tree/forest construction failures.
    pub fn solve(&self, design: &Design) -> Result<IlpResult, BaselineError> {
        let start = Instant::now();
        let mut pools = Vec::with_capacity(design.nets.len());
        let cand = CandidateConfig::single();
        for net in &design.nets {
            pools.push(dgr_rsmt::tree_candidates(&net.pins, &cand)?);
        }
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only())?;

        // Component decomposition over net bounding boxes.
        let comps = components(design, &forest);
        let cap: Vec<f32> = design.capacity.as_slice().to_vec();
        let mut demand = vec![0.0f32; design.grid.num_edges()];
        let mut total = 0.0f64;
        let mut nodes = 0u64;
        let mut status = IlpStatus::Optimal;
        for comp in comps {
            let deadline = start + self.time_limit;
            let (ov, n, opt) = solve_component(&comp, &cap, &mut demand, deadline);
            total += ov;
            nodes += n;
            if !opt {
                status = IlpStatus::TimedOut;
            }
        }
        Ok(IlpResult {
            overflow: total,
            status,
            runtime: start.elapsed(),
            nodes,
        })
    }

    /// Brute-force reference for tests: enumerates every assignment.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    ///
    /// # Panics
    ///
    /// Panics if the design has more than 24 sub-nets (4^24 assignments).
    pub fn brute_force(&self, design: &Design) -> Result<f64, BaselineError> {
        let cand = CandidateConfig::single();
        let mut pools = Vec::with_capacity(design.nets.len());
        for net in &design.nets {
            pools.push(dgr_rsmt::tree_candidates(&net.pins, &cand)?);
        }
        let forest = build_forest(&design.grid, &pools, PatternConfig::l_only())?;
        let s = forest.num_subnets();
        assert!(s <= 24, "brute force limited to 24 subnets, got {s}");
        let cap = design.capacity.as_slice();
        let mut best = f64::INFINITY;
        let mut choice = vec![0usize; s];
        loop {
            // evaluate current assignment
            let mut demand = vec![0.0f32; design.grid.num_edges()];
            for (sub, &c) in choice.iter().enumerate() {
                let paths: Vec<usize> = forest.paths_of_subnet(sub).collect();
                let p = paths[c.min(paths.len() - 1)];
                for &e in forest.path_edges(p) {
                    demand[e as usize] += 1.0;
                }
            }
            let ov: f64 = demand
                .iter()
                .zip(cap)
                .map(|(&d, &c)| ((d - c).max(0.0)) as f64)
                .sum();
            best = best.min(ov);
            // advance the mixed-radix counter
            let mut k = 0;
            loop {
                if k == s {
                    return Ok(best);
                }
                let radix = forest.paths_of_subnet(k).len();
                choice[k] += 1;
                if choice[k] < radix {
                    break;
                }
                choice[k] = 0;
                k += 1;
            }
        }
    }
}

fn components<'f>(design: &Design, forest: &'f DagForest) -> Vec<Component<'f>> {
    let n = forest.num_nets();
    let boxes: Vec<Option<Rect>> = design
        .nets
        .iter()
        .map(|net| {
            if net.pins.is_empty() {
                None
            } else {
                Some(Rect::bounding(&net.pins))
            }
        })
        .collect();
    // Union-find over nets by bbox overlap. Small instances use the exact
    // O(n²) pairwise test (tightest decomposition); large instances union
    // through fine spatial buckets — conservative (same-bucket nets may
    // not actually overlap) but always *valid*: a component can only
    // grow, never split two interacting nets apart. O(n·buckets-per-net).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    if n <= 2000 {
        #[allow(clippy::needless_range_loop)] // pairwise i<j sweep
        for i in 0..n {
            let Some(bi) = boxes[i] else { continue };
            for j in i + 1..n {
                let Some(bj) = boxes[j] else { continue };
                let overlap = bi.lo.x <= bj.hi.x
                    && bj.lo.x <= bi.hi.x
                    && bi.lo.y <= bj.hi.y
                    && bj.lo.y <= bi.hi.y;
                if overlap {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
    } else {
        const BUCKET: i32 = 4;
        let mut bucket_owner: std::collections::HashMap<(i32, i32), usize> = Default::default();
        for (i, bx) in boxes.iter().enumerate() {
            let Some(b) = bx else { continue };
            for by in (b.lo.y / BUCKET)..=(b.hi.y / BUCKET) {
                for bxx in (b.lo.x / BUCKET)..=(b.hi.x / BUCKET) {
                    match bucket_owner.entry((bxx, by)) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            let (ri, rj) = (find(&mut parent, i), find(&mut parent, *e.get()));
                            if ri != rj {
                                parent[ri] = rj;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(i);
                        }
                    }
                }
            }
        }
    }
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for net in 0..n {
        let root = find(&mut parent, net);
        let subnets: Vec<usize> = forest
            .trees_of_net(net)
            .flat_map(|t| forest.subnets_of_tree(t))
            .collect();
        groups.entry(root).or_default().extend(subnets);
    }
    groups
        .into_values()
        .filter(|s| !s.is_empty())
        .map(|subnets| Component { subnets, forest })
        .collect()
}

/// DFS branch-and-bound over one component. Returns
/// `(optimal overflow, nodes, proven)`. All demand commitments are
/// unwound before returning, so `demand` comes back unchanged.
///
/// Assumes non-negative capacities (true for every synthetic protocol):
/// with `cap ≥ 0` the telescoped marginals equal the final overflow.
fn solve_component(
    comp: &Component<'_>,
    cap: &[f32],
    demand: &mut [f32],
    deadline: Instant,
) -> (f64, u64, bool) {
    let forest = comp.forest;
    let subs = &comp.subnets;
    let mut nodes = 0u64;
    let mut proven = true;

    // greedy incumbent: cheapest marginal per subnet in order
    let mut best = {
        let mut greedy_choice = Vec::with_capacity(subs.len());
        for &s in subs {
            let mut best_p = None;
            let mut best_m = f64::INFINITY;
            for p in forest.paths_of_subnet(s) {
                let m = marginal(forest, p, cap, demand);
                if m < best_m {
                    best_m = m;
                    best_p = Some(p);
                }
            }
            let p = best_p.expect("subnet has paths");
            commit(forest, p, demand, 1.0);
            greedy_choice.push(p);
        }
        let incumbent = overflow_of(subs, forest, &greedy_choice, cap, demand);
        for &p in &greedy_choice {
            commit(forest, p, demand, -1.0);
        }
        incumbent
    };

    // DFS stack: (depth, committed overflow, remaining set as index list)
    struct Frame {
        remaining: Vec<usize>,
        tried: Vec<usize>, // paths committed along this branch, for undo
        committed: f64,
        next_choices: Vec<usize>, // paths of the chosen subnet, cheap first
    }
    fn choose_subnet(
        forest: &DagForest,
        remaining: &[usize],
        cap: &[f32],
        demand: &[f32],
    ) -> (usize, Vec<usize>, f64) {
        // pick the subnet with the largest spread between its choices
        let mut pick = 0usize;
        let mut pick_paths = Vec::new();
        let mut pick_spread = -1.0f64;
        let mut lb_sum = 0.0f64;
        for (k, &s) in remaining.iter().enumerate() {
            let mut paths: Vec<usize> = forest.paths_of_subnet(s).collect();
            let mut margs: Vec<f64> = paths
                .iter()
                .map(|&p| marginal(forest, p, cap, demand))
                .collect();
            // sort choices cheap-first
            let mut order: Vec<usize> = (0..paths.len()).collect();
            order.sort_by(|&a, &b| margs[a].total_cmp(&margs[b]));
            paths = order.iter().map(|&i| paths[i]).collect();
            margs.sort_by(f64::total_cmp);
            lb_sum += margs[0];
            let spread = margs.last().expect("non-empty") - margs[0];
            if spread > pick_spread {
                pick_spread = spread;
                pick = k;
                pick_paths = paths;
            }
        }
        (pick, pick_paths, lb_sum)
    }

    let mut stack: Vec<Frame> = Vec::new();
    let (k, choices, lb) = choose_subnet(forest, subs, cap, demand);
    if lb >= best {
        return (best, nodes, proven);
    }
    let mut first_remaining = subs.clone();
    first_remaining.swap_remove(k);
    stack.push(Frame {
        remaining: first_remaining,
        tried: Vec::new(),
        committed: 0.0,
        next_choices: choices,
    });

    while let Some(frame) = stack.last_mut() {
        if Instant::now() > deadline {
            proven = false;
            break;
        }
        let Some(p) = frame.next_choices.pop() else {
            // undo this frame's committed path (if any) and pop
            if let Some(p) = frame.tried.pop() {
                commit(forest, p, demand, -1.0);
            }
            stack.pop();
            // also undo the parent's committed path transition: handled by
            // parent frames owning their own `tried` entries
            continue;
        };
        nodes += 1;
        // undo previously committed sibling of this frame
        if let Some(prev) = frame.tried.pop() {
            commit(forest, prev, demand, -1.0);
        }
        let add = marginal(forest, p, cap, demand);
        commit(forest, p, demand, 1.0);
        frame.tried.push(p);
        let committed = frame.committed + add;
        let remaining = frame.remaining.clone();
        if remaining.is_empty() {
            if committed < best {
                best = committed;
            }
            continue;
        }
        let (k, choices, lb) = choose_subnet(forest, &remaining, cap, demand);
        if committed + lb >= best {
            continue; // pruned; sibling will undo on next iteration
        }
        let mut rest = remaining;
        rest.swap_remove(k);
        stack.push(Frame {
            remaining: rest,
            tried: Vec::new(),
            committed,
            next_choices: choices,
        });
    }
    // unwind any residual commitments after a break
    while let Some(mut frame) = stack.pop() {
        if let Some(p) = frame.tried.pop() {
            commit(forest, p, demand, -1.0);
        }
    }
    (best, nodes, proven)
}

fn marginal(forest: &DagForest, path: usize, cap: &[f32], demand: &[f32]) -> f64 {
    forest
        .path_edges(path)
        .iter()
        .map(|&e| {
            let (d, c) = (demand[e as usize], cap[e as usize]);
            (((d + 1.0 - c).max(0.0) - (d - c).max(0.0)) as f64).max(0.0)
        })
        .sum()
}

fn commit(forest: &DagForest, path: usize, demand: &mut [f32], sign: f32) {
    for &e in forest.path_edges(path) {
        demand[e as usize] += sign;
    }
}

fn overflow_of(
    _subs: &[usize],
    forest: &DagForest,
    choices: &[usize],
    cap: &[f32],
    base: &[f32],
) -> f64 {
    // `base` already contains the committed demand for `choices`; compute
    // overflow restricted to the edges those choices touch plus base.
    let mut touched: Vec<u32> = choices
        .iter()
        .flat_map(|&p| forest.path_edges(p).iter().copied())
        .collect();
    touched.sort_unstable();
    touched.dedup();
    touched
        .iter()
        .map(|&e| ((base[e as usize] - cap[e as usize]).max(0.0)) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::{CapacityBuilder, GcellGrid, Net, Point};

    fn design(tracks: f32, nets: Vec<Net>) -> Design {
        let grid = GcellGrid::new(12, 12).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks)
            .build(&grid)
            .unwrap();
        Design::new(grid, cap, nets, 1).unwrap()
    }

    #[test]
    fn single_net_has_zero_overflow() {
        let d = design(
            1.0,
            vec![Net::new("a", vec![Point::new(0, 0), Point::new(5, 5)])],
        );
        let r = IlpSolver::default().solve(&d).unwrap();
        assert_eq!(r.overflow, 0.0);
        assert_eq!(r.status, IlpStatus::Optimal);
    }

    #[test]
    fn two_conflicting_nets_can_separate() {
        // identical pins, cap 1: optimal = route on opposite Ls → 0 overflow
        let d = design(
            1.0,
            vec![
                Net::new("a", vec![Point::new(1, 1), Point::new(6, 6)]),
                Net::new("b", vec![Point::new(1, 1), Point::new(6, 6)]),
            ],
        );
        let r = IlpSolver::default().solve(&d).unwrap();
        assert_eq!(r.overflow, 0.0);
        assert_eq!(r.status, IlpStatus::Optimal);
    }

    #[test]
    fn three_identical_nets_must_overflow() {
        // three wires, two L corridors of cap 1 → at least one corridor
        // carries 2: overflow = manhattan distance (10 shared edges × 1)
        let d = design(
            1.0,
            vec![
                Net::new("a", vec![Point::new(1, 1), Point::new(6, 6)]),
                Net::new("b", vec![Point::new(1, 1), Point::new(6, 6)]),
                Net::new("c", vec![Point::new(1, 1), Point::new(6, 6)]),
            ],
        );
        let r = IlpSolver::default().solve(&d).unwrap();
        let bf = IlpSolver::default().brute_force(&d).unwrap();
        assert_eq!(r.overflow, bf);
        assert_eq!(r.status, IlpStatus::Optimal);
        assert!(r.overflow > 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for case in 0..6 {
            let mut nets = Vec::new();
            for i in 0..5 {
                let x = rng.gen_range(0..6);
                let y = rng.gen_range(0..6);
                let pins = vec![
                    Point::new(x, y),
                    Point::new(x + rng.gen_range(1..5), y + rng.gen_range(1..5)),
                ];
                nets.push(Net::new(format!("n{i}"), pins));
            }
            let d = design(1.0, nets);
            let bnb = IlpSolver::default().solve(&d).unwrap();
            let bf = IlpSolver::default().brute_force(&d).unwrap();
            assert!(
                (bnb.overflow - bf).abs() < 1e-6,
                "case {case}: bnb {} vs brute force {}",
                bnb.overflow,
                bf
            );
            assert_eq!(bnb.status, IlpStatus::Optimal);
        }
    }

    #[test]
    fn timeout_reports_incumbent() {
        // a dense instance with an impossible 0-second budget still
        // returns a finite upper bound
        let mut nets = Vec::new();
        for i in 0..12 {
            nets.push(Net::new(
                format!("n{i}"),
                vec![Point::new(0, i % 6), Point::new(8, (i * 3) % 9 + 1)],
            ));
        }
        let d = design(1.0, nets);
        let r = IlpSolver::new(Duration::from_secs(0)).solve(&d).unwrap();
        assert!(r.overflow.is_finite());
    }

    #[test]
    fn disjoint_nets_decompose() {
        // far-apart nets: component decomposition keeps node count tiny
        let d = design(
            1.0,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(2, 2)]),
                Net::new("b", vec![Point::new(8, 8), Point::new(10, 10)]),
            ],
        );
        let r = IlpSolver::default().solve(&d).unwrap();
        assert_eq!(r.overflow, 0.0);
        assert!(r.nodes <= 8, "expected tiny search, got {} nodes", r.nodes);
    }
}
