//! A Lagrangian-relaxation pathfinding router (Table 3 baseline).
//!
//! Stand-in for the pathfinding model of Yao et al. (DAC'23): capacity
//! constraints are dualized with per-edge multipliers `λ_e ≥ 0`. Each
//! round routes every net independently by shortest path under the cost
//! `1 + λ_e`, then updates the multipliers by projected subgradient
//! ascent, `λ_e ← max(0, λ_e + η·(d_e − cap_e))`. The final pass routes
//! nets *sequentially* against the converged multipliers plus a hard
//! overflow marginal, which turns the dual solution into a feasible-ish
//! primal one.

use dgr_core::{NetRoute, RoutePath, RoutingSolution, SolutionMetrics};
use dgr_grid::{DemandMap, Design, Rect};

use crate::cost::overflow_marginal;
use crate::maze::{maze_route, MazeConfig};
use crate::BaselineError;

/// Tuning knobs of the Lagrangian router.
#[derive(Debug, Clone)]
pub struct LagrangianConfig {
    /// Dual (multiplier-update) rounds.
    pub rounds: usize,
    /// Initial subgradient step size; decays as `η / √round`.
    pub step: f32,
    /// Turn cost in the maze search.
    pub turn_cost: f32,
    /// Maze window inflation around each sub-net's bounding box.
    pub margin: i32,
}

impl Default for LagrangianConfig {
    fn default() -> Self {
        LagrangianConfig {
            rounds: 8,
            step: 0.5,
            turn_cost: 1.0,
            margin: 8,
        }
    }
}

/// The Lagrangian-relaxation baseline. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct LagrangianRouter {
    config: LagrangianConfig,
}

impl LagrangianRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: LagrangianConfig) -> Self {
        LagrangianRouter { config }
    }

    /// Routes `design` and returns the 2D solution.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Unroutable`] when a sub-net cannot be
    /// connected, or propagates construction errors.
    pub fn route(&self, design: &Design) -> Result<RoutingSolution, BaselineError> {
        let grid = &design.grid;
        let mut trees = Vec::with_capacity(design.nets.len());
        for net in &design.nets {
            trees.push(dgr_rsmt::rsmt(&net.pins)?);
        }

        let mut lambda = vec![0.0f32; grid.num_edges()];
        for round in 0..self.config.rounds {
            // independent routing under dual costs
            let mut demand = DemandMap::new(grid);
            for (n, tree) in trees.iter().enumerate() {
                for (a, b) in tree.subnets() {
                    let cfg = MazeConfig {
                        bounds: Some(
                            Rect::bounding(&[a, b])
                                .inflate_clamped(self.config.margin, grid.bounds()),
                        ),
                        turn_cost: self.config.turn_cost,
                    };
                    let corners = maze_route(grid, a, b, |e| 1.0 + lambda[e.index()], &cfg)
                        .ok_or(BaselineError::Unroutable { net: n })?;
                    for w in corners.windows(2) {
                        demand
                            .add_segment(grid, w[0], w[1])
                            .map_err(BaselineError::Grid)?;
                    }
                }
            }
            // projected subgradient step
            let eta = self.config.step / ((round + 1) as f32).sqrt();
            for e in grid.edge_ids() {
                let violation = demand.wire(e) - design.capacity.capacity(e);
                lambda[e.index()] = (lambda[e.index()] + eta * violation).max(0.0);
            }
        }

        // primal pass: sequential with hard overflow marginal on top of λ
        let cap = &design.capacity;
        let mut demand = DemandMap::new(grid);
        let mut routes: Vec<Vec<RoutePath>> = vec![Vec::new(); design.nets.len()];
        let mut order: Vec<usize> = (0..design.nets.len()).collect();
        order.sort_by_key(|&n| {
            let pins = &design.nets[n].pins;
            if pins.is_empty() {
                0
            } else {
                Rect::bounding(pins).half_perimeter()
            }
        });
        for &n in &order {
            let mut paths = Vec::new();
            for (a, b) in trees[n].subnets() {
                let cfg = MazeConfig {
                    bounds: Some(
                        Rect::bounding(&[a, b]).inflate_clamped(self.config.margin, grid.bounds()),
                    ),
                    turn_cost: self.config.turn_cost,
                };
                let cost_fn = |e: dgr_grid::EdgeId| {
                    1.0 + lambda[e.index()] + 1000.0 * overflow_marginal(grid, cap, &demand, e)
                };
                // windowed search, escalating to the full grid when the
                // window cannot avoid overflow
                let corners = maze_route(grid, a, b, cost_fn, &cfg)
                    .filter(|corners| {
                        !crate::sequential::corners_overflow(grid, cap, &demand, corners)
                            .unwrap_or(true)
                    })
                    .or_else(|| {
                        maze_route(
                            grid,
                            a,
                            b,
                            cost_fn,
                            &MazeConfig {
                                bounds: None,
                                turn_cost: self.config.turn_cost,
                            },
                        )
                    })
                    .ok_or(BaselineError::Unroutable { net: n })?;
                let path = RoutePath { corners };
                for w in path.corners.windows(2) {
                    demand
                        .add_segment(grid, w[0], w[1])
                        .map_err(BaselineError::Grid)?;
                }
                let k = path.corners.len();
                if k > 2 {
                    for c in &path.corners[1..k - 1] {
                        demand.add_turn(grid, *c).map_err(BaselineError::Grid)?;
                    }
                }
                paths.push(path);
            }
            routes[n] = paths;
        }

        let mut solution = RoutingSolution {
            routes: routes
                .into_iter()
                .enumerate()
                .map(|(net, paths)| NetRoute {
                    net,
                    tree: 0,
                    paths,
                })
                .collect(),
            demand,
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        solution.remeasure(design).map_err(BaselineError::Grid)?;
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::{CapacityBuilder, GcellGrid, Net, Point};

    fn design(tracks: f32, nets: Vec<Net>) -> Design {
        let grid = GcellGrid::new(12, 12).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks)
            .build(&grid)
            .unwrap();
        Design::new(grid, cap, nets, 5).unwrap()
    }

    #[test]
    fn routes_without_overflow_when_capacity_allows() {
        let d = design(
            2.0,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(9, 9)]),
                Net::new("b", vec![Point::new(9, 0), Point::new(0, 9)]),
            ],
        );
        let sol = LagrangianRouter::default().route(&d).unwrap();
        assert_eq!(sol.routes.len(), 2);
        assert_eq!(sol.metrics.overflow.overflowed_edges, 0);
    }

    #[test]
    fn multipliers_spread_congested_nets() {
        // four identical nets, capacity 2: two fit straight on row 5, the
        // other two must fan out to neighbouring rows (1 wire + 0.5 corner
        // via pressure = 1.5 ≤ 2 on the detour rows)
        let nets: Vec<Net> = (0..4)
            .map(|i| Net::new(format!("n{i}"), vec![Point::new(1, 5), Point::new(10, 5)]))
            .collect();
        let d = design(2.0, nets);
        let sol = LagrangianRouter::default().route(&d).unwrap();
        assert_eq!(
            sol.metrics.overflow.overflowed_edges, 0,
            "parallel tracks exist within the window"
        );
        // fanning out costs wirelength: strictly more than 4 × 9
        assert!(sol.metrics.total_wirelength > 36);
    }

    #[test]
    fn multi_pin_nets_are_fully_connected() {
        let pins = vec![Point::new(0, 0), Point::new(11, 0), Point::new(5, 11)];
        let d = design(2.0, vec![Net::new("m", pins.clone())]);
        let sol = LagrangianRouter::default().route(&d).unwrap();
        for pin in &pins {
            let covered = sol.routes[0]
                .paths
                .iter()
                .any(|p| p.corners.first() == Some(pin) || p.corners.last() == Some(pin));
            assert!(covered, "pin {pin} is not connected");
        }
    }
}
