//! Maze routing — re-exported from [`dgr_grid::maze`].
//!
//! The Dijkstra engine originally lived here; it moved into `dgr-grid`
//! so that the core router's adaptive forest expansion can use it
//! without a dependency cycle. This alias keeps the historical
//! `dgr_baseline::maze` path working.

pub use dgr_grid::maze::{compress_corners, maze_route, MazeConfig};
