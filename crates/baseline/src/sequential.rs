//! A CUGR2-style sequential pattern router with rip-up-and-reroute.
//!
//! This is the reproduction's stand-in for CUGR2 (Liu & Young, DAC'23) in
//! Table 2 and Fig. 5a:
//!
//! 1. **Pattern routing** — nets are routed one at a time (smallest
//!    bounding box first); each 2-pin sub-net picks the L-/Z-pattern with
//!    the lowest logistic congestion cost against the demand committed so
//!    far.
//! 2. **Rip-up and reroute (RRR)** — nets crossing overflowed edges are
//!    ripped up and rerouted with progressively sharper congestion costs;
//!    sub-nets that still overflow fall back to maze routing inside an
//!    inflated bounding box.
//!
//! Like the original, solution quality depends on net ordering and it can
//! stagnate in local minima — exactly the weakness DGR's concurrent
//! optimization targets (and what Table 2 measures).

use dgr_core::{NetRoute, RoutePath, RoutingSolution, SolutionMetrics};
use dgr_dag::enumerate_paths;
use dgr_grid::{DemandMap, Design, Point, Rect};
use dgr_rsmt::RoutingTree;

use crate::cost::{logistic_cost, overflow_marginal};
use crate::maze::{maze_route, MazeConfig};
use crate::BaselineError;

/// Tuning knobs of the sequential router.
#[derive(Debug, Clone)]
pub struct SequentialConfig {
    /// Maximum rip-up-and-reroute rounds after the initial pass.
    pub rrr_rounds: usize,
    /// Logistic congestion cost magnitude.
    pub logistic_slope: f32,
    /// Logistic congestion cost sharpness.
    pub logistic_alpha: f32,
    /// Cost charged per turning point (via proxy).
    pub via_cost: f32,
    /// Z-pattern stride for the pattern stage (`None` = L only).
    pub z_stride: Option<u32>,
    /// Enable maze fallback for sub-nets that still overflow after
    /// pattern rerouting.
    pub maze_fallback: bool,
    /// Bounding-box inflation (g-cells) for the maze search window.
    pub maze_margin: i32,
}

impl Default for SequentialConfig {
    fn default() -> Self {
        SequentialConfig {
            rrr_rounds: 3,
            logistic_slope: 8.0,
            logistic_alpha: 1.5,
            via_cost: 2.0,
            z_stride: Some(4),
            maze_fallback: true,
            maze_margin: 6,
        }
    }
}

/// The sequential baseline router. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct SequentialRouter {
    config: SequentialConfig,
}

impl SequentialRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: SequentialConfig) -> Self {
        SequentialRouter { config }
    }

    /// Routes `design` sequentially and returns the 2D solution.
    ///
    /// # Errors
    ///
    /// Propagates tree-construction and grid errors; returns
    /// [`BaselineError::Unroutable`] if maze fallback cannot connect a
    /// sub-net (only possible with zero-capacity cuts).
    pub fn route(&self, design: &Design) -> Result<RoutingSolution, BaselineError> {
        let grid = &design.grid;
        let mut demand = DemandMap::new(grid);

        // trees once per net
        let mut trees: Vec<RoutingTree> = Vec::with_capacity(design.nets.len());
        for net in &design.nets {
            trees.push(dgr_rsmt::rsmt(&net.pins)?);
        }

        // order: small bounding boxes first (they have the least freedom)
        let mut order: Vec<usize> = (0..design.nets.len()).collect();
        order.sort_by_key(|&n| {
            let pins = &design.nets[n].pins;
            if pins.is_empty() {
                0
            } else {
                Rect::bounding(pins).half_perimeter()
            }
        });

        let mut routes: Vec<Vec<RoutePath>> = vec![Vec::new(); design.nets.len()];
        for &n in &order {
            let paths = self.route_net(design, &trees[n], &mut demand, false)?;
            routes[n] = paths;
        }

        // rip-up and reroute rounds
        for round in 0..self.config.rrr_rounds {
            let victims = self.overflowed_nets(design, &demand, &routes);
            if victims.is_empty() {
                break;
            }
            let maze = self.config.maze_fallback && round + 1 == self.config.rrr_rounds.max(1);
            for &n in &victims {
                self.rip_up(grid, &routes[n], &mut demand)?;
                routes[n] = self.route_net(design, &trees[n], &mut demand, maze || round > 0)?;
            }
        }

        let mut solution = RoutingSolution {
            routes: routes
                .into_iter()
                .enumerate()
                .map(|(net, paths)| NetRoute {
                    net,
                    tree: 0,
                    paths,
                })
                .collect(),
            demand,
            metrics: SolutionMetrics {
                total_wirelength: 0,
                total_turns: 0,
                overflow: Default::default(),
            },
            train_report: None,
        };
        solution.remeasure(design).map_err(BaselineError::Grid)?;
        Ok(solution)
    }

    fn route_net(
        &self,
        design: &Design,
        tree: &RoutingTree,
        demand: &mut DemandMap,
        allow_maze: bool,
    ) -> Result<Vec<RoutePath>, BaselineError> {
        let grid = &design.grid;
        let cap = &design.capacity;
        let mut out = Vec::new();
        for (a, b) in tree.subnets() {
            // pattern candidates under the current congestion
            let mut best: Option<(f32, RoutePath)> = None;
            for path in enumerate_paths(a, b, self.config.z_stride) {
                let mut cost = self.config.via_cost * path.num_turns() as f32;
                let edges = path.edges(grid)?;
                for e in &edges {
                    cost += logistic_cost(
                        grid,
                        cap,
                        demand,
                        *e,
                        self.config.logistic_slope,
                        self.config.logistic_alpha,
                    );
                }
                if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((
                        cost,
                        RoutePath {
                            corners: corners_of(&path),
                        },
                    ));
                }
            }
            let (pattern_cost, mut chosen) = best.expect("patterns are never empty");

            if allow_maze {
                // maze fallback when the best pattern still overflows
                let pattern_overflows = chosen.corners.windows(2).try_fold(
                    false,
                    |acc, w| -> Result<bool, BaselineError> {
                        let mut edges = Vec::new();
                        grid.push_segment_edges(w[0], w[1], &mut edges)?;
                        Ok(acc
                            || edges
                                .iter()
                                .any(|&e| overflow_marginal(grid, cap, demand, e) > 0.0))
                    },
                )?;
                if pattern_overflows {
                    let slope = self.config.logistic_slope;
                    let alpha = self.config.logistic_alpha;
                    let windowed = MazeConfig {
                        bounds: Some(
                            Rect::bounding(&[a, b])
                                .inflate_clamped(self.config.maze_margin, grid.bounds()),
                        ),
                        turn_cost: self.config.via_cost,
                    };
                    let cost_fn = |e| {
                        logistic_cost(grid, cap, demand, e, slope, alpha)
                            + 1000.0 * overflow_marginal(grid, cap, demand, e)
                    };
                    // escalate to a full-grid search when the window's best
                    // still rides overflowed edges (far detours)
                    let candidate = maze_route(grid, a, b, cost_fn, &windowed)
                        .filter(|corners| {
                            !corners_overflow(grid, cap, demand, corners).unwrap_or(true)
                        })
                        .or_else(|| {
                            maze_route(
                                grid,
                                a,
                                b,
                                cost_fn,
                                &MazeConfig {
                                    bounds: None,
                                    turn_cost: self.config.via_cost,
                                },
                            )
                        });
                    if let Some(corners) = candidate {
                        let maze_path = RoutePath { corners };
                        // only adopt the maze route when it avoids overflow
                        // better than the pattern (cost comparison)
                        let mut maze_cost = self.config.via_cost * maze_path.num_turns() as f32;
                        for w in maze_path.corners.windows(2) {
                            let mut edges = Vec::new();
                            grid.push_segment_edges(w[0], w[1], &mut edges)?;
                            for e in edges {
                                maze_cost += logistic_cost(grid, cap, demand, e, slope, alpha)
                                    + 1000.0 * overflow_marginal(grid, cap, demand, e);
                            }
                        }
                        let mut pattern_cost_ov = pattern_cost;
                        for w in chosen.corners.windows(2) {
                            let mut edges = Vec::new();
                            grid.push_segment_edges(w[0], w[1], &mut edges)?;
                            for e in edges {
                                pattern_cost_ov += 1000.0 * overflow_marginal(grid, cap, demand, e);
                            }
                        }
                        if maze_cost < pattern_cost_ov {
                            chosen = maze_path;
                        }
                    }
                }
            }

            // commit
            for w in chosen.corners.windows(2) {
                demand
                    .add_segment(grid, w[0], w[1])
                    .map_err(BaselineError::Grid)?;
            }
            let k = chosen.corners.len();
            if k > 2 {
                for c in &chosen.corners[1..k - 1] {
                    demand.add_turn(grid, *c).map_err(BaselineError::Grid)?;
                }
            }
            out.push(chosen);
        }
        Ok(out)
    }

    fn rip_up(
        &self,
        grid: &dgr_grid::GcellGrid,
        paths: &[RoutePath],
        demand: &mut DemandMap,
    ) -> Result<(), BaselineError> {
        for path in paths {
            for w in path.corners.windows(2) {
                demand
                    .remove_segment(grid, w[0], w[1])
                    .map_err(BaselineError::Grid)?;
            }
            let k = path.corners.len();
            if k > 2 {
                for c in &path.corners[1..k - 1] {
                    demand.remove_turn(grid, *c).map_err(BaselineError::Grid)?;
                }
            }
        }
        Ok(())
    }

    fn overflowed_nets(
        &self,
        design: &Design,
        demand: &DemandMap,
        routes: &[Vec<RoutePath>],
    ) -> Vec<usize> {
        let grid = &design.grid;
        let cap = &design.capacity;
        let over: Vec<bool> = grid
            .edge_ids()
            .map(|e| demand.total(grid, cap, e) > cap.capacity(e) + 1e-4)
            .collect();
        let mut victims = Vec::new();
        for (n, paths) in routes.iter().enumerate() {
            let hit = paths.iter().any(|p| {
                p.corners.windows(2).any(|w| {
                    let mut edges = Vec::new();
                    grid.push_segment_edges(w[0], w[1], &mut edges)
                        .map(|()| edges.iter().any(|e| over[e.index()]))
                        .unwrap_or(false)
                })
            });
            if hit {
                victims.push(n);
            }
        }
        victims
    }
}

/// Whether a corner polyline touches any edge whose marginal overflow is
/// positive under the current demand.
pub(crate) fn corners_overflow(
    grid: &dgr_grid::GcellGrid,
    cap: &dgr_grid::CapacityModel,
    demand: &DemandMap,
    corners: &[Point],
) -> Result<bool, BaselineError> {
    for w in corners.windows(2) {
        let mut edges = Vec::new();
        grid.push_segment_edges(w[0], w[1], &mut edges)?;
        if edges
            .iter()
            .any(|&e| overflow_marginal(grid, cap, demand, e) > 0.0)
        {
            return Ok(true);
        }
    }
    Ok(false)
}

fn corners_of(path: &dgr_dag::PatternPath) -> Vec<Point> {
    let mut corners = vec![path.source()];
    corners.extend(path.turning_points());
    if path.sink() != path.source() {
        corners.push(path.sink());
    }
    corners
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::{CapacityBuilder, GcellGrid, Net};

    fn design(tracks: f32, nets: Vec<Net>) -> Design {
        let grid = GcellGrid::new(12, 12).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks)
            .build(&grid)
            .unwrap();
        Design::new(grid, cap, nets, 5).unwrap()
    }

    #[test]
    fn routes_simple_design_without_overflow() {
        let d = design(
            4.0,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(8, 6)]),
                Net::new(
                    "b",
                    vec![Point::new(2, 9), Point::new(9, 2), Point::new(5, 5)],
                ),
            ],
        );
        let sol = SequentialRouter::default().route(&d).unwrap();
        assert_eq!(sol.routes.len(), 2);
        assert_eq!(sol.metrics.overflow.overflowed_edges, 0);
        assert!(sol.metrics.total_wirelength >= 14);
    }

    #[test]
    fn separates_conflicting_nets() {
        // capacity 1.6: overlapped Ls give 2.0 wire > 1.6, separated Ls
        // give 1.0 wire + 0.5 corner via pressure = 1.5 ≤ 1.6
        let d = design(
            1.6,
            vec![
                Net::new("a", vec![Point::new(1, 1), Point::new(8, 8)]),
                Net::new("b", vec![Point::new(1, 1), Point::new(8, 8)]),
            ],
        );
        let sol = SequentialRouter::default().route(&d).unwrap();
        assert_eq!(
            sol.metrics.overflow.overflowed_edges, 0,
            "RRR should separate the two nets"
        );
    }

    #[test]
    fn maze_fallback_escapes_pattern_deadlock() {
        // a capacity wall across the middle forces non-pattern detours
        let grid = GcellGrid::new(12, 12).unwrap();
        let mut b = CapacityBuilder::uniform(&grid, 2.0);
        // the wall spans rows 0..=6, leaving row 7 inside the default
        // maze window (bbox inflated by 6) as the detour corridor
        b.scale_region(&grid, Rect::new(Point::new(4, 0), Point::new(6, 6)), 0.0);
        let cap = b.build(&grid).unwrap();
        let d = Design::new(
            grid,
            cap,
            vec![Net::new("a", vec![Point::new(1, 1), Point::new(10, 1)])],
            5,
        )
        .unwrap();
        let sol = SequentialRouter::default().route(&d).unwrap();
        // the wall leaves rows 10-11 open: the route must detour
        assert_eq!(sol.metrics.overflow.overflowed_edges, 0);
        assert!(sol.metrics.total_wirelength > 9);
    }

    #[test]
    fn single_pin_and_empty_paths() {
        let d = design(2.0, vec![Net::new("p", vec![Point::new(3, 3)])]);
        let sol = SequentialRouter::default().route(&d).unwrap();
        assert_eq!(sol.routes[0].paths.len(), 0);
        assert_eq!(sol.metrics.total_wirelength, 0);
    }

    #[test]
    fn multi_pin_net_spans_all_pins() {
        let pins = vec![
            Point::new(0, 0),
            Point::new(10, 2),
            Point::new(4, 9),
            Point::new(7, 5),
        ];
        let d = design(3.0, vec![Net::new("m", pins.clone())]);
        let sol = SequentialRouter::default().route(&d).unwrap();
        // every pin must appear as an endpoint of some path
        for pin in &pins {
            let covered = sol.routes[0]
                .paths
                .iter()
                .any(|p| p.corners.first() == Some(pin) || p.corners.last() == Some(pin));
            assert!(covered, "pin {pin} is not connected");
        }
    }
}
