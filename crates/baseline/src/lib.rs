#![warn(missing_docs)]

//! Baseline global routers the paper compares DGR against.
//!
//! Each baseline reimplements the *algorithmic core* of a published router
//! so the comparison tables can be regenerated on the same substrate:
//!
//! * [`ilp`] — an **exact branch-and-bound** solver over L-shape choices
//!   (the paper's CVXPY ILP reference, Table 1), with a wall-clock limit
//!   and an admissible convexity-based lower bound,
//! * [`sequential`] — a **CUGR2-style sequential pattern router**: greedy
//!   net-by-net L-shape selection under a logistic congestion cost,
//!   followed by rip-up-and-reroute rounds with maze fallback (Table 2,
//!   Fig. 5a),
//! * [`sproute`] — an **SPRoute 2.0-style soft-capacity maze router**
//!   (Table 3),
//! * [`lagrangian`] — a **Lagrangian-relaxation pathfinding router** in
//!   the spirit of Yao et al. DAC'23 (Table 3),
//! * [`maze`] — the shared Dijkstra maze-routing engine.
//!
//! All routers consume a [`dgr_grid::Design`] and produce a
//! [`dgr_core::RoutingSolution`], so every metric in the experiment
//! harness is computed by exactly the same code for DGR and baselines.

pub mod cost;
pub mod ilp;
pub mod lagrangian;
pub mod maze;
pub mod sequential;
pub mod sproute;

pub use ilp::{IlpResult, IlpSolver, IlpStatus};
pub use lagrangian::LagrangianRouter;
pub use maze::maze_route;
pub use sequential::SequentialRouter;
pub use sproute::SprouteRouter;

/// Errors produced by baseline routers.
#[derive(Debug)]
pub enum BaselineError {
    /// Steiner-tree construction failed.
    Rsmt(dgr_rsmt::RsmtError),
    /// DAG/pattern enumeration failed.
    Dag(dgr_dag::DagError),
    /// Grid-level failure.
    Grid(dgr_grid::GridError),
    /// Maze routing could not connect two pins (disconnected grid region).
    Unroutable {
        /// Index of the offending net.
        net: usize,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Rsmt(e) => write!(f, "tree construction failed: {e}"),
            BaselineError::Dag(e) => write!(f, "pattern enumeration failed: {e}"),
            BaselineError::Grid(e) => write!(f, "grid operation failed: {e}"),
            BaselineError::Unroutable { net } => write!(f, "net {net} is unroutable"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Rsmt(e) => Some(e),
            BaselineError::Dag(e) => Some(e),
            BaselineError::Grid(e) => Some(e),
            BaselineError::Unroutable { .. } => None,
        }
    }
}

impl From<dgr_rsmt::RsmtError> for BaselineError {
    fn from(e: dgr_rsmt::RsmtError) -> Self {
        BaselineError::Rsmt(e)
    }
}

impl From<dgr_dag::DagError> for BaselineError {
    fn from(e: dgr_dag::DagError) -> Self {
        BaselineError::Dag(e)
    }
}

impl From<dgr_grid::GridError> for BaselineError {
    fn from(e: dgr_grid::GridError) -> Self {
        BaselineError::Grid(e)
    }
}
