//! Congestion cost functions shared by the sequential baselines.

use dgr_grid::{CapacityModel, DemandMap, EdgeId, GcellGrid};

/// CUGR2-style logistic wire cost of using edge `e` given the current
/// demand: `1 + slope / (1 + e^{α(cap − d − 1)})`.
///
/// The cost rises smoothly from ~1 (plenty of capacity) to `1 + slope`
/// (already full); `α` controls the sharpness. The `− 1` accounts for the
/// wire about to be added.
///
/// # Examples
///
/// ```
/// use dgr_grid::{CapacityBuilder, DemandMap, GcellGrid};
/// use dgr_baseline::cost::logistic_cost;
///
/// let grid = GcellGrid::new(4, 4)?;
/// let cap = CapacityBuilder::uniform(&grid, 4.0).build(&grid)?;
/// let demand = DemandMap::new(&grid);
/// let e = grid.h_edge(0, 0)?;
/// let free = logistic_cost(&grid, &cap, &demand, e, 8.0, 1.0);
/// assert!(free < 2.0); // nearly unit cost when empty
/// # Ok::<(), dgr_grid::GridError>(())
/// ```
pub fn logistic_cost(
    grid: &GcellGrid,
    cap: &CapacityModel,
    demand: &DemandMap,
    e: EdgeId,
    slope: f32,
    alpha: f32,
) -> f32 {
    let d = demand.total(grid, cap, e);
    let c = cap.capacity(e);
    1.0 + slope / (1.0 + (alpha * (c - d - 1.0)).exp())
}

/// Hard overflow marginal of adding one wire to `e`:
/// `max(0, d + 1 − cap) − max(0, d − cap)`.
pub fn overflow_marginal(
    grid: &GcellGrid,
    cap: &CapacityModel,
    demand: &DemandMap,
    e: EdgeId,
) -> f32 {
    let d = demand.total(grid, cap, e);
    let c = cap.capacity(e);
    (d + 1.0 - c).max(0.0) - (d - c).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::{CapacityBuilder, Point};

    fn setup() -> (GcellGrid, CapacityModel, DemandMap) {
        let g = GcellGrid::new(4, 4).unwrap();
        let cap = CapacityBuilder::uniform(&g, 2.0).build(&g).unwrap();
        (g.clone(), cap, DemandMap::new(&g))
    }

    #[test]
    fn logistic_cost_rises_with_demand() {
        let (g, cap, mut d) = setup();
        let e = g.h_edge(0, 0).unwrap();
        let c0 = logistic_cost(&g, &cap, &d, e, 8.0, 1.0);
        d.add_wire(e, 2.0);
        let c2 = logistic_cost(&g, &cap, &d, e, 8.0, 1.0);
        d.add_wire(e, 2.0);
        let c4 = logistic_cost(&g, &cap, &d, e, 8.0, 1.0);
        assert!(c0 < c2 && c2 < c4);
        assert!(c4 <= 9.0);
    }

    #[test]
    fn overflow_marginal_kicks_in_at_capacity() {
        let (g, cap, mut d) = setup();
        let e = g.h_edge(1, 1).unwrap();
        assert_eq!(overflow_marginal(&g, &cap, &d, e), 0.0);
        d.add_wire(e, 2.0); // at capacity
        assert_eq!(overflow_marginal(&g, &cap, &d, e), 1.0);
        d.add_wire(e, 1.0);
        assert_eq!(overflow_marginal(&g, &cap, &d, e), 1.0);
        let _ = Point::new(0, 0);
    }

    #[test]
    fn marginal_is_fractional_below_capacity_boundary() {
        let (g, cap, mut d) = setup();
        let e = g.h_edge(2, 2).unwrap();
        d.add_wire(e, 1.5);
        // d+1 = 2.5 > 2.0 → marginal 0.5
        assert!((overflow_marginal(&g, &cap, &d, e) - 0.5).abs() < 1e-6);
    }
}
