//! Per-iteration training telemetry: JSONL rows, one per iteration.
//!
//! A [`TelemetrySink`] is an explicit object (not ambient global state —
//! several trainings can run concurrently in tests without interleaving
//! rows). Each [`IterationRow`] serializes to one JSON line with a fixed
//! schema:
//!
//! ```json
//! {"iter":0,"loss":873.2,"wl":512.0,"vias":96.5,"overflow":0.53,
//!  "temperature":1.0,"grad_norm":12.94,"mem_rss":141557760}
//! ```
//!
//! `wl`, `vias` and `overflow` are the three *unweighted* cost terms of
//! Eq. (3) as evaluated on that iteration's forward pass, `grad_norm` is
//! the L2 norm of the logit gradients, and `mem_rss` is the process
//! resident set in bytes. `mem_rss` is `null` — not `0` — whenever RSS is
//! unavailable: on hosts without `/proc/self/status` (macOS, Windows),
//! when sampling is disabled for determinism, or on iterations between
//! sample points before the first sample. Rows written with RSS sampling
//! disabled are byte-deterministic for a fixed seed and thread count —
//! the determinism tests rely on this.

use crate::json::JsonObject;
use crate::sink::LineOut;

/// One training iteration's telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRow {
    /// Iteration index (monotone across adaptive rounds).
    pub iter: usize,
    /// Total loss (Eq. 3, weighted).
    pub loss: f32,
    /// Expected wirelength term (unweighted).
    pub wl: f32,
    /// Expected via term (unweighted, √L-scaled).
    pub vias: f32,
    /// Expected overflow term (unweighted).
    pub overflow: f32,
    /// Gumbel-softmax temperature this iteration.
    pub temperature: f32,
    /// L2 norm of the tree+path logit gradients.
    pub grad_norm: f32,
    /// Process resident set size in bytes; `None` (serialized as JSON
    /// `null`) when the platform cannot report RSS or sampling is off.
    pub mem_rss: Option<u64>,
    /// Batch lane index for `--batch N` runs (`None`/`null` for
    /// single-instance training). Rows from batched training interleave
    /// lanes within each iteration; this field attributes each row.
    pub lane: Option<u64>,
}

impl IterationRow {
    /// Serializes the row as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("iter", self.iter as u64);
        o.field_f32("loss", self.loss);
        o.field_f32("wl", self.wl);
        o.field_f32("vias", self.vias);
        o.field_f32("overflow", self.overflow);
        o.field_f32("temperature", self.temperature);
        o.field_f32("grad_norm", self.grad_norm);
        o.field_opt_u64("mem_rss", self.mem_rss);
        o.field_opt_u64("lane", self.lane);
        o.finish()
    }

    /// The schema keys, in serialization order (used by validators).
    pub const KEYS: [&'static str; 9] = [
        "iter",
        "loss",
        "wl",
        "vias",
        "overflow",
        "temperature",
        "grad_norm",
        "mem_rss",
        "lane",
    ];
}

/// A JSONL telemetry destination (file or in-memory buffer).
pub struct TelemetrySink {
    out: LineOut,
    rows: usize,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("rows", &self.rows)
            .field("kind", &self.out.kind())
            .finish()
    }
}

impl TelemetrySink {
    /// Creates (truncating) a JSONL file sink at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn to_path(path: &str) -> std::io::Result<Self> {
        Ok(TelemetrySink {
            out: LineOut::to_path(path)?,
            rows: 0,
        })
    }

    /// Creates an in-memory sink (tests, determinism checks).
    pub fn in_memory() -> Self {
        TelemetrySink {
            out: LineOut::in_memory(),
            rows: 0,
        }
    }

    /// Appends one row as a JSON line. I/O errors are deliberately
    /// swallowed after the sink is created — telemetry must never abort a
    /// training run.
    pub fn record(&mut self, row: &IterationRow) {
        self.rows += 1;
        self.out.write_line(&row.to_json());
    }

    /// Rows recorded so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Flushes buffered output (no-op for memory sinks).
    pub fn flush(&mut self) {
        self.out.flush();
    }

    /// The accumulated JSONL text of an in-memory sink (`None` for file
    /// sinks).
    pub fn memory_contents(&self) -> Option<&str> {
        self.out.memory_contents()
    }
}

impl Drop for TelemetrySink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(iter: usize) -> IterationRow {
        IterationRow {
            iter,
            loss: 10.5,
            wl: 8.0,
            vias: 2.0,
            overflow: 0.25,
            temperature: 1.0,
            grad_norm: 3.5,
            mem_rss: Some(4096),
            lane: None,
        }
    }

    #[test]
    fn row_serializes_all_schema_keys_in_order() {
        let json = row(7).to_json();
        let mut at = 0;
        for key in IterationRow::KEYS {
            let pos = json.find(&format!("\"{key}\":")).expect(key);
            assert!(pos >= at, "{key} out of order");
            at = pos;
        }
        assert_eq!(
            json,
            r#"{"iter":7,"loss":10.5,"wl":8,"vias":2,"overflow":0.25,"temperature":1,"grad_norm":3.5,"mem_rss":4096,"lane":null}"#
        );
    }

    #[test]
    fn batched_rows_carry_their_lane() {
        let mut r = row(0);
        r.lane = Some(2);
        assert!(r.to_json().ends_with("\"lane\":2}"));
    }

    #[test]
    fn unsampled_rss_serializes_as_null() {
        let mut r = row(0);
        r.mem_rss = None;
        assert!(r.to_json().contains("\"mem_rss\":null"));
    }

    #[test]
    fn non_finite_serializes_as_null() {
        let mut r = row(0);
        r.loss = f32::NAN;
        assert!(r.to_json().contains("\"loss\":null"));
    }

    #[test]
    fn memory_sink_accumulates_lines() {
        let mut sink = TelemetrySink::in_memory();
        sink.record(&row(0));
        sink.record(&row(1));
        assert_eq!(sink.rows(), 2);
        let text = sink.memory_contents().unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let path = std::env::temp_dir().join("dgr_obs_telemetry_test.jsonl");
        let path_s = path.to_str().unwrap();
        {
            let mut sink = TelemetrySink::to_path(path_s).unwrap();
            sink.record(&row(0));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"iter\":0,"));
        assert!(text.ends_with("}\n"));
        let _ = std::fs::remove_file(&path);
    }
}
