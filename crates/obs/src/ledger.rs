//! The persistent run ledger: one content-hashed JSONL record per
//! train/route run, appended to `~/.dgr/ledger.jsonl`.
//!
//! The ledger is what lets runs see each other: `dgr history` renders
//! the recent records as a table with per-run deltas, and
//! `dgr compare --ledger` diffs the per-phase span totals of the last
//! two runs of a design. Records are append-only and self-verifying —
//! each carries an FNV-1a 64 hash of its own body, so replay tooling
//! can detect truncated or hand-edited lines.
//!
//! Resolution order for the ledger path:
//!
//! 1. `DGR_LEDGER=path` — explicit override (tests point this at a
//!    temp file so CLI runs never touch the real ledger),
//! 2. `DGR_LEDGER` set to `off`, `0` or the empty string — disabled,
//! 3. `$HOME/.dgr/ledger.jsonl` — the default (disabled when `$HOME`
//!    is unset).
//!
//! Appends are best-effort: a read-only home directory must never fail
//! a routing run.

use crate::json::JsonObject;
use crate::parse::{parse_jsonl, JsonValue};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Ledger record schema version.
pub const LEDGER_VERSION: u64 = 1;

/// One run's summary record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerRecord {
    /// Schema version ([`LEDGER_VERSION`]).
    pub version: u64,
    /// FNV-1a 64 hash (hex) of the record body minus this field.
    pub hash: String,
    /// Unix timestamp (seconds) the record was written.
    pub ts: u64,
    /// Subcommand: `"route"` or `"train"`.
    pub cmd: String,
    /// Design name (case file stem).
    pub design: String,
    /// Net count of the design.
    pub nets: u64,
    /// FNV-1a 64 hash (hex) of the run configuration — records with
    /// equal fingerprints are directly comparable.
    pub config_fp: String,
    /// Training iterations executed.
    pub iterations: u64,
    /// RNG seed.
    pub seed: u64,
    /// Batch lane count (1 for single-instance runs).
    pub batch: u64,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: u64,
    /// Training iterations per second (bench-style; 0 when no
    /// iterations ran).
    pub it_per_s: f64,
    /// Final training loss.
    pub loss: f64,
    /// Extracted-solution wirelength (g-cell edge units).
    pub wirelength: u64,
    /// Extracted-solution total overflow.
    pub overflow: f64,
    /// Extracted-solution overflowed edge count.
    pub overflowed_edges: u64,
    /// Extracted-solution via/turn count.
    pub vias: u64,
    /// RSMT cache hits over the run.
    pub cache_hits: u64,
    /// RSMT cache misses over the run.
    pub cache_misses: u64,
    /// Inclusive per-phase span totals, milliseconds (`forward`,
    /// `backward`, `extract`, ...).
    pub phases: BTreeMap<String, f64>,
    /// Sentinel health summary: `"ok"` or a comma-joined `rule@iter`
    /// list, worst first. `None` on records written before the field
    /// existed — omitted from the body so old hashes keep verifying.
    pub health: Option<String>,
}

impl LedgerRecord {
    /// Serializes the body fields (everything but `hash`), in schema
    /// order. This is the byte string the hash covers.
    fn body_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("version", self.version);
        o.field_u64("ts", self.ts);
        o.field_str("cmd", &self.cmd);
        o.field_str("design", &self.design);
        o.field_u64("nets", self.nets);
        o.field_str("config_fp", &self.config_fp);
        o.field_u64("iterations", self.iterations);
        o.field_u64("seed", self.seed);
        o.field_u64("batch", self.batch);
        o.field_u64("wall_ms", self.wall_ms);
        o.field_f64("it_per_s", self.it_per_s);
        o.field_f64("loss", self.loss);
        o.field_u64("wirelength", self.wirelength);
        o.field_f64("overflow", self.overflow);
        o.field_u64("overflowed_edges", self.overflowed_edges);
        o.field_u64("vias", self.vias);
        o.field_u64("cache_hits", self.cache_hits);
        o.field_u64("cache_misses", self.cache_misses);
        let mut phases = JsonObject::new();
        for (name, ms) in &self.phases {
            phases.field_f64(name, *ms);
        }
        o.field_raw("phases", &phases.finish());
        if let Some(health) = &self.health {
            o.field_str("health", health);
        }
        o.finish()
    }

    /// Serializes the full record, computing (and storing nothing —
    /// callers persist the returned line) the content hash over the
    /// body bytes. The `hash` field leads so readers can verify with a
    /// simple prefix strip.
    pub fn to_json(&self) -> String {
        let body = self.body_json();
        let hash = fnv1a64(body.as_bytes());
        // splice: {"hash":"...", <body fields>}
        format!("{{\"hash\":\"{hash:016x}\",{}", &body[1..])
    }

    /// RSMT cache hit rate in `[0, 1]` (0 with no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Whether the stored `hash` matches the body bytes.
    pub fn verify(&self) -> bool {
        self.hash == format!("{:016x}", fnv1a64(self.body_json().as_bytes()))
    }

    fn from_value(v: &JsonValue) -> Option<LedgerRecord> {
        let u = |k: &str| v.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
        let f = |k: &str| v.num(k).unwrap_or(0.0);
        let s = |k: &str| v.str(k).unwrap_or("").to_string();
        v.get("version")?;
        let mut phases = BTreeMap::new();
        if let Some(JsonValue::Obj(m)) = v.get("phases") {
            for (name, ms) in m {
                if let Some(ms) = ms.as_f64() {
                    phases.insert(name.clone(), ms);
                }
            }
        }
        Some(LedgerRecord {
            version: u("version"),
            hash: s("hash"),
            ts: u("ts"),
            cmd: s("cmd"),
            design: s("design"),
            nets: u("nets"),
            config_fp: s("config_fp"),
            iterations: u("iterations"),
            seed: u("seed"),
            batch: u("batch"),
            wall_ms: u("wall_ms"),
            it_per_s: f("it_per_s"),
            loss: f("loss"),
            wirelength: u("wirelength"),
            overflow: f("overflow"),
            overflowed_edges: u("overflowed_edges"),
            vias: u("vias"),
            cache_hits: u("cache_hits"),
            cache_misses: u("cache_misses"),
            phases,
            health: v.str("health").map(str::to_string),
        })
    }
}

/// FNV-1a 64-bit hash — the workspace's standard content fingerprint
/// (tiny, deterministic, dependency-free).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The resolved ledger path, or `None` when the ledger is disabled
/// (see the module docs for the resolution order).
pub fn ledger_path() -> Option<PathBuf> {
    match std::env::var("DGR_LEDGER") {
        Ok(v) => {
            let v = v.trim().to_string();
            if v.is_empty() || v == "off" || v == "0" {
                None
            } else {
                Some(PathBuf::from(v))
            }
        }
        Err(_) => std::env::var("HOME")
            .ok()
            .filter(|h| !h.is_empty())
            .map(|h| PathBuf::from(h).join(".dgr").join("ledger.jsonl")),
    }
}

/// Appends `record` to the ledger, creating parent directories as
/// needed. Returns the path written, or `None` when the ledger is
/// disabled or the write failed. Appends stay best-effort by contract —
/// a read-only home must never fail a routing run — but the *first*
/// failure in a process warns on stderr with the path and error, so a
/// silently unwritable ledger is at least visible once.
pub fn append(record: &LedgerRecord) -> Option<PathBuf> {
    let path = ledger_path()?;
    let attempt = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        writeln!(file, "{}", record.to_json())
    };
    match attempt() {
        Ok(()) => Some(path),
        Err(e) => {
            static WARNED: std::sync::atomic::AtomicBool =
                std::sync::atomic::AtomicBool::new(false);
            if !WARNED.swap(true, std::sync::atomic::Ordering::Relaxed) {
                eprintln!(
                    "warning: ledger append to {} failed ({e}); further failures stay silent",
                    path.display()
                );
            }
            None
        }
    }
}

/// Loads every parseable record from the ledger at `path`, oldest
/// first. Malformed lines and unverifiable hashes are skipped rather
/// than fatal — the ledger outlives any single schema.
pub fn load(path: &std::path::Path) -> Vec<LedgerRecord> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    parse(&text)
}

/// [`load`], but from JSONL text (replay tests).
pub fn parse(text: &str) -> Vec<LedgerRecord> {
    let Ok(values) = parse_jsonl(text) else {
        // salvage line-by-line: one corrupt line must not hide the rest
        return text
            .lines()
            .filter_map(|l| crate::parse::parse_json(l).ok())
            .filter_map(|v| LedgerRecord::from_value(&v))
            .filter(LedgerRecord::verify)
            .collect();
    };
    values
        .iter()
        .filter_map(LedgerRecord::from_value)
        .filter(LedgerRecord::verify)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64) -> LedgerRecord {
        let mut phases = BTreeMap::new();
        phases.insert("forward".to_string(), 120.5);
        phases.insert("backward".to_string(), 260.25);
        phases.insert("extract".to_string(), 40.0);
        LedgerRecord {
            version: LEDGER_VERSION,
            hash: String::new(),
            ts: 1_754_000_000,
            cmd: "route".to_string(),
            design: "ispd18_test1".to_string(),
            nets: 450,
            config_fp: "00aabbccddeeff11".to_string(),
            iterations: 120,
            seed,
            batch: 1,
            wall_ms: 900,
            it_per_s: 133.3,
            loss: 812.25,
            wirelength: 5120,
            overflow: 1.5,
            overflowed_edges: 2,
            vias: 96,
            cache_hits: 1,
            cache_misses: 808,
            phases,
            health: None,
        }
    }

    #[test]
    fn append_and_replay_round_trips() {
        let path = std::env::temp_dir().join("dgr_ledger_roundtrip_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let line_a = record(11).to_json();
        let line_b = record(12).to_json();
        std::fs::write(&path, format!("{line_a}\n{line_b}\n")).unwrap();
        let loaded = load(&path);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].seed, 11);
        assert_eq!(loaded[1].seed, 12);
        assert_eq!(loaded[0].phases["backward"], 260.25);
        assert!(loaded.iter().all(LedgerRecord::verify));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(record(7).to_json(), record(7).to_json());
        assert_ne!(record(7).to_json(), record(8).to_json());
    }

    #[test]
    fn tampered_records_fail_verification() {
        let line = record(3).to_json();
        let tampered = line.replace("\"seed\":3", "\"seed\":4");
        assert_ne!(line, tampered);
        assert!(parse(&line).len() == 1);
        assert!(parse(&tampered).is_empty(), "tampered line must not load");
    }

    #[test]
    fn corrupt_lines_do_not_hide_good_ones() {
        let good = record(5).to_json();
        let text = format!("{good}\nnot json at all\n{good}\n");
        assert_eq!(parse(&text).len(), 2);
    }

    #[test]
    fn health_field_round_trips_and_stays_hash_compatible() {
        // a record without health serializes exactly as before the field
        let plain = record(2).to_json();
        assert!(!plain.contains("\"health\""));
        assert!(parse(&plain).len() == 1, "pre-health records still verify");
        // with health set, it's hashed, persisted and re-read
        let mut rec = record(2);
        rec.health = Some("divergence@80,oscillation@95".to_string());
        let line = rec.to_json();
        assert!(line.contains("\"health\":\"divergence@80"));
        let loaded = parse(&line);
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            loaded[0].health.as_deref(),
            Some("divergence@80,oscillation@95")
        );
        // tampering with health breaks the hash like any other field
        let tampered = line.replace("divergence", "divergonce");
        assert!(parse(&tampered).is_empty());
    }

    #[test]
    fn env_override_and_disable() {
        // no DGR_LEDGER in the test env by default: HOME-based or None,
        // never panics
        let _ = ledger_path();
        let rec = record(1);
        let rate = rec.cache_hit_rate();
        assert!((rate - 1.0 / 809.0).abs() < 1e-9);
    }
}
