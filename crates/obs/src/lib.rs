#![warn(missing_docs)]

//! `dgr-obs` — the observability substrate of the DGR reproduction.
//!
//! Training-loop dynamics (loss decomposition, temperature annealing,
//! executor behaviour) are what the paper's quality/runtime story hinges
//! on, so every layer of the pipeline reports into this crate:
//!
//! * [`span`] / [`SpanGuard`] — hierarchical wall-clock span timers with a
//!   thread-safe global registry and Chrome-trace-event JSON export
//!   (loadable in `chrome://tracing` or Perfetto),
//! * [`counter`] / [`gauge`] / [`histogram`] — a metrics registry whose
//!   hot-path recording is a single relaxed atomic op,
//! * [`TelemetrySink`] — a per-iteration training telemetry sink emitting
//!   JSONL rows (`{iter, loss, wl, vias, overflow, temperature,
//!   grad_norm, mem_rss}`),
//! * [`SnapshotSink`] — a spatial congestion-snapshot stream (per-edge
//!   demand/overflow grids plus per-net attribution records) captured at
//!   iteration strides,
//! * [`render_report`] — the deterministic self-contained HTML
//!   post-mortem renderer behind `dgr report`, fed by [`parse`], a
//!   minimal JSON reader for the files the crate itself writes.
//!
//! # Overhead contract
//!
//! Observability is **off by default**. Every recording site first checks
//! [`enabled`] — one relaxed atomic load and a predictable branch — so
//! uninstrumented hot paths (the worker-pool dispatch, the training
//! inner loop) stay branch-predictable and bench-neutral. Flip the master
//! switch with [`set_enabled`]; telemetry sinks are explicit objects and
//! work regardless of the switch.
//!
//! The crate has zero external dependencies, matching the offline
//! `compat/` policy of the workspace.
//!
//! # Examples
//!
//! ```
//! dgr_obs::set_enabled(true);
//! {
//!     let _s = dgr_obs::span("demo", "work");
//!     dgr_obs::counter("demo.widgets").add(3);
//! }
//! let totals = dgr_obs::span_totals();
//! assert!(totals.iter().any(|t| t.name == "work" && t.count == 1));
//! let trace = dgr_obs::chrome_trace();
//! assert!(trace.contains("\"ph\":\"X\""));
//! dgr_obs::set_enabled(false);
//! dgr_obs::reset();
//! ```

pub mod json;
pub mod ledger;
pub mod metrics;
pub mod parse;
pub mod profile;
pub mod report;
pub mod sentinel;
pub mod serve;
pub mod snapshot;
pub mod span;
pub mod status;
pub mod telemetry;

mod sink;

pub use ledger::LedgerRecord;
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, prometheus_text, reset_metrics, Counter, Gauge,
    Histogram, MetricSnapshot, MetricValue,
};
pub use profile::{FoldedProfile, Profiler, ProfilerConfig};
pub use report::{render_report, ReportInputs};
pub use sentinel::{
    analyze_rows, health_json, health_of, health_summary_of, health_timeline_jsonl_of,
    rank_findings, rate_collapse_finding, reset_sentinel, rows_from_jsonl, sentinel_remove,
    sentinel_tick, verdict_of, watchdog_arm, watchdog_breach, Finding, RuleEngine, Severity,
    Verdict,
};
pub use serve::{HttpHandler, HttpRequest, HttpResponse, ObsServer, DEFAULT_MAX_BODY_BYTES};
pub use snapshot::{
    AttributionRecord, NetShare, SnapshotHeader, SnapshotRecord, SnapshotSink, SnapshotStream,
};
pub use span::{
    chrome_trace, reset_spans, span, span_totals, write_chrome_trace, SpanGuard, SpanTotal,
};
pub use status::{
    status_begin, status_jobs, status_json, status_phase, status_queue_depth, status_remove,
    status_ring_jsonl_of, status_scope, status_scope_id, status_snapshot, status_snapshot_of,
    status_tick, RunStatus, StatusScope,
};
pub use telemetry::{IterationRow, TelemetrySink};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability recording is on. One relaxed load — safe to call
/// on any hot path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flips the master recording switch. Spans and metric recordings are
/// dropped while off; [`TelemetrySink`]s are unaffected (they are
/// explicit objects, not ambient state).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears all recorded spans, zeroes all metrics (registrations
/// survive), and drops all sentinel health state. Tests and repeated
/// CLI commands use this between runs.
pub fn reset() {
    reset_spans();
    reset_metrics();
    reset_sentinel();
}

/// Serializes tests that toggle the global [`enabled`] flag (they would
/// race under the default parallel test runner).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_switch_gates_recording() {
        let _guard = crate::test_lock();
        set_enabled(false);
        reset();
        {
            let _s = span("t", "off-span");
            counter("t.off").add(5);
        }
        assert!(span_totals().iter().all(|t| t.name != "off-span"));
        assert_eq!(counter("t.off").get(), 0);

        set_enabled(true);
        {
            let _s = span("t", "on-span");
            counter("t.on").add(5);
        }
        set_enabled(false);
        let totals = span_totals();
        let on = totals.iter().find(|t| t.name == "on-span").unwrap();
        assert_eq!(on.count, 1);
        assert_eq!(counter("t.on").get(), 5);
        reset();
    }
}
