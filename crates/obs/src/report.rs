//! Deterministic self-contained HTML post-mortem reports (`dgr report`).
//!
//! [`render_report`] consumes up to three artifacts of a routing run —
//! telemetry JSONL, a snapshot stream, and a Chrome trace — and renders
//! one HTML document with:
//!
//! * loss / overflow / temperature training curves (inline SVG),
//! * one overflow heatmap per congestion snapshot (per-g-cell worst
//!   incident-edge utilization),
//! * the ranked per-net attribution table, and
//! * a per-phase span breakdown aggregated from the trace.
//!
//! The output is **deterministic**: identical inputs yield byte-identical
//! HTML (no timestamps, no randomized ids, no map-ordered iteration), so
//! reports can be golden-tested and diffed across runs. It is also
//! **self-contained**: inline CSS and SVG only, no scripts, no external
//! fetches — one file that renders anywhere, offline.

use crate::parse::parse_json;
use crate::snapshot::{AttributionRecord, SnapshotHeader, SnapshotRecord, SnapshotStream};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The artifacts a report is rendered from. Every field is optional;
/// missing inputs render as an explanatory placeholder section.
#[derive(Debug, Clone, Default)]
pub struct ReportInputs {
    /// Report title (design or run name).
    pub title: String,
    /// Telemetry JSONL text ([`crate::TelemetrySink`] output).
    pub telemetry: Option<String>,
    /// Snapshot-stream JSONL text ([`crate::SnapshotSink`] output).
    pub snapshots: Option<String>,
    /// Chrome trace JSON text ([`crate::chrome_trace`] output).
    pub trace: Option<String>,
    /// Collapsed-stack profile text ([`crate::FoldedProfile`] output).
    /// Unlike the other inputs this section renders only when present —
    /// profiles are opt-in (`--profile`), so reports rendered without
    /// one stay byte-identical to pre-profiler reports.
    pub profile: Option<String>,
    /// Sentinel health-finding JSONL
    /// ([`crate::sentinel::health_timeline_jsonl_of`] output). Renders
    /// a health-timeline annotation band plus the ranked finding table;
    /// like `profile`, the section only appears when the input is
    /// present, so pre-sentinel reports stay byte-identical.
    pub health: Option<String>,
}

/// Renders the post-mortem HTML document.
///
/// # Errors
///
/// Returns a description of the first malformed input file. Absent
/// inputs are not errors.
pub fn render_report(inputs: &ReportInputs) -> Result<String, String> {
    let telemetry = match &inputs.telemetry {
        Some(text) => Some(parse_telemetry(text)?),
        None => None,
    };
    let stream = match &inputs.snapshots {
        Some(text) => Some(SnapshotStream::parse(text).map_err(|e| format!("snapshots: {e}"))?),
        None => None,
    };
    let spans = match &inputs.trace {
        Some(text) => Some(parse_trace(text)?),
        None => None,
    };

    let mut html = String::with_capacity(64 * 1024);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(
        html,
        "<title>DGR report — {}</title>",
        escape(&inputs.title)
    );
    html.push_str(STYLE);
    html.push_str("</head>\n<body>\n");
    let _ = writeln!(html, "<h1>DGR post-mortem — {}</h1>", escape(&inputs.title));

    render_curves(&mut html, telemetry.as_deref());
    render_snapshots(&mut html, stream.as_ref());
    render_attribution(&mut html, stream.as_ref());
    render_spans(&mut html, spans.as_deref());
    if let Some(folded) = &inputs.profile {
        render_profile(&mut html, &crate::profile::FoldedProfile::parse(folded));
    }
    if let Some(health) = &inputs.health {
        render_health(&mut html, health)?;
    }

    html.push_str("</body>\n</html>\n");
    Ok(html)
}

const STYLE: &str = "<style>\n\
body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:72rem;\
padding:0 1rem;color:#1a1a2e;background:#fafafa}\n\
h1{font-size:1.4rem;border-bottom:2px solid #1a1a2e;padding-bottom:.3rem}\n\
h2{font-size:1.1rem;margin-top:2rem}\n\
table{border-collapse:collapse;font-size:.85rem;font-variant-numeric:tabular-nums}\n\
th,td{border:1px solid #ccc;padding:.25rem .6rem;text-align:right}\n\
th{background:#eee}td.l,th.l{text-align:left}\n\
figure{display:inline-block;margin:.5rem 1rem .5rem 0;vertical-align:top}\n\
figcaption{font-size:.78rem;color:#555;max-width:24rem}\n\
p.missing{color:#777;font-style:italic}\n\
p.note{font-size:.8rem;color:#555}\n\
svg{background:#fff;border:1px solid #ddd}\n\
</style>\n";

// ---------------------------------------------------------------------------
// telemetry curves
// ---------------------------------------------------------------------------

/// One parsed telemetry row (only the fields the report plots).
#[derive(Debug, Clone, Copy, PartialEq)]
struct CurveRow {
    iter: f64,
    loss: f64,
    overflow: f64,
    temperature: f64,
    lane: Option<u64>,
}

fn parse_telemetry(text: &str) -> Result<Vec<CurveRow>, String> {
    let values = crate::parse::parse_jsonl(text)
        .map_err(|(line, e)| format!("telemetry: line {line}: {e}"))?;
    Ok(values
        .iter()
        .map(|v| CurveRow {
            iter: v.num("iter").unwrap_or(0.0),
            loss: v.num("loss").unwrap_or(f64::NAN),
            overflow: v.num("overflow").unwrap_or(f64::NAN),
            temperature: v.num("temperature").unwrap_or(f64::NAN),
            lane: v.get("lane").and_then(crate::parse::JsonValue::as_u64),
        })
        .collect())
}

/// A plotted telemetry metric: label, stroke colour, row accessor.
type CurveMetric = (&'static str, &'static str, fn(&CurveRow) -> f64);

const CURVE_METRICS: [CurveMetric; 3] = [
    ("loss", "#b13a3a", |r: &CurveRow| r.loss),
    ("overflow", "#3a66b1", |r: &CurveRow| r.overflow),
    ("temperature", "#3a9b57", |r: &CurveRow| r.temperature),
];

fn render_curves(html: &mut String, rows: Option<&[CurveRow]>) {
    html.push_str("<h2>Training curves</h2>\n");
    let Some(rows) = rows else {
        html.push_str("<p class=\"missing\">No telemetry supplied (--telemetry).</p>\n");
        return;
    };
    if rows.is_empty() {
        html.push_str("<p class=\"missing\">Telemetry file contained no rows.</p>\n");
        return;
    }
    let mut lanes: Vec<Option<u64>> = rows.iter().map(|r| r.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    if lanes.len() > 1 {
        render_lane_curves(html, rows, &lanes);
        return;
    }
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    let _ = writeln!(
        html,
        "<p class=\"note\">{} iterations · loss {} → {} · final overflow term {}</p>",
        rows.len(),
        fmt(first.loss),
        fmt(last.loss),
        fmt(last.overflow),
    );
    for (label, color, pick) in CURVE_METRICS {
        let series: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| pick(r).is_finite())
            .map(|r| (r.iter, pick(r)))
            .collect();
        html.push_str("<figure>");
        html.push_str(&line_chart(&series, color));
        let _ = write!(html, "<figcaption>{label} vs. iteration</figcaption>");
        html.push_str("</figure>\n");
    }
}

/// Per-lane curves for batched (`--batch N`) runs: one figure per
/// metric per lane, grouped metric-first so lanes sit side by side.
fn render_lane_curves(html: &mut String, rows: &[CurveRow], lanes: &[Option<u64>]) {
    let iters = rows.iter().filter(|r| r.lane == lanes[0]).count();
    let _ = writeln!(
        html,
        "<p class=\"note\">{} batch lanes · {} iterations per lane \
         (rows tagged with their lane index)</p>",
        lanes.len(),
        iters,
    );
    for (label, color, pick) in CURVE_METRICS {
        for lane in lanes {
            let series: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.lane == *lane && pick(r).is_finite())
                .map(|r| (r.iter, pick(r)))
                .collect();
            html.push_str("<figure>");
            html.push_str(&line_chart(&series, color));
            match lane {
                Some(l) => {
                    let _ = write!(
                        html,
                        "<figcaption>{label} vs. iteration — lane {l}</figcaption>"
                    );
                }
                None => {
                    let _ = write!(
                        html,
                        "<figcaption>{label} vs. iteration — untagged</figcaption>"
                    );
                }
            }
            html.push_str("</figure>\n");
        }
    }
}

/// Renders one 360×140 line chart as inline SVG.
fn line_chart(series: &[(f64, f64)], color: &str) -> String {
    const W: f64 = 360.0;
    const H: f64 = 140.0;
    const L: f64 = 52.0; // left margin (y labels)
    const R: f64 = 8.0;
    const T: f64 = 10.0;
    const B: f64 = 22.0;
    let mut svg = format!(
        "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">"
    );
    if series.is_empty() {
        svg.push_str(
            "<text x=\"180\" y=\"74\" text-anchor=\"middle\" \
             font-size=\"11\" fill=\"#777\">no finite samples</text></svg>",
        );
        return svg;
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in series {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x1 - x0 < 1e-12 {
        x0 -= 0.5;
        x1 += 0.5;
    }
    if y1 - y0 < 1e-12 {
        let pad = if y0.abs() < 1e-12 {
            0.5
        } else {
            y0.abs() * 0.1
        };
        y0 -= pad;
        y1 += pad;
    }
    let px = |x: f64| L + (x - x0) / (x1 - x0) * (W - L - R);
    let py = |y: f64| H - B - (y - y0) / (y1 - y0) * (H - T - B);
    // frame + axis labels
    let _ = write!(
        svg,
        "<rect x=\"{L}\" y=\"{T}\" width=\"{:.1}\" height=\"{:.1}\" \
         fill=\"none\" stroke=\"#bbb\"/>",
        W - L - R,
        H - T - B
    );
    let _ = write!(
        svg,
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" fill=\"#555\" \
         text-anchor=\"end\">{}</text>",
        L - 4.0,
        T + 8.0,
        fmt(y1)
    );
    let _ = write!(
        svg,
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" fill=\"#555\" \
         text-anchor=\"end\">{}</text>",
        L - 4.0,
        H - B,
        fmt(y0)
    );
    let _ = write!(
        svg,
        "<text x=\"{L}\" y=\"{:.1}\" font-size=\"9\" fill=\"#555\">{}</text>",
        H - B + 12.0,
        fmt(x0)
    );
    let _ = write!(
        svg,
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" fill=\"#555\" \
         text-anchor=\"end\">{}</text>",
        W - R,
        H - B + 12.0,
        fmt(x1)
    );
    let mut points = String::new();
    for &(x, y) in series {
        let _ = write!(points, "{:.1},{:.1} ", px(x), py(y));
    }
    let _ = write!(
        svg,
        "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" \
         points=\"{}\"/></svg>",
        points.trim_end()
    );
    svg
}

// ---------------------------------------------------------------------------
// congestion heatmaps
// ---------------------------------------------------------------------------

fn render_snapshots(html: &mut String, stream: Option<&SnapshotStream>) {
    html.push_str("<h2>Congestion snapshots</h2>\n");
    let Some(stream) = stream else {
        html.push_str("<p class=\"missing\">No snapshot stream supplied (--snap).</p>\n");
        return;
    };
    let Some(header) = &stream.header else {
        html.push_str("<p class=\"missing\">Snapshot stream has no header record.</p>\n");
        return;
    };
    if stream.snapshots.is_empty() {
        html.push_str("<p class=\"missing\">Snapshot stream contains no snapshots.</p>\n");
        return;
    }
    let _ = writeln!(
        html,
        "<p class=\"note\">{}×{} g-cells · {} snapshots · color = worst incident-edge \
         utilization per g-cell (white ≤ 50%, blue → orange → dark red ≥ 125% of \
         capacity)</p>",
        header.width,
        header.height,
        stream.snapshots.len()
    );
    for snap in &stream.snapshots {
        html.push_str("<figure>");
        html.push_str(&heatmap_svg(header, snap));
        let lane = match snap.lane {
            Some(l) => format!(", lane {l}"),
            None => String::new(),
        };
        let _ = write!(
            html,
            "<figcaption>iter {} ({}{lane}) — {} overflowed edges, total overflow {}, \
             peak {}</figcaption>",
            snap.iter,
            escape(&snap.phase),
            snap.overflowed_edges,
            fmt(snap.total_overflow as f64),
            fmt(snap.peak_overflow as f64)
        );
        html.push_str("</figure>\n");
    }
}

/// Piecewise-linear color ramp over utilization (deterministic integer
/// RGB).
fn ramp_color(u: f32) -> String {
    const STOPS: [(f32, [i32; 3]); 5] = [
        (0.0, [247, 251, 255]),
        (0.5, [107, 174, 214]),
        (0.8, [254, 217, 118]),
        (1.0, [253, 141, 60]),
        (1.25, [165, 15, 21]),
    ];
    let u = if u.is_finite() { u } else { f32::MAX };
    if u <= STOPS[0].0 {
        let [r, g, b] = STOPS[0].1;
        return format!("#{r:02x}{g:02x}{b:02x}");
    }
    for w in STOPS.windows(2) {
        let (u0, c0) = w[0];
        let (u1, c1) = w[1];
        if u <= u1 {
            let t = ((u - u0) / (u1 - u0)) as f64;
            let mix = |a: i32, b: i32| (a as f64 + t * (b - a) as f64).round() as i32;
            return format!(
                "#{:02x}{:02x}{:02x}",
                mix(c0[0], c1[0]),
                mix(c0[1], c1[1]),
                mix(c0[2], c1[2])
            );
        }
    }
    let [r, g, b] = STOPS[STOPS.len() - 1].1;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Worst incident-edge utilization of cell `(x, y)`.
fn cell_utilization(header: &SnapshotHeader, snap: &SnapshotRecord, x: u32, y: u32) -> f32 {
    let w = header.width as usize;
    let h = header.height as usize;
    let (x, y) = (x as usize, y as usize);
    let mut worst = 0.0f32;
    let mut consider = |demand: f32, cap: f32| {
        let u = if cap > 0.0 {
            demand / cap
        } else if demand > 1e-6 {
            f32::INFINITY
        } else {
            0.0
        };
        worst = worst.max(u);
    };
    // horizontal edges left/right of the cell: row-major, w−1 per row
    if w > 1 {
        if x > 0 {
            let e = y * (w - 1) + (x - 1);
            consider(snap.h_demand[e], header.h_capacity[e]);
        }
        if x < w - 1 {
            let e = y * (w - 1) + x;
            consider(snap.h_demand[e], header.h_capacity[e]);
        }
    }
    // vertical edges below/above the cell: row-major, w per row, h−1 rows
    if h > 1 {
        if y > 0 {
            let e = (y - 1) * w + x;
            consider(snap.v_demand[e], header.v_capacity[e]);
        }
        if y < h - 1 {
            let e = y * w + x;
            consider(snap.v_demand[e], header.v_capacity[e]);
        }
    }
    worst
}

/// Renders one snapshot as a per-cell heatmap SVG, top row = max y
/// (schematic orientation).
fn heatmap_svg(header: &SnapshotHeader, snap: &SnapshotRecord) -> String {
    let w = header.width.max(1);
    let h = header.height.max(1);
    let cell = (320 / w.max(h)).clamp(3, 14);
    let (sw, sh) = (w * cell, h * cell);
    let mut svg = format!(
        "<svg class=\"heatmap\" width=\"{sw}\" height=\"{sh}\" \
         viewBox=\"0 0 {sw} {sh}\" xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">"
    );
    for y in 0..h {
        for x in 0..w {
            let u = cell_utilization(header, snap, x, y);
            let _ = write!(
                svg,
                "<rect x=\"{}\" y=\"{}\" width=\"{cell}\" height=\"{cell}\" fill=\"{}\"/>",
                x * cell,
                (h - 1 - y) * cell,
                ramp_color(u)
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

// ---------------------------------------------------------------------------
// attribution table
// ---------------------------------------------------------------------------

fn render_attribution(html: &mut String, stream: Option<&SnapshotStream>) {
    html.push_str("<h2>Per-net cost attribution</h2>\n");
    let Some(attr) = stream.and_then(|s| s.attributions.last()) else {
        html.push_str(
            "<p class=\"missing\">No attribution record in the snapshot stream \
             (written when a solution is extracted with --snap).</p>\n",
        );
        return;
    };
    render_attribution_record(html, attr);
}

fn render_attribution_record(html: &mut String, attr: &AttributionRecord) {
    let _ = writeln!(
        html,
        "<p class=\"note\">phase {} · {} nets · overflow mass {} ({} charged to nets; \
         the remainder sits on edges crossed by no net wire — pure via pressure)</p>",
        escape(&attr.phase),
        attr.total_nets,
        fmt(attr.total_excess as f64),
        fmt(attr.charged_excess as f64),
    );
    if attr.nets.is_empty() {
        html.push_str("<p class=\"missing\">No nets carry overflow — nothing to rank.</p>\n");
        return;
    }
    html.push_str(
        "<table>\n<tr><th>#</th><th class=\"l\">net</th><th>WL</th><th>turns</th>\
         <th>overflow share</th><th>share %</th><th>edges</th><th>weighted cost</th></tr>\n",
    );
    let total = attr.total_excess.max(1e-12);
    for (rank, n) in attr.nets.iter().enumerate() {
        let _ = writeln!(
            html,
            "<tr><td>{}</td><td class=\"l\">{} <small>(#{})</small></td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}%</td><td>{}</td><td>{}</td></tr>",
            rank + 1,
            escape(&n.name),
            n.net,
            n.wirelength,
            n.turns,
            fmt(n.overflow_share as f64),
            fmt((n.overflow_share / total * 100.0) as f64),
            n.overflowed_edges,
            fmt(n.cost),
        );
    }
    html.push_str("</table>\n");
    if attr.ranked_nets as usize > attr.nets.len() {
        let _ = writeln!(
            html,
            "<p class=\"note\">table truncated: {} of {} offending nets shown.</p>",
            attr.nets.len(),
            attr.ranked_nets
        );
    }
}

// ---------------------------------------------------------------------------
// span breakdown
// ---------------------------------------------------------------------------

/// Per-name aggregate parsed back out of a Chrome trace.
#[derive(Debug, Clone, PartialEq)]
struct SpanAgg {
    name: String,
    count: u64,
    total_us: f64,
}

fn parse_trace(text: &str) -> Result<Vec<SpanAgg>, String> {
    let v = parse_json(text).map_err(|e| format!("trace: {e}"))?;
    let events = v.as_arr().ok_or("trace: expected a JSON array")?;
    let mut totals: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for e in events {
        if e.str("ph") != Some("X") {
            continue;
        }
        let name = e.str("name").unwrap_or("?").to_string();
        let dur = e.num("dur").unwrap_or(0.0);
        let t = totals.entry(name).or_insert((0, 0.0));
        t.0 += 1;
        t.1 += dur;
    }
    let mut out: Vec<SpanAgg> = totals
        .into_iter()
        .map(|(name, (count, total_us))| SpanAgg {
            name,
            count,
            total_us,
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_us
            .total_cmp(&a.total_us)
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok(out)
}

fn render_spans(html: &mut String, spans: Option<&[SpanAgg]>) {
    html.push_str("<h2>Phase breakdown</h2>\n");
    let Some(spans) = spans else {
        html.push_str("<p class=\"missing\">No Chrome trace supplied (--trace).</p>\n");
        return;
    };
    if spans.is_empty() {
        html.push_str("<p class=\"missing\">Trace contains no complete span events.</p>\n");
        return;
    }
    html.push_str(
        "<table>\n<tr><th class=\"l\">span</th><th>count</th><th>total ms</th>\
         <th>mean ms</th></tr>\n",
    );
    for s in spans {
        let _ = writeln!(
            html,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            escape(&s.name),
            s.count,
            fmt(s.total_us / 1e3),
            fmt(s.total_us / 1e3 / s.count.max(1) as f64),
        );
    }
    html.push_str("</table>\n");
}

// ---------------------------------------------------------------------------
// sampling profile
// ---------------------------------------------------------------------------

/// Renders the collapsed-stack profile section: headline sample stats,
/// the hot-leaf-frame ranking, and the heaviest whole stacks. Only
/// called when a profile input is present.
fn render_profile(html: &mut String, profile: &crate::profile::FoldedProfile) {
    html.push_str("<h2>Sampling profile</h2>\n");
    let busy = profile.busy_samples();
    if busy == 0 {
        html.push_str("<p class=\"missing\">Profile contains no stack samples.</p>\n");
        return;
    }
    let mut note = format!(
        "<p class=\"note\">{} samples ({} in spans, {} idle)",
        profile.samples, busy, profile.idle
    );
    if profile.peak_rss > 0 {
        let _ = write!(
            note,
            " · peak RSS {} MiB",
            fmt(profile.peak_rss as f64 / (1024.0 * 1024.0))
        );
    }
    note.push_str("</p>\n");
    html.push_str(&note);

    html.push_str(
        "<h3>Hot frames (self samples)</h3>\n\
         <table>\n<tr><th class=\"l\">frame</th><th>samples</th><th>%</th></tr>\n",
    );
    for (name, count) in profile.hot_frames().into_iter().take(20) {
        let _ = writeln!(
            html,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}%</td></tr>",
            escape(&name),
            count,
            fmt(count as f64 / busy as f64 * 100.0),
        );
    }
    html.push_str("</table>\n");

    let mut stacks: Vec<(&String, &u64)> = profile.counts.iter().collect();
    stacks.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    html.push_str(
        "<h3>Heaviest stacks</h3>\n\
         <table>\n<tr><th class=\"l\">stack</th><th>samples</th><th>%</th></tr>\n",
    );
    for (stack, count) in stacks.into_iter().take(20) {
        let _ = writeln!(
            html,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}%</td></tr>",
            escape(stack),
            count,
            fmt(*count as f64 / busy as f64 * 100.0),
        );
    }
    html.push_str("</table>\n");
}

// ---------------------------------------------------------------------------
// sentinel health band
// ---------------------------------------------------------------------------

/// One parsed sentinel finding (the fields the band renders).
#[derive(Debug, Clone, PartialEq)]
struct HealthRow {
    rule: String,
    severity: String,
    iter: u64,
    message: String,
    window_start: u64,
    window_end: u64,
}

fn parse_health(text: &str) -> Result<Vec<HealthRow>, String> {
    let values =
        crate::parse::parse_jsonl(text).map_err(|(line, e)| format!("health: line {line}: {e}"))?;
    Ok(values
        .iter()
        .map(|v| HealthRow {
            rule: v.str("rule").unwrap_or("?").to_string(),
            severity: v.str("severity").unwrap_or("warn").to_string(),
            iter: v
                .get("iter")
                .and_then(crate::parse::JsonValue::as_u64)
                .unwrap_or(0),
            message: v.str("message").unwrap_or("").to_string(),
            window_start: v
                .get("window_start")
                .and_then(crate::parse::JsonValue::as_u64)
                .unwrap_or(0),
            window_end: v
                .get("window_end")
                .and_then(crate::parse::JsonValue::as_u64)
                .unwrap_or(0),
        })
        .collect())
}

/// Renders the sentinel health section: a timeline annotation band (one
/// colored span per finding's evidence window over the iteration axis)
/// plus the ranked finding table. Only called when a health input is
/// present; a run with no findings renders an explicit all-clear.
fn render_health(html: &mut String, text: &str) -> Result<(), String> {
    html.push_str("<h2>Convergence health</h2>\n");
    let rows = parse_health(text)?;
    if rows.is_empty() {
        html.push_str("<p class=\"note\">All sentinel rules passed — no findings.</p>\n");
        return Ok(());
    }
    let max_iter = rows
        .iter()
        .map(|r| r.window_end.max(r.iter))
        .max()
        .unwrap_or(0)
        .max(1);
    // annotation band: iteration axis with one span per evidence window
    const W: f64 = 720.0;
    const LANE_H: f64 = 16.0;
    let h = 24.0 + rows.len() as f64 * LANE_H;
    let _ = write!(
        html,
        "<figure><svg class=\"healthband\" width=\"{W}\" height=\"{h}\" \
         viewBox=\"0 0 {W} {h}\" xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">"
    );
    let px = |it: u64| 4.0 + it as f64 / max_iter as f64 * (W - 8.0);
    let _ = write!(
        html,
        "<line x1=\"4\" y1=\"{0:.1}\" x2=\"{1:.1}\" y2=\"{0:.1}\" stroke=\"#bbb\"/>",
        h - 14.0,
        W - 4.0
    );
    let _ = write!(
        html,
        "<text x=\"4\" y=\"{:.1}\" font-size=\"9\" fill=\"#555\">iter 0</text>\
         <text x=\"{:.1}\" y=\"{0:.1}\" font-size=\"9\" fill=\"#555\" \
         text-anchor=\"end\">iter {max_iter}</text>",
        h - 2.0,
        W - 4.0
    );
    for (lane, r) in rows.iter().enumerate() {
        let color = if r.severity == "critical" {
            "#b13a3a"
        } else {
            "#d98e2b"
        };
        let x0 = px(r.window_start);
        let x1 = px(r.window_end.max(r.window_start)).max(x0 + 2.0);
        let y = 4.0 + lane as f64 * LANE_H;
        let _ = write!(
            html,
            "<rect x=\"{x0:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"10\" \
             fill=\"{color}\" fill-opacity=\"0.75\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" fill=\"#333\">{}</text>",
            x1 - x0,
            x1 + 4.0,
            y + 9.0,
            escape(&r.rule)
        );
    }
    html.push_str(
        "</svg><figcaption>health timeline — each bar spans a finding's evidence \
         window (orange = warn, red = critical)</figcaption></figure>\n",
    );
    html.push_str(
        "<table>\n<tr><th>#</th><th class=\"l\">rule</th><th class=\"l\">severity</th>\
         <th>iter</th><th>window</th><th class=\"l\">finding</th></tr>\n",
    );
    for (rank, r) in rows.iter().enumerate() {
        let _ = writeln!(
            html,
            "<tr><td>{}</td><td class=\"l\">{}</td><td class=\"l\">{}</td><td>{}</td>\
             <td>{}–{}</td><td class=\"l\">{}</td></tr>",
            rank + 1,
            escape(&r.rule),
            escape(&r.severity),
            r.iter,
            r.window_start,
            r.window_end,
            escape(&r.message),
        );
    }
    html.push_str("</table>\n");
    Ok(())
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// Escapes text for HTML element/attribute content.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Compact deterministic number formatting: up to 3 decimals, trailing
/// zeros trimmed.
fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return "∞".to_string();
    }
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" || s == "-0" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NetShare;

    fn tiny_inputs() -> ReportInputs {
        let telemetry = "{\"iter\":0,\"loss\":10.0,\"wl\":8.0,\"vias\":2.0,\
                         \"overflow\":1.0,\"temperature\":1.0,\"grad_norm\":3.0,\"mem_rss\":null}\n\
                         {\"iter\":1,\"loss\":9.0,\"wl\":8.0,\"vias\":2.0,\
                         \"overflow\":0.5,\"temperature\":0.9,\"grad_norm\":2.0,\"mem_rss\":null}\n";
        let header = SnapshotHeader {
            width: 2,
            height: 2,
            h_capacity: vec![1.0, 1.0],
            v_capacity: vec![1.0, 1.0],
        };
        let snap = SnapshotRecord {
            iter: 1,
            phase: "final".into(),
            h_demand: vec![2.0, 0.0],
            v_demand: vec![0.0, 0.0],
            h_overflow: vec![1.0, 0.0],
            v_overflow: vec![0.0, 0.0],
            overflowed_edges: 1,
            total_overflow: 1.0,
            peak_overflow: 1.0,
            lane: None,
        };
        let attr = AttributionRecord {
            phase: "final".into(),
            total_nets: 2,
            ranked_nets: 1,
            total_excess: 1.0,
            charged_excess: 1.0,
            nets: vec![NetShare {
                net: 0,
                name: "n<0>".into(),
                wirelength: 3,
                turns: 1,
                overflow_share: 1.0,
                overflowed_edges: 1,
                cost: 505.5,
            }],
        };
        let snaps = format!(
            "{}\n{}\n{}\n",
            header.to_json(),
            snap.to_json(),
            attr.to_json()
        );
        let trace = "[\n{\"name\":\"train\",\"cat\":\"core\",\"ph\":\"X\",\"pid\":1,\
                     \"tid\":0,\"ts\":0,\"dur\":1500},\n{\"name\":\"train\",\"cat\":\"core\",\
                     \"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":2000,\"dur\":500}\n]\n";
        ReportInputs {
            title: "unit".into(),
            telemetry: Some(telemetry.to_string()),
            snapshots: Some(snaps),
            trace: Some(trace.to_string()),
            profile: None,
            health: None,
        }
    }

    #[test]
    fn full_report_contains_every_section() {
        let html = render_report(&tiny_inputs()).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h2>Training curves</h2>"));
        assert!(html.contains("<svg class=\"heatmap\""));
        assert!(html.contains("n&lt;0&gt;"), "net names are escaped");
        assert!(html.contains("Phase breakdown"));
        assert!(html.contains("<polyline"));
        assert!(!html.contains("<script"), "report must be JS-free");
    }

    #[test]
    fn report_is_deterministic() {
        let inputs = tiny_inputs();
        assert_eq!(
            render_report(&inputs).unwrap(),
            render_report(&inputs).unwrap()
        );
    }

    #[test]
    fn missing_inputs_render_placeholders() {
        let html = render_report(&ReportInputs {
            title: "empty".into(),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(html.matches("class=\"missing\"").count(), 4);
    }

    #[test]
    fn profile_section_renders_only_when_supplied() {
        let without = render_report(&tiny_inputs()).unwrap();
        assert!(!without.contains("Sampling profile"));
        let mut inputs = tiny_inputs();
        inputs.profile = Some("route;train;forward 30\nroute;train;backward 50\n(idle) 5\n".into());
        let with = render_report(&inputs).unwrap();
        assert!(with.contains("<h2>Sampling profile</h2>"));
        assert!(with.contains("route;train;backward"));
        assert!(with.contains("Hot frames"));
    }

    #[test]
    fn health_section_renders_only_when_supplied() {
        let without = render_report(&tiny_inputs()).unwrap();
        assert!(!without.contains("Convergence health"));
        // findings render the band and the ranked table
        let mut inputs = tiny_inputs();
        inputs.health = Some(
            "{\"rule\":\"divergence\",\"severity\":\"critical\",\"score\":2.5,\"iter\":40,\
             \"message\":\"loss 2.5x its minimum\",\"window_start\":20,\"window_end\":40,\
             \"window_values\":[1,2,4]}\n"
                .into(),
        );
        let with = render_report(&inputs).unwrap();
        assert!(with.contains("<h2>Convergence health</h2>"));
        assert!(with.contains("class=\"healthband\""));
        assert!(with.contains("divergence"));
        assert!(with.contains("20–40"));
        assert!(!with.contains("<script"));
        // an empty (healthy) timeline renders the all-clear note
        let mut inputs = tiny_inputs();
        inputs.health = Some(String::new());
        let ok = render_report(&inputs).unwrap();
        assert!(ok.contains("All sentinel rules passed"));
    }

    #[test]
    fn lane_tagged_telemetry_renders_per_lane_curves() {
        let mut inputs = tiny_inputs();
        inputs.telemetry = Some(
            "{\"iter\":0,\"loss\":10.0,\"overflow\":1.0,\"temperature\":1.0,\"lane\":0}\n\
             {\"iter\":0,\"loss\":12.0,\"overflow\":1.5,\"temperature\":1.0,\"lane\":1}\n\
             {\"iter\":1,\"loss\":9.0,\"overflow\":0.5,\"temperature\":0.9,\"lane\":0}\n\
             {\"iter\":1,\"loss\":11.0,\"overflow\":1.2,\"temperature\":0.9,\"lane\":1}\n"
                .into(),
        );
        let html = render_report(&inputs).unwrap();
        assert!(html.contains("2 batch lanes"));
        assert!(html.contains("loss vs. iteration — lane 0"));
        assert!(html.contains("loss vs. iteration — lane 1"));
        // single-lane rendering is byte-stable: untagged input keeps the
        // original captions
        let single = render_report(&tiny_inputs()).unwrap();
        assert!(single.contains("<figcaption>loss vs. iteration</figcaption>"));
    }

    #[test]
    fn malformed_inputs_error() {
        let mut bad = tiny_inputs();
        bad.telemetry = Some("not json\n".into());
        assert!(render_report(&bad).unwrap_err().contains("telemetry"));
        let mut bad = tiny_inputs();
        bad.trace = Some("{}".into());
        assert!(render_report(&bad).unwrap_err().contains("trace"));
    }

    #[test]
    fn span_aggregation_sums_and_ranks() {
        let spans = parse_trace(
            "[{\"name\":\"b\",\"ph\":\"X\",\"dur\":5},\
              {\"name\":\"a\",\"ph\":\"X\",\"dur\":10},\
              {\"name\":\"b\",\"ph\":\"X\",\"dur\":6},\
              {\"name\":\"meta\",\"ph\":\"M\"}]",
        )
        .unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "b");
        assert_eq!(spans[0].count, 2);
        assert!((spans[0].total_us - 11.0).abs() < 1e-9);
        assert_eq!(spans[1].name, "a");
    }

    #[test]
    fn ramp_is_monotone_and_clamped() {
        assert_eq!(ramp_color(0.0), "#f7fbff");
        assert_eq!(ramp_color(1.25), "#a50f15");
        assert_eq!(ramp_color(9.0), "#a50f15");
        assert_eq!(ramp_color(f32::INFINITY), "#a50f15");
        // interior stops reproduce exactly
        assert_eq!(ramp_color(1.0), "#fd8d3c");
    }

    #[test]
    fn chart_handles_degenerate_series() {
        // single point and flat series must not divide by zero
        let svg = line_chart(&[(0.0, 5.0)], "#000");
        assert!(svg.contains("<polyline"));
        let svg = line_chart(&[(0.0, 5.0), (1.0, 5.0)], "#000");
        assert!(svg.contains("<polyline"));
        let svg = line_chart(&[], "#000");
        assert!(svg.contains("no finite samples"));
    }

    #[test]
    fn number_formatting_is_compact() {
        assert_eq!(fmt(1.0), "1");
        assert_eq!(fmt(0.125), "0.125");
        assert_eq!(fmt(0.12345), "0.123");
        assert_eq!(fmt(-0.0001), "0");
        assert_eq!(fmt(f64::INFINITY), "∞");
    }
}
