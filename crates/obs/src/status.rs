//! Live run status: the mutable "where is the run right now" state
//! behind the `/status` endpoint and mid-run `/report` rendering.
//!
//! The pipeline pushes into a small global registry — current phase,
//! iteration progress, latest loss/overflow — and keeps a bounded ring
//! of recent telemetry rows so `/report` can render training curves
//! while the run is still iterating. All updates are gated on
//! [`crate::enabled`], so an uninstrumented run pays one relaxed load
//! per call site and never touches the mutex.
//!
//! # Scopes (multi-job daemons)
//!
//! The registry is keyed by a **scope id** so several jobs can publish
//! concurrently without overwriting each other (a `dgrd` daemon runs
//! many tenants' jobs at once; last-writer-wins on one global row was a
//! bug). Each thread carries a current scope id (default `0`, the
//! one-shot CLI scope); [`status_scope`] switches it for the lifetime of
//! the returned guard, and the pipeline's `status_begin` / `status_phase`
//! / `status_tick` calls then land in that scope's row and ring.
//! `/status` reports the caller's current scope at the top level
//! (backwards compatible) plus one row per live scope under `"jobs"`.
//! [`status_remove`] drops a scope when its job is evicted.
//!
//! Each scope's ring is bounded at [`RING_CAPACITY`] rows by stride
//! doubling: when full, every second retained row is dropped and the
//! keep-stride doubles, so arbitrarily long runs keep an evenly thinned
//! history (newest rows always land; resolution degrades gracefully).

use crate::json::JsonObject;
use crate::telemetry::IterationRow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Maximum telemetry rows retained per scope for live report rendering.
pub const RING_CAPACITY: usize = 2048;

/// The queryable state of one run (one scope).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStatus {
    /// What the process is doing: `"route"`, `"train"`, `"idle"`...
    pub job: String,
    /// Current pipeline phase (`"candidates"`, `"forest"`, `"relax"`,
    /// `"extract"`, `"train"`...).
    pub phase: String,
    /// Last completed training iteration (monotone across rounds).
    pub iter: u64,
    /// Planned total iterations (0 when unknown).
    pub total_iters: u64,
    /// Latest training loss (lane 0 for batched runs).
    pub loss: f32,
    /// Latest unweighted overflow term.
    pub overflow: f32,
    /// Current Gumbel-softmax temperature.
    pub temperature: f32,
    /// Batch lane count (1 for single-instance runs).
    pub batch: u64,
    /// Worker-pool jobs dispatched and not yet retired (best effort).
    pub queue_depth: u64,
}

struct ScopeLive {
    status: RunStatus,
    ring: Vec<IterationRow>,
    stride: u64,
}

// Manual Default: a scope created lazily (tick before begin) still
// needs stride 1, or the ring would thin everything but iteration 0.
impl Default for ScopeLive {
    fn default() -> Self {
        ScopeLive::new()
    }
}

impl ScopeLive {
    fn new() -> Self {
        ScopeLive {
            status: RunStatus::default(),
            ring: Vec::new(),
            stride: 1,
        }
    }
}

struct Live {
    scopes: BTreeMap<u64, ScopeLive>,
}

thread_local! {
    /// The scope id status updates from this thread land in.
    static SCOPE: Cell<u64> = const { Cell::new(0) };
}

fn live() -> MutexGuard<'static, Live> {
    static LIVE: OnceLock<Mutex<Live>> = OnceLock::new();
    match LIVE
        .get_or_init(|| {
            Mutex::new(Live {
                scopes: BTreeMap::new(),
            })
        })
        .lock()
    {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn scope_mut(l: &mut Live, id: u64) -> &mut ScopeLive {
    l.scopes.entry(id).or_default()
}

/// The calling thread's current status scope id.
pub fn status_scope_id() -> u64 {
    SCOPE.with(Cell::get)
}

/// RAII guard restoring the previous scope id on drop.
#[derive(Debug)]
pub struct StatusScope {
    prev: u64,
}

/// Switches the calling thread's status scope to `id` until the guard
/// drops. Daemon workers wrap each job's pipeline run in one of these so
/// the job's `status_begin`/`status_tick` traffic lands in its own row.
#[must_use = "the scope reverts when the guard drops"]
pub fn status_scope(id: u64) -> StatusScope {
    let prev = SCOPE.with(|s| s.replace(id));
    StatusScope { prev }
}

impl Drop for StatusScope {
    fn drop(&mut self) {
        let prev = self.prev;
        SCOPE.with(|s| s.set(prev));
    }
}

/// Sets the job name and planned iteration total for the current scope,
/// clearing that scope's previous ring and counters.
pub fn status_begin(job: &str, total_iters: u64, batch: u64) {
    if !crate::enabled() {
        return;
    }
    let id = status_scope_id();
    let mut l = live();
    let s = scope_mut(&mut l, id);
    s.status = RunStatus {
        job: job.to_string(),
        phase: String::new(),
        total_iters,
        batch: batch.max(1),
        ..RunStatus::default()
    };
    s.ring.clear();
    s.stride = 1;
}

/// Sets the current pipeline phase of the current scope.
pub fn status_phase(phase: &str) {
    if !crate::enabled() {
        return;
    }
    let id = status_scope_id();
    let mut l = live();
    let s = scope_mut(&mut l, id);
    if s.status.phase != phase {
        s.status.phase.clear();
        s.status.phase.push_str(phase);
    }
}

/// Publishes one iteration's headline numbers into the current scope and
/// appends the row to its telemetry ring. Lane-tagged rows from batched
/// runs all land in the ring; the headline numbers track lane 0 (or
/// untagged rows).
pub fn status_tick(row: &IterationRow) {
    if !crate::enabled() {
        return;
    }
    let id = status_scope_id();
    let mut l = live();
    let s = scope_mut(&mut l, id);
    if row.lane.unwrap_or(0) == 0 {
        s.status.iter = row.iter as u64;
        s.status.loss = row.loss;
        s.status.overflow = row.overflow;
        s.status.temperature = row.temperature;
    }
    let stride = s.stride;
    if (row.iter as u64).is_multiple_of(stride) {
        s.ring.push(*row);
        if s.ring.len() >= RING_CAPACITY {
            // thin to every second retained row; newer rows keep landing
            // at the doubled stride
            let mut keep = 0usize;
            for i in (0..s.ring.len()).step_by(2) {
                s.ring[keep] = s.ring[i];
                keep += 1;
            }
            s.ring.truncate(keep);
            s.stride = stride.saturating_mul(2);
        }
    }
}

/// Publishes the worker-pool queue depth (jobs in flight) into the
/// current scope.
pub fn status_queue_depth(depth: u64) {
    if !crate::enabled() {
        return;
    }
    let id = status_scope_id();
    let mut l = live();
    scope_mut(&mut l, id).status.queue_depth = depth;
}

/// A copy of the current scope's status.
pub fn status_snapshot() -> RunStatus {
    status_snapshot_of(status_scope_id()).unwrap_or_default()
}

/// A copy of scope `id`'s status, if that scope exists.
pub fn status_snapshot_of(id: u64) -> Option<RunStatus> {
    live().scopes.get(&id).map(|s| s.status.clone())
}

/// `(scope id, status)` for every live scope, ascending by id.
pub fn status_jobs() -> Vec<(u64, RunStatus)> {
    live()
        .scopes
        .iter()
        .map(|(&id, s)| (id, s.status.clone()))
        .collect()
}

/// Drops scope `id` from the registry (job evicted from a daemon's
/// table). Removing a missing scope is a no-op.
pub fn status_remove(id: u64) {
    live().scopes.remove(&id);
}

/// The current scope's retained telemetry rows as JSONL text (live
/// `/report` input).
pub fn status_ring_jsonl() -> String {
    status_ring_jsonl_of(status_scope_id())
}

/// Scope `id`'s retained telemetry rows as JSONL text (empty for an
/// unknown scope).
pub fn status_ring_jsonl_of(id: u64) -> String {
    let l = live();
    let mut out = String::new();
    if let Some(s) = l.scopes.get(&id) {
        for row in &s.ring {
            out.push_str(&row.to_json());
            out.push('\n');
        }
    }
    out
}

fn push_status_fields(o: &mut JsonObject, s: &RunStatus) {
    o.field_str("job", &s.job);
    o.field_str("phase", &s.phase);
    o.field_u64("iter", s.iter);
    o.field_u64("total_iters", s.total_iters);
    o.field_f32("loss", s.loss);
    o.field_f32("overflow", s.overflow);
    o.field_f32("temperature", s.temperature);
    o.field_u64("batch", s.batch);
    o.field_u64("queue_depth", s.queue_depth);
}

/// The `/status` JSON payload: the serving thread's scope fields at the
/// top level (plus the current process RSS in bytes; `rss` is `null`
/// when unmeasurable), and one row per live scope under `"jobs"` so a
/// multi-job daemon reports every run instead of last-writer-wins.
pub fn status_json() -> String {
    let current = status_scope_id();
    let l = live();
    let mut o = JsonObject::new();
    let own = l.scopes.get(&current).map(|s| s.status.clone());
    push_status_fields(&mut o, &own.unwrap_or_default());
    o.field_opt_u64("rss", crate::profile::read_rss_bytes());
    let mut jobs = String::from("[");
    for (i, (&id, s)) in l.scopes.iter().enumerate() {
        if i > 0 {
            jobs.push(',');
        }
        let mut row = JsonObject::new();
        row.field_u64("id", id);
        push_status_fields(&mut row, &s.status);
        row.field_u64("ring_rows", s.ring.len() as u64);
        jobs.push_str(&row.finish());
    }
    jobs.push(']');
    o.field_raw("jobs", &jobs);
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(iter: usize, lane: Option<u64>) -> IterationRow {
        IterationRow {
            iter,
            loss: iter as f32,
            wl: 1.0,
            vias: 1.0,
            overflow: 0.5,
            temperature: 1.0,
            grad_norm: 0.1,
            mem_rss: None,
            lane,
        }
    }

    #[test]
    fn ticks_update_headline_and_ring() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("train", 100, 1);
        status_phase("train");
        for i in 0..10 {
            status_tick(&row(i, None));
        }
        crate::set_enabled(false);
        let s = status_snapshot();
        assert_eq!(s.job, "train");
        assert_eq!(s.phase, "train");
        assert_eq!(s.iter, 9);
        assert_eq!(s.loss, 9.0);
        assert_eq!(status_ring_jsonl().lines().count(), 10);
        let json = status_json();
        assert!(json.contains("\"job\":\"train\""));
        assert!(json.contains("\"iter\":9"));
        assert!(json.contains("\"jobs\":["));
    }

    #[test]
    fn headline_tracks_lane_zero_only() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("train", 10, 2);
        status_tick(&row(3, Some(0)));
        status_tick(&row(3, Some(1)));
        crate::set_enabled(false);
        let s = status_snapshot();
        assert_eq!(s.loss, 3.0);
        assert_eq!(s.batch, 2);
        assert_eq!(status_ring_jsonl().lines().count(), 2);
    }

    #[test]
    fn ring_thins_by_stride_doubling() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("train", 0, 1);
        for i in 0..(RING_CAPACITY * 4) {
            status_tick(&row(i, None));
        }
        crate::set_enabled(false);
        let lines = status_ring_jsonl().lines().count();
        assert!(lines < RING_CAPACITY, "ring unbounded: {lines}");
        assert!(lines > RING_CAPACITY / 8, "ring over-thinned: {lines}");
    }

    #[test]
    fn disabled_updates_are_dropped() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("idle", 0, 1);
        crate::set_enabled(false);
        status_begin("train", 5, 1);
        status_tick(&row(1, None));
        assert_eq!(status_snapshot().job, "idle");
        assert_eq!(status_ring_jsonl(), "");
    }

    #[test]
    fn scopes_isolate_concurrent_jobs() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("cli", 10, 1);
        {
            let _scope = status_scope(71);
            status_begin("job-71", 500, 1);
            status_phase("train");
            status_tick(&row(4, None));
        }
        {
            let _scope = status_scope(72);
            status_begin("job-72", 200, 1);
            status_phase("extract");
        }
        crate::set_enabled(false);

        // the default scope row was not clobbered by either job
        assert_eq!(status_snapshot().job, "cli");
        let s71 = status_snapshot_of(71).unwrap();
        assert_eq!(s71.job, "job-71");
        assert_eq!(s71.iter, 4);
        assert_eq!(status_snapshot_of(72).unwrap().phase, "extract");
        assert_eq!(status_ring_jsonl_of(71).lines().count(), 1);
        assert_eq!(status_ring_jsonl_of(72), "");

        let ids: Vec<u64> = status_jobs().iter().map(|(id, _)| *id).collect();
        assert!(ids.contains(&71) && ids.contains(&72), "{ids:?}");
        let json = status_json();
        assert!(json.contains("\"job\":\"cli\""), "{json}");
        assert!(json.contains("\"job-71\""), "{json}");
        assert!(json.contains("\"job-72\""), "{json}");

        status_remove(71);
        status_remove(72);
        assert!(status_snapshot_of(71).is_none());
    }

    #[test]
    fn scope_guard_restores_previous_scope() {
        let _guard = crate::test_lock();
        assert_eq!(status_scope_id(), 0);
        {
            let _a = status_scope(5);
            assert_eq!(status_scope_id(), 5);
            {
                let _b = status_scope(9);
                assert_eq!(status_scope_id(), 9);
            }
            assert_eq!(status_scope_id(), 5);
        }
        assert_eq!(status_scope_id(), 0);
    }
}
