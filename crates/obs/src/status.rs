//! Live run status: the mutable "where is the run right now" state
//! behind the `/status` endpoint and mid-run `/report` rendering.
//!
//! The pipeline pushes into a small global registry — current phase,
//! iteration progress, latest loss/overflow — and keeps a bounded ring
//! of recent telemetry rows so `/report` can render training curves
//! while the run is still iterating. All updates are gated on
//! [`crate::enabled`], so an uninstrumented run pays one relaxed load
//! per call site and never touches the mutex.
//!
//! The ring is bounded at [`RING_CAPACITY`] rows by stride doubling:
//! when full, every second retained row is dropped and the keep-stride
//! doubles, so arbitrarily long runs keep an evenly thinned history
//! (newest rows always land; resolution degrades gracefully).

use crate::json::JsonObject;
use crate::telemetry::IterationRow;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Maximum telemetry rows retained for live report rendering.
pub const RING_CAPACITY: usize = 2048;

/// The queryable state of the current run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStatus {
    /// What the process is doing: `"route"`, `"train"`, `"idle"`...
    pub job: String,
    /// Current pipeline phase (`"candidates"`, `"forest"`, `"relax"`,
    /// `"extract"`, `"train"`...).
    pub phase: String,
    /// Last completed training iteration (monotone across rounds).
    pub iter: u64,
    /// Planned total iterations (0 when unknown).
    pub total_iters: u64,
    /// Latest training loss (lane 0 for batched runs).
    pub loss: f32,
    /// Latest unweighted overflow term.
    pub overflow: f32,
    /// Current Gumbel-softmax temperature.
    pub temperature: f32,
    /// Batch lane count (1 for single-instance runs).
    pub batch: u64,
    /// Worker-pool jobs dispatched and not yet retired (best effort).
    pub queue_depth: u64,
}

struct Live {
    status: RunStatus,
    ring: Vec<IterationRow>,
    stride: u64,
}

fn live() -> MutexGuard<'static, Live> {
    static LIVE: OnceLock<Mutex<Live>> = OnceLock::new();
    match LIVE
        .get_or_init(|| {
            Mutex::new(Live {
                status: RunStatus::default(),
                ring: Vec::new(),
                stride: 1,
            })
        })
        .lock()
    {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sets the job name and planned iteration total, clearing the previous
/// run's ring and counters.
pub fn status_begin(job: &str, total_iters: u64, batch: u64) {
    if !crate::enabled() {
        return;
    }
    let mut l = live();
    l.status = RunStatus {
        job: job.to_string(),
        phase: String::new(),
        total_iters,
        batch: batch.max(1),
        ..RunStatus::default()
    };
    l.ring.clear();
    l.stride = 1;
}

/// Sets the current pipeline phase.
pub fn status_phase(phase: &str) {
    if !crate::enabled() {
        return;
    }
    let mut l = live();
    if l.status.phase != phase {
        l.status.phase.clear();
        l.status.phase.push_str(phase);
    }
}

/// Publishes one iteration's headline numbers and appends the row to the
/// live telemetry ring. Lane-tagged rows from batched runs all land in
/// the ring; the headline numbers track lane 0 (or untagged rows).
pub fn status_tick(row: &IterationRow) {
    if !crate::enabled() {
        return;
    }
    let mut l = live();
    if row.lane.unwrap_or(0) == 0 {
        l.status.iter = row.iter as u64;
        l.status.loss = row.loss;
        l.status.overflow = row.overflow;
        l.status.temperature = row.temperature;
    }
    let stride = l.stride;
    if (row.iter as u64).is_multiple_of(stride) {
        l.ring.push(*row);
        if l.ring.len() >= RING_CAPACITY {
            // thin to every second retained row; newer rows keep landing
            // at the doubled stride
            let mut keep = 0usize;
            for i in (0..l.ring.len()).step_by(2) {
                l.ring[keep] = l.ring[i];
                keep += 1;
            }
            l.ring.truncate(keep);
            l.stride = stride.saturating_mul(2);
        }
    }
}

/// Publishes the worker-pool queue depth (jobs in flight).
pub fn status_queue_depth(depth: u64) {
    if !crate::enabled() {
        return;
    }
    live().status.queue_depth = depth;
}

/// A copy of the current status.
pub fn status_snapshot() -> RunStatus {
    live().status.clone()
}

/// The retained telemetry rows as JSONL text (live `/report` input).
pub fn status_ring_jsonl() -> String {
    let l = live();
    let mut out = String::new();
    for row in &l.ring {
        out.push_str(&row.to_json());
        out.push('\n');
    }
    out
}

/// The `/status` JSON payload: the [`RunStatus`] fields plus the current
/// process RSS in bytes (`rss` is `null` when unmeasurable).
pub fn status_json() -> String {
    let s = status_snapshot();
    let mut o = JsonObject::new();
    o.field_str("job", &s.job);
    o.field_str("phase", &s.phase);
    o.field_u64("iter", s.iter);
    o.field_u64("total_iters", s.total_iters);
    o.field_f32("loss", s.loss);
    o.field_f32("overflow", s.overflow);
    o.field_f32("temperature", s.temperature);
    o.field_u64("batch", s.batch);
    o.field_u64("queue_depth", s.queue_depth);
    o.field_opt_u64("rss", crate::profile::read_rss_bytes());
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(iter: usize, lane: Option<u64>) -> IterationRow {
        IterationRow {
            iter,
            loss: iter as f32,
            wl: 1.0,
            vias: 1.0,
            overflow: 0.5,
            temperature: 1.0,
            grad_norm: 0.1,
            mem_rss: None,
            lane,
        }
    }

    #[test]
    fn ticks_update_headline_and_ring() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("train", 100, 1);
        status_phase("train");
        for i in 0..10 {
            status_tick(&row(i, None));
        }
        crate::set_enabled(false);
        let s = status_snapshot();
        assert_eq!(s.job, "train");
        assert_eq!(s.phase, "train");
        assert_eq!(s.iter, 9);
        assert_eq!(s.loss, 9.0);
        assert_eq!(status_ring_jsonl().lines().count(), 10);
        let json = status_json();
        assert!(json.contains("\"job\":\"train\""));
        assert!(json.contains("\"iter\":9"));
    }

    #[test]
    fn headline_tracks_lane_zero_only() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("train", 10, 2);
        status_tick(&row(3, Some(0)));
        status_tick(&row(3, Some(1)));
        crate::set_enabled(false);
        let s = status_snapshot();
        assert_eq!(s.loss, 3.0);
        assert_eq!(s.batch, 2);
        assert_eq!(status_ring_jsonl().lines().count(), 2);
    }

    #[test]
    fn ring_thins_by_stride_doubling() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("train", 0, 1);
        for i in 0..(RING_CAPACITY * 4) {
            status_tick(&row(i, None));
        }
        crate::set_enabled(false);
        let lines = status_ring_jsonl().lines().count();
        assert!(lines < RING_CAPACITY, "ring unbounded: {lines}");
        assert!(lines > RING_CAPACITY / 8, "ring over-thinned: {lines}");
    }

    #[test]
    fn disabled_updates_are_dropped() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        status_begin("idle", 0, 1);
        crate::set_enabled(false);
        status_begin("train", 5, 1);
        status_tick(&row(1, None));
        assert_eq!(status_snapshot().job, "idle");
        assert_eq!(status_ring_jsonl(), "");
    }
}
