//! Counters, gauges and histograms with atomic hot-path recording.
//!
//! Metrics are registered by name ([`counter`], [`gauge`], [`histogram`])
//! and returned as `&'static` handles — registration takes a mutex once,
//! after which recording is a single relaxed atomic RMW (plus the
//! [`crate::enabled`] check). Call sites on hot paths cache the handle in
//! a `OnceLock` so the registry lock is never touched again:
//!
//! ```
//! use std::sync::OnceLock;
//! static DISPATCHES: OnceLock<&'static dgr_obs::Counter> = OnceLock::new();
//! let c = DISPATCHES.get_or_init(|| dgr_obs::counter("pool.jobs_dispatched"));
//! c.add(1);
//! ```
//!
//! Counters sum **exactly** under concurrency (`fetch_add` on an
//! `AtomicU64`) — the worker-pool instrumentation and its tests rely on
//! this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` — a relaxed `fetch_add` when enabled, a relaxed load
    /// otherwise. Concurrent adds sum exactly.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` gauge (stored as bit pattern).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge (when enabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two histogram buckets (values ≥ 2⁶³ clamp into the
/// last).
pub const HIST_BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (e.g. nanosecond
/// durations). Bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)` — so
/// bucket 1 holds exactly the value 1 — and bucket 0 holds only zero,
/// the one value below the first log₂ boundary.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample (when enabled): three relaxed RMWs.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let b = (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper bound (2^b) of the bucket containing quantile `q ∈ [0, 1]` —
    /// an order-of-magnitude estimate, which is what log₂ buckets buy.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target.max(1) {
                return 1u64.checked_shl(b as u32).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Registered {
    name: &'static str,
    metric: MetricRef,
}

fn registry() -> std::sync::MutexGuard<'static, Vec<Registered>> {
    static REGISTRY: OnceLock<Mutex<Vec<Registered>>> = OnceLock::new();
    // poison-tolerant: a panic during registration (e.g. a kind mismatch)
    // must not take the whole registry down with it
    match REGISTRY.get_or_init(|| Mutex::new(Vec::new())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Returns (registering on first use) the counter named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry();
    for r in reg.iter() {
        if r.name == name {
            match r.metric {
                MetricRef::Counter(c) => return c,
                _ => panic!("metric `{name}` already registered as a non-counter"),
            }
        }
    }
    let c: &'static Counter = Box::leak(Box::default());
    reg.push(Registered {
        name,
        metric: MetricRef::Counter(c),
    });
    c
}

/// Returns (registering on first use) the gauge named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry();
    for r in reg.iter() {
        if r.name == name {
            match r.metric {
                MetricRef::Gauge(g) => return g,
                _ => panic!("metric `{name}` already registered as a non-gauge"),
            }
        }
    }
    let g: &'static Gauge = Box::leak(Box::default());
    reg.push(Registered {
        name,
        metric: MetricRef::Gauge(g),
    });
    g
}

/// Returns (registering on first use) the histogram named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry();
    for r in reg.iter() {
        if r.name == name {
            match r.metric {
                MetricRef::Histogram(h) => return h,
                _ => panic!("metric `{name}` already registered as a non-histogram"),
            }
        }
    }
    let h: &'static Histogram = Box::leak(Box::default());
    reg.push(Registered {
        name,
        metric: MetricRef::Histogram(h),
    });
    h
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The registered name.
    pub name: &'static str,
    /// The reading.
    pub value: MetricValue,
}

/// The value part of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram summary.
    Histogram {
        /// Sample count.
        count: u64,
        /// Sample sum.
        sum: u64,
        /// Mean sample.
        mean: f64,
        /// ~p50 bucket upper bound.
        p50: u64,
        /// ~p95 bucket upper bound.
        p95: u64,
        /// ~p99 bucket upper bound.
        p99: u64,
    },
}

/// Snapshots every registered metric, in registration order.
pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
    let reg = registry();
    reg.iter()
        .map(|r| MetricSnapshot {
            name: r.name,
            value: match r.metric {
                MetricRef::Counter(c) => MetricValue::Counter(c.get()),
                MetricRef::Gauge(g) => MetricValue::Gauge(g.get()),
                MetricRef::Histogram(h) => MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                },
            },
        })
        .collect()
}

/// Renders every registered metric in the Prometheus text exposition
/// format (version 0.0.4), the payload the `--serve` exporter returns
/// from `/metrics`.
///
/// Mapping:
/// * counters → `counter` families (`dgr_` prefix, dots → underscores),
/// * gauges → `gauge` families,
/// * histograms → a `histogram` family with cumulative
///   `_bucket{le="2^i"}` lines (only buckets with mass, plus `+Inf`),
///   `_sum` and `_count` — and a companion `<name>_quantile` gauge
///   family labelled `quantile="0.5" | "0.95" | "0.99"` carrying the
///   log₂ quantile estimates.
pub fn prometheus_text() -> String {
    let reg = registry();
    let mut out = String::new();
    for r in reg.iter() {
        let name = prometheus_name(r.name);
        match r.metric {
            MetricRef::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n"));
                out.push_str(&format!("{name} {}\n", c.get()));
            }
            MetricRef::Gauge(g) => {
                out.push_str(&format!("# TYPE {name} gauge\n"));
                out.push_str(&format!("{name} {}\n", fmt_f64(g.get())));
            }
            MetricRef::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (b, bucket) in h.buckets.iter().enumerate() {
                    let n = bucket.load(Ordering::Relaxed);
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let le = 1u64.checked_shl(b as u32).unwrap_or(u64::MAX);
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                out.push_str(&format!("{name}_sum {}\n", h.sum()));
                out.push_str(&format!("{name}_count {}\n", h.count()));
                // the quantile family appears only once samples exist —
                // an empty histogram rendering `0` is indistinguishable
                // from a real zero-latency reading
                if h.count() > 0 {
                    out.push_str(&format!("# TYPE {name}_quantile gauge\n"));
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        out.push_str(&format!(
                            "{name}_quantile{{quantile=\"{label}\"}} {}\n",
                            h.quantile(q)
                        ));
                    }
                }
            }
        }
    }
    out
}

/// `rsmt.cache.hits` → `dgr_rsmt_cache_hits`: prefixed, and every
/// character outside `[a-zA-Z0-9_:]` replaced by `_` per the Prometheus
/// metric-name grammar. Names already namespaced under the daemon
/// (`dgrd.…`) are not double-prefixed: `dgrd.jobs.queued` exposes as
/// `dgrd_jobs_queued`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    if !name.starts_with("dgrd") {
        out.push_str("dgr_");
    }
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus float rendering: integral values without a trailing `.0`,
/// non-finite values as `NaN`/`+Inf`/`-Inf`.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Zeroes every registered metric (registrations survive).
pub fn reset_metrics() {
    let reg = registry();
    for r in reg.iter() {
        match r.metric {
            MetricRef::Counter(c) => c.reset(),
            MetricRef::Gauge(g) => g.reset(),
            MetricRef::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let c = counter("test.exact");
        c.reset();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        c.add(1);
                    }
                });
            }
        });
        crate::set_enabled(false);
        assert_eq!(c.get(), threads * per_thread);
        c.reset();
    }

    #[test]
    fn gauge_and_histogram_basics() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let g = gauge("test.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);

        let h = histogram("test.hist");
        h.reset();
        for v in [1u64, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        crate::set_enabled(false);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1_001_006);
        assert!(h.mean() > 0.0);
        assert!(h.quantile(0.5) >= 2);
        assert!(h.quantile(1.0) >= 1_000_000);
        h.reset();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let _guard = crate::test_lock();
        let h = histogram("test.hist-empty");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "empty histogram has no quantile {q}");
        }
    }

    #[test]
    fn single_bucket_saturation_pins_every_quantile() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let h = histogram("test.hist-saturated");
        h.reset();
        // 5 ∈ [4, 8) → bucket 3 for every sample
        for _ in 0..10_000 {
            h.record(5);
        }
        crate::set_enabled(false);
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.mean(), 5.0);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 8, "all mass in one bucket → its bound");
        }
        h.reset();
    }

    #[test]
    fn values_below_first_log2_boundary_land_in_bucket_zero() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let h = histogram("test.hist-below");
        h.reset();
        // zero is the only value below the first boundary (2^0 = 1);
        // one already belongs to bucket 1
        h.record(0);
        h.record(0);
        h.record(1);
        crate::set_enabled(false);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1);
        // two of three samples sit in bucket 0, whose upper bound is 2^0
        assert_eq!(h.quantile(0.5), 1);
        // the value 1 sits strictly above, in bucket 1 (bound 2^1)
        assert_eq!(h.quantile(1.0), 2);
        h.reset();
    }

    #[test]
    fn registration_is_idempotent() {
        let a = counter("test.same") as *const Counter;
        let b = counter("test.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let _ = counter("test.kind-clash");
        let _ = gauge("test.kind-clash");
    }

    #[test]
    fn prometheus_text_exposes_all_kinds() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        counter("test.prom.counter").add(3);
        gauge("test.prom.gauge").set(1.5);
        let h = histogram("test.prom.hist");
        h.reset();
        for v in [1u64, 5, 1000] {
            h.record(v);
        }
        crate::set_enabled(false);
        let text = prometheus_text();
        assert!(text.contains("# TYPE dgr_test_prom_counter counter\n"));
        assert!(text.contains("dgr_test_prom_gauge 1.5\n"));
        assert!(text.contains("# TYPE dgr_test_prom_hist histogram\n"));
        assert!(text.contains("dgr_test_prom_hist_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dgr_test_prom_hist_sum 1006\n"));
        assert!(text.contains("dgr_test_prom_hist_count 3\n"));
        assert!(text.contains("dgr_test_prom_hist_quantile{quantile=\"0.99\"}"));
        h.reset();
        counter("test.prom.counter").0.store(0, Ordering::Relaxed);
    }

    #[test]
    fn empty_histogram_omits_the_quantile_family() {
        let _guard = crate::test_lock();
        let h = histogram("test.prom.hist-unsampled");
        h.reset();
        let text = prometheus_text();
        assert!(
            !text.contains("dgr_test_prom_hist_unsampled_quantile"),
            "no quantile gauges before the first sample:\n{text}"
        );
        // the histogram family itself still advertises its existence
        assert!(text.contains("# TYPE dgr_test_prom_hist_unsampled histogram\n"));
        assert!(text.contains("dgr_test_prom_hist_unsampled_count 0\n"));
    }

    #[test]
    fn daemon_metrics_skip_the_dgr_prefix() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        gauge("dgrd.jobs.queued").set(3.0);
        crate::set_enabled(false);
        let text = prometheus_text();
        assert!(text.contains("dgrd_jobs_queued 3\n"), "{text}");
        assert!(!text.contains("dgr_dgrd_jobs_queued"), "{text}");
    }

    #[test]
    fn snapshot_sees_registered_metrics() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        counter("test.snap").add(4);
        crate::set_enabled(false);
        let snap = metrics_snapshot();
        let found = snap.iter().find(|m| m.name == "test.snap").unwrap();
        assert!(matches!(found.value, MetricValue::Counter(n) if n >= 4));
    }
}
