//! `dgr-sentinel` — online convergence-health analytics over telemetry
//! rows, plus the per-job SLO watchdog the daemon arms on top of it.
//!
//! The router's health is legible only through trajectories: loss slope,
//! overflow trend, gradient norms, iteration rate. This module consumes
//! the same [`IterationRow`]s the telemetry sink records — the training
//! loop fans each row out via [`sentinel_tick`] right next to
//! `status_tick` — and evaluates a small declarative rule set over
//! rolling windows:
//!
//! | rule          | severity | trips when                                          |
//! |---------------|----------|-----------------------------------------------------|
//! | `poisoning`   | critical | any non-finite loss / grad / overflow / wl / vias   |
//! | `divergence`  | critical | EWMA loss rises above 2× its running minimum        |
//! | `grad_spike`  | warn     | grad norm exceeds 10× its EWMA after warmup         |
//! | `oscillation` | warn     | loss-delta sign flips >60% of a 64-iter window at ≥5% amplitude |
//! | `overflow_stall` | warn  | positive overflow with no 1% improvement in 256 iters |
//! | `rate_collapse`  | warn  | iterations/sec below half the last comparable run   |
//!
//! Each rule raises **at most one finding per run**, carrying an
//! evidence window (the recent `(iter, value)` samples that tripped it)
//! so `/health`, the HTML report band, and `dgr doctor` can show *why*,
//! not just *that*. The rule engine is a pure fold over rows
//! ([`RuleEngine::observe`]): the online tick path and the offline
//! [`analyze_rows`] replay used by `dgr doctor` share it, so a verdict
//! reproduced from a telemetry file matches what the live exporter said.
//!
//! # Scopes and the watchdog
//!
//! State is keyed by the same status scope id as [`crate::status`] —
//! a `dgrd` worker wrapping a job in `status_scope(id)` gets a sentinel
//! row per job for free. The daemon may additionally [`watchdog_arm`] a
//! scope with a wall-clock deadline and/or a stall budget; every tick
//! then checks both, and on breach raises the job's cooperative-cancel
//! flag and records a structured `watchdog: …` reason the worker turns
//! into a `failed` terminal state. The watchdog only ever *cancels* — it
//! never perturbs the optimization — so guide output stays byte-identical
//! with sentinel on or off.
//!
//! Like every obs surface, all entry points are gated on
//! [`crate::enabled`]: a disabled run pays one relaxed load per tick.

use crate::json::JsonObject;
use crate::parse::{parse_jsonl, JsonValue};
use crate::telemetry::IterationRow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Iterations before divergence / spike / stall rules may trip (the
/// first few iterations are legitimately chaotic).
pub const WARMUP_ITERS: u64 = 16;
/// Smoothing factor for the loss / gradient EWMAs.
pub const EWMA_ALPHA: f32 = 0.1;
/// `divergence` trips when the loss EWMA exceeds this multiple of its
/// running minimum.
pub const DIVERGENCE_RATIO: f32 = 2.0;
/// `grad_spike` trips when a gradient norm exceeds this multiple of the
/// gradient EWMA. Healthy DGR runs show legitimate mid-run spikes up to
/// ~16x (temperature-decay steps re-sharpen the softmax), so the
/// threshold sits well above that band.
pub const GRAD_SPIKE_RATIO: f32 = 25.0;
/// Loss-delta window for the oscillation rule.
pub const OSC_WINDOW: usize = 64;
/// Sign-flip fraction of [`OSC_WINDOW`] that counts as oscillation.
pub const OSC_FLIP_RATE: f32 = 0.6;
/// Mean |loss delta| must exceed this fraction of the loss EWMA for
/// oscillation to trip (late-stage micro-jitter is healthy).
pub const OSC_MIN_REL_AMPLITUDE: f32 = 0.05;
/// `overflow_stall` trips after this many iterations without a ≥1%
/// improvement of the best overflow seen (while overflow is positive).
pub const STALL_WINDOW: u64 = 256;
/// `rate_collapse` trips when iterations/sec drop below this fraction of
/// the last comparable ledger run.
pub const RATE_COLLAPSE_RATIO: f64 = 0.5;
/// Relative loss improvement that resets the watchdog's stall counter.
pub const IMPROVE_EPS: f32 = 1e-3;
/// Evidence samples retained per rule window.
pub const EVIDENCE_CAPACITY: usize = 32;

/// Finding severity; orderings rank `Critical` above `Warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Degraded but possibly recoverable (spikes, plateaus, slowness).
    Warn,
    /// The run's numbers can no longer be trusted (NaN, divergence).
    Critical,
}

impl Severity {
    /// Lowercase wire name (`"warn"` / `"critical"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// One tripped rule with the evidence window that tripped it.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Rule name (`"divergence"`, `"poisoning"`, ...).
    pub rule: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Rule-specific magnitude used to rank findings of equal severity
    /// (e.g. the loss ratio for divergence).
    pub score: f32,
    /// Iteration at which the rule tripped.
    pub iter: u64,
    /// Human-readable explanation with the numbers that mattered.
    pub message: String,
    /// Recent `(iter, value)` samples of the signal the rule watches,
    /// oldest first, ending at the trip point.
    pub evidence: Vec<(u64, f32)>,
}

impl Finding {
    /// Serializes the finding as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("rule", self.rule);
        o.field_str("severity", self.severity.as_str());
        o.field_f32("score", self.score);
        o.field_u64("iter", self.iter);
        o.field_str("message", &self.message);
        let (start, end) = match (self.evidence.first(), self.evidence.last()) {
            (Some(&(s, _)), Some(&(e, _))) => (s, e),
            _ => (self.iter, self.iter),
        };
        o.field_u64("window_start", start);
        o.field_u64("window_end", end);
        let vals: Vec<f32> = self.evidence.iter().map(|&(_, v)| v).collect();
        o.field_f32_array("window_values", &vals);
        o.finish()
    }
}

/// Sorts findings most severe first, then by score descending.
pub fn rank_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.iter.cmp(&b.iter))
    });
}

/// The overall verdict for one scope (worst surviving finding).
/// Ordered `Ok < Warn < Critical` so `max` folds to the worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Verdict {
    /// No rule has tripped.
    #[default]
    Ok,
    /// At least one warn-level finding.
    Warn,
    /// At least one critical finding.
    Critical,
}

impl Verdict {
    /// Lowercase wire name (`"ok"` / `"warn"` / `"critical"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "warn",
            Verdict::Critical => "critical",
        }
    }

    fn absorb(&mut self, s: Severity) {
        let next = match s {
            Severity::Warn => Verdict::Warn,
            Severity::Critical => Verdict::Critical,
        };
        if matches!(
            (*self, next),
            (Verdict::Ok, _) | (Verdict::Warn, Verdict::Critical)
        ) {
            *self = next;
        }
    }
}

/// Verdict from a slice of findings (worst severity wins).
pub fn verdict_of(findings: &[Finding]) -> Verdict {
    let mut v = Verdict::Ok;
    for f in findings {
        v.absorb(f.severity);
    }
    v
}

/// A bounded, oldest-first window of `(iter, value)` evidence samples.
#[derive(Debug, Clone, Default)]
struct Evidence {
    samples: Vec<(u64, f32)>,
}

impl Evidence {
    fn push(&mut self, iter: u64, value: f32) {
        if self.samples.len() == EVIDENCE_CAPACITY {
            self.samples.remove(0);
        }
        self.samples.push((iter, value));
    }
}

/// The pure per-run rule fold: online ticks and the offline `dgr doctor`
/// replay both drive one of these, so their verdicts agree by
/// construction. Feed rows oldest-first via [`observe`](Self::observe);
/// newly tripped findings come back (each rule trips at most once).
#[derive(Debug, Clone, Default)]
pub struct RuleEngine {
    rows_seen: u64,
    ewma_loss: Option<f32>,
    min_ewma_loss: f32,
    ewma_grad: Option<f32>,
    prev_loss: Option<f32>,
    /// Signs of recent loss deltas: `true` = increase.
    delta_signs: Vec<bool>,
    delta_mags: Vec<f32>,
    best_overflow: f32,
    last_overflow_improve: u64,
    /// Best (lowest) loss and the iter it happened — feeds stall budgets.
    best_loss: Option<f32>,
    last_loss_improve: u64,
    loss_window: Evidence,
    grad_window: Evidence,
    overflow_window: Evidence,
    tripped: Vec<&'static str>,
}

impl RuleEngine {
    /// A fresh engine (identical to `Default`).
    pub fn new() -> Self {
        RuleEngine::default()
    }

    /// Iteration index of the last relative loss improvement (watchdog
    /// stall budgets count from here).
    pub fn last_loss_improve(&self) -> u64 {
        self.last_loss_improve
    }

    fn tripped(&self, rule: &'static str) -> bool {
        self.tripped.contains(&rule)
    }

    fn trip(&mut self, finding: Finding, out: &mut Vec<Finding>) {
        self.tripped.push(finding.rule);
        out.push(finding);
    }

    /// Folds one row into the rolling state, returning any findings that
    /// tripped on this row. Non-lane-0 rows of batched runs only feed the
    /// poisoning check (headline dynamics track lane 0, like `/status`).
    pub fn observe(&mut self, row: &IterationRow) -> Vec<Finding> {
        let mut out = Vec::new();
        let iter = row.iter as u64;

        // poisoning: any lane, any non-finite term
        if !self.tripped("poisoning") {
            let poisoned = [
                ("loss", row.loss),
                ("wl", row.wl),
                ("vias", row.vias),
                ("overflow", row.overflow),
                ("grad_norm", row.grad_norm),
            ]
            .into_iter()
            .find(|(_, v)| !v.is_finite());
            if let Some((field, _)) = poisoned {
                let ev = self.loss_window.clone();
                self.trip(
                    Finding {
                        rule: "poisoning",
                        severity: Severity::Critical,
                        score: f32::MAX,
                        iter,
                        message: format!("non-finite `{field}` at iteration {iter} — numbers downstream of this point are meaningless"),
                        evidence: ev.samples.clone(),
                    },
                    &mut out,
                );
            }
        }
        if row.lane.unwrap_or(0) != 0 {
            return out;
        }
        self.rows_seen += 1;
        self.loss_window.push(iter, row.loss);
        self.grad_window.push(iter, row.grad_norm);
        self.overflow_window.push(iter, row.overflow);

        if row.loss.is_finite() {
            // divergence: EWMA loss vs its running minimum
            let ewma = match self.ewma_loss {
                None => row.loss,
                Some(prev) => prev + EWMA_ALPHA * (row.loss - prev),
            };
            self.ewma_loss = Some(ewma);
            if self.rows_seen == 1 || ewma < self.min_ewma_loss {
                self.min_ewma_loss = ewma;
            }
            if self.rows_seen > WARMUP_ITERS
                && self.min_ewma_loss > 0.0
                && ewma > self.min_ewma_loss * DIVERGENCE_RATIO
                && !self.tripped("divergence")
            {
                let ratio = ewma / self.min_ewma_loss;
                let ev = self.loss_window.clone();
                self.trip(
                    Finding {
                        rule: "divergence",
                        severity: Severity::Critical,
                        score: ratio,
                        iter,
                        message: format!(
                            "smoothed loss {ewma:.3} is {ratio:.2}x its running minimum {:.3} — the optimization is diverging",
                            self.min_ewma_loss
                        ),
                        evidence: ev.samples.clone(),
                    },
                    &mut out,
                );
            }

            // best-loss tracking (stall budgets)
            match self.best_loss {
                Some(best) if row.loss < best * (1.0 - IMPROVE_EPS) => {
                    self.best_loss = Some(row.loss);
                    self.last_loss_improve = iter;
                }
                None => {
                    self.best_loss = Some(row.loss);
                    self.last_loss_improve = iter;
                }
                _ => {}
            }

            // oscillation: sign-flip rate of loss deltas at real amplitude
            if let Some(prev) = self.prev_loss {
                let delta = row.loss - prev;
                if self.delta_signs.len() == OSC_WINDOW {
                    self.delta_signs.remove(0);
                    self.delta_mags.remove(0);
                }
                self.delta_signs.push(delta > 0.0);
                self.delta_mags.push(delta.abs());
                if self.delta_signs.len() == OSC_WINDOW && !self.tripped("oscillation") {
                    let flips = self.delta_signs.windows(2).filter(|w| w[0] != w[1]).count() as f32
                        / (OSC_WINDOW - 1) as f32;
                    let mean_mag =
                        self.delta_mags.iter().sum::<f32>() / self.delta_mags.len() as f32;
                    let scale = self.ewma_loss.unwrap_or(0.0).abs().max(f32::EPSILON);
                    if flips > OSC_FLIP_RATE && mean_mag > OSC_MIN_REL_AMPLITUDE * scale {
                        let ev = self.loss_window.clone();
                        self.trip(
                            Finding {
                                rule: "oscillation",
                                severity: Severity::Warn,
                                score: flips,
                                iter,
                                message: format!(
                                    "loss direction flipped {:.0}% of the last {OSC_WINDOW} iterations at {:.1}% mean amplitude — likely an unstable learning rate or temperature",
                                    flips * 100.0,
                                    100.0 * mean_mag / scale
                                ),
                                evidence: ev.samples.clone(),
                            },
                            &mut out,
                        );
                    }
                }
            }
            self.prev_loss = Some(row.loss);
        }

        // gradient spike vs EWMA
        if row.grad_norm.is_finite() {
            if let Some(ewma_g) = self.ewma_grad {
                if self.rows_seen > WARMUP_ITERS
                    && ewma_g > 0.0
                    && row.grad_norm > ewma_g * GRAD_SPIKE_RATIO
                    && !self.tripped("grad_spike")
                {
                    let ratio = row.grad_norm / ewma_g;
                    let ev = self.grad_window.clone();
                    self.trip(
                        Finding {
                            rule: "grad_spike",
                            severity: Severity::Warn,
                            score: ratio,
                            iter,
                            message: format!(
                                "gradient norm {:.3} is {ratio:.1}x its smoothed level {ewma_g:.3} at iteration {iter}",
                                row.grad_norm
                            ),
                            evidence: ev.samples.clone(),
                        },
                        &mut out,
                    );
                }
            }
            self.ewma_grad = Some(match self.ewma_grad {
                None => row.grad_norm,
                Some(prev) => prev + EWMA_ALPHA * (row.grad_norm - prev),
            });
        }

        // overflow plateau
        if row.overflow.is_finite() {
            if self.rows_seen == 1 || row.overflow < self.best_overflow * 0.99 {
                self.best_overflow = row.overflow;
                self.last_overflow_improve = iter;
            }
            if self.rows_seen > WARMUP_ITERS
                && self.best_overflow > 0.0
                && iter.saturating_sub(self.last_overflow_improve) >= STALL_WINDOW
                && !self.tripped("overflow_stall")
            {
                let stalled = iter - self.last_overflow_improve;
                let ev = self.overflow_window.clone();
                self.trip(
                    Finding {
                        rule: "overflow_stall",
                        severity: Severity::Warn,
                        score: stalled as f32,
                        iter,
                        message: format!(
                            "overflow stuck at {:.3} for {stalled} iterations (best seen {:.3}) — capacity pressure is not resolving",
                            row.overflow, self.best_overflow
                        ),
                        evidence: ev.samples.clone(),
                    },
                    &mut out,
                );
            }
        }
        out
    }
}

/// Builds the `rate_collapse` finding when `current` iterations/sec fall
/// below [`RATE_COLLAPSE_RATIO`] of a comparable `baseline` (from the
/// ledger's last run with the same config fingerprint). Pure — the CLI
/// and `dgr doctor` call it where wall-clock context exists.
pub fn rate_collapse_finding(current: f64, baseline: f64) -> Option<Finding> {
    if !(current.is_finite() && baseline.is_finite()) || baseline <= 0.0 || current <= 0.0 {
        return None;
    }
    if current >= baseline * RATE_COLLAPSE_RATIO {
        return None;
    }
    let ratio = current / baseline;
    Some(Finding {
        rule: "rate_collapse",
        severity: Severity::Warn,
        score: (1.0 / ratio.max(1e-9)) as f32,
        iter: 0,
        message: format!(
            "{current:.1} iterations/sec is {:.0}% of the last comparable run's {baseline:.1} — the run is anomalously slow",
            ratio * 100.0
        ),
        evidence: vec![(0, baseline as f32), (0, current as f32)],
    })
}

/// Replays telemetry rows (oldest first) through a fresh [`RuleEngine`]
/// and returns every finding, ranked most severe first. This is the
/// engine behind `dgr doctor`.
pub fn analyze_rows(rows: &[IterationRow]) -> Vec<Finding> {
    let mut engine = RuleEngine::new();
    let mut findings = Vec::new();
    for row in rows {
        findings.extend(engine.observe(row));
    }
    rank_findings(&mut findings);
    findings
}

/// Parses telemetry JSONL text into rows (the inverse of
/// [`IterationRow::to_json`]; `null` numerics map to NaN so the
/// poisoning rule sees them).
///
/// # Errors
///
/// Returns `(line_number, message)` on malformed JSON.
pub fn rows_from_jsonl(text: &str) -> Result<Vec<IterationRow>, (usize, String)> {
    let values = parse_jsonl(text).map_err(|(line, e)| (line, e.to_string()))?;
    let mut rows = Vec::with_capacity(values.len());
    for (i, v) in values.iter().enumerate() {
        let num = |key: &str| -> f32 {
            match v.get(key) {
                Some(JsonValue::Num(n)) => *n as f32,
                _ => f32::NAN,
            }
        };
        let iter = v
            .get("iter")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| (i + 1, "row missing `iter`".to_string()))?;
        rows.push(IterationRow {
            iter: iter as usize,
            loss: num("loss"),
            wl: num("wl"),
            vias: num("vias"),
            overflow: num("overflow"),
            temperature: num("temperature"),
            grad_norm: num("grad_norm"),
            mem_rss: v.get("mem_rss").and_then(JsonValue::as_u64),
            lane: v.get("lane").and_then(JsonValue::as_u64),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Live per-scope registry (mirrors crate::status's scope pattern)
// ---------------------------------------------------------------------

/// Watchdog configuration and breach record for one scope.
#[derive(Debug, Clone)]
struct Watchdog {
    cancel: Arc<AtomicBool>,
    armed_at: Instant,
    deadline_ms: Option<u64>,
    max_stall_iters: Option<u64>,
    breach: Option<String>,
}

#[derive(Default)]
struct ScopeSentinel {
    engine: RuleEngine,
    findings: Vec<Finding>,
    watchdog: Option<Watchdog>,
}

#[derive(Default)]
struct LiveSentinel {
    scopes: BTreeMap<u64, ScopeSentinel>,
}

fn live() -> MutexGuard<'static, LiveSentinel> {
    static LIVE: OnceLock<Mutex<LiveSentinel>> = OnceLock::new();
    match LIVE
        .get_or_init(|| Mutex::new(LiveSentinel::default()))
        .lock()
    {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Rule names with a live alert gauge on `/metrics`.
const ALERT_RULES: &[&str] = &[
    "poisoning",
    "divergence",
    "grad_spike",
    "oscillation",
    "overflow_stall",
];

fn alert_gauge(rule: &str) -> &'static crate::metrics::Gauge {
    match rule {
        "poisoning" => crate::gauge("sentinel.alert.poisoning"),
        "divergence" => crate::gauge("sentinel.alert.divergence"),
        "grad_spike" => crate::gauge("sentinel.alert.grad_spike"),
        "oscillation" => crate::gauge("sentinel.alert.oscillation"),
        _ => crate::gauge("sentinel.alert.overflow_stall"),
    }
}

fn publish_metrics(l: &LiveSentinel) {
    let mut unhealthy = 0u64;
    let mut per_rule: BTreeMap<&str, f64> = ALERT_RULES.iter().map(|r| (*r, 0.0)).collect();
    for s in l.scopes.values() {
        if verdict_of(&s.findings) != Verdict::Ok {
            unhealthy += 1;
        }
        for f in &s.findings {
            if let Some(n) = per_rule.get_mut(f.rule) {
                *n += 1.0;
            }
        }
    }
    crate::gauge("sentinel.unhealthy_jobs").set(unhealthy as f64);
    for (rule, n) in per_rule {
        alert_gauge(rule).set(n);
    }
}

/// Feeds one telemetry row to the current scope's rule engine and
/// watchdog. Call next to `status_tick` — gated on [`crate::enabled`],
/// never touches the optimization state.
pub fn sentinel_tick(row: &IterationRow) {
    if !crate::enabled() {
        return;
    }
    let id = crate::status::status_scope_id();
    let mut l = live();
    let s = l.scopes.entry(id).or_default();
    let new = s.engine.observe(row);
    let had_news = !new.is_empty();
    for f in &new {
        crate::counter("sentinel.findings.total").add(1);
        crate::histogram("sentinel.finding_iter").record(f.iter);
    }
    s.findings.extend(new);

    // watchdog: wall-clock deadline and stall budget
    if let Some(w) = s.watchdog.as_mut() {
        if w.breach.is_none() {
            let elapsed_ms = w.armed_at.elapsed().as_millis() as u64;
            if let Some(deadline) = w.deadline_ms {
                if elapsed_ms >= deadline {
                    w.breach = Some(format!(
                        "watchdog: deadline_ms={deadline} exceeded ({elapsed_ms}ms elapsed at iteration {})",
                        row.iter
                    ));
                }
            }
            if w.breach.is_none() {
                if let Some(budget) = w.max_stall_iters {
                    let stalled = (row.iter as u64).saturating_sub(s.engine.last_loss_improve());
                    if stalled >= budget {
                        w.breach = Some(format!(
                            "watchdog: no loss improvement in {stalled} iterations (max_stall_iters={budget})"
                        ));
                    }
                }
            }
            if w.breach.is_some() {
                w.cancel.store(true, Ordering::Relaxed);
                crate::counter("sentinel.watchdog.breaches").add(1);
            }
        }
    }
    if had_news {
        publish_metrics(&l);
    }
}

/// Arms the SLO watchdog for scope `id`: on breach the sentinel raises
/// `cancel` (the run's cooperative-cancel flag) and records a structured
/// reason retrievable via [`watchdog_breach`]. Arming with neither limit
/// is a no-op.
pub fn watchdog_arm(
    id: u64,
    cancel: Arc<AtomicBool>,
    deadline_ms: Option<u64>,
    max_stall_iters: Option<u64>,
) {
    if deadline_ms.is_none() && max_stall_iters.is_none() {
        return;
    }
    let mut l = live();
    l.scopes.entry(id).or_default().watchdog = Some(Watchdog {
        cancel,
        armed_at: Instant::now(),
        deadline_ms,
        max_stall_iters,
        breach: None,
    });
}

/// The structured breach reason for scope `id`, if its watchdog fired.
pub fn watchdog_breach(id: u64) -> Option<String> {
    live()
        .scopes
        .get(&id)
        .and_then(|s| s.watchdog.as_ref())
        .and_then(|w| w.breach.clone())
}

/// The current verdict and ranked findings for scope `id` (`None` when
/// the scope has never ticked).
pub fn health_of(id: u64) -> Option<(Verdict, Vec<Finding>)> {
    let l = live();
    let s = l.scopes.get(&id)?;
    let mut findings = s.findings.clone();
    rank_findings(&mut findings);
    Some((verdict_of(&findings), findings))
}

/// Scope `id`'s findings as JSONL (one finding per line) — the health
/// band input of the HTML report. Empty for a healthy or unknown scope.
pub fn health_timeline_jsonl_of(id: u64) -> String {
    let mut out = String::new();
    if let Some((_, findings)) = health_of(id) {
        for f in &findings {
            out.push_str(&f.to_json());
            out.push('\n');
        }
    }
    out
}

/// Compact health summary for the ledger record: `"ok"` or a
/// comma-joined `rule@iter` list, worst first.
pub fn health_summary_of(id: u64) -> String {
    match health_of(id) {
        None => "ok".to_string(),
        Some((Verdict::Ok, _)) => "ok".to_string(),
        Some((_, findings)) => findings
            .iter()
            .map(|f| format!("{}@{}", f.rule, f.iter))
            .collect::<Vec<_>>()
            .join(","),
    }
}

/// The `/health` JSON payload: overall verdict (worst across live
/// scopes) plus one row per scope with its ranked findings.
pub fn health_json() -> String {
    let l = live();
    let mut overall = Verdict::Ok;
    let mut rows = String::from("[");
    for (i, (&id, s)) in l.scopes.iter().enumerate() {
        let mut findings = s.findings.clone();
        rank_findings(&mut findings);
        let verdict = verdict_of(&findings);
        match verdict {
            Verdict::Critical => overall = Verdict::Critical,
            Verdict::Warn if overall == Verdict::Ok => overall = Verdict::Warn,
            _ => {}
        }
        if i > 0 {
            rows.push(',');
        }
        let mut row = JsonObject::new();
        row.field_u64("id", id);
        row.field_str("verdict", verdict.as_str());
        if let Some(w) = &s.watchdog {
            match &w.breach {
                Some(reason) => row.field_str("watchdog", reason),
                None => row.field_str("watchdog", "armed"),
            }
        }
        let mut fl = String::from("[");
        for (j, f) in findings.iter().enumerate() {
            if j > 0 {
                fl.push(',');
            }
            fl.push_str(&f.to_json());
        }
        fl.push(']');
        row.field_raw("findings", &fl);
        rows.push_str(&row.finish());
    }
    rows.push(']');
    let mut o = JsonObject::new();
    o.field_str("verdict", overall.as_str());
    o.field_u64("jobs", l.scopes.len() as u64);
    o.field_raw("rows", &rows);
    o.finish()
}

/// Drops scope `id`'s sentinel state (job evicted). Missing scopes are a
/// no-op.
pub fn sentinel_remove(id: u64) {
    let mut l = live();
    l.scopes.remove(&id);
    publish_metrics(&l);
}

/// Clears all sentinel state (every scope, watchdogs included). Part of
/// [`crate::reset`].
pub fn reset_sentinel() {
    live().scopes.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(iter: usize, loss: f32) -> IterationRow {
        IterationRow {
            iter,
            loss,
            wl: loss * 0.6,
            vias: loss * 0.1,
            overflow: 0.0,
            temperature: 1.0,
            grad_norm: loss * 0.01,
            mem_rss: None,
            lane: None,
        }
    }

    #[test]
    fn healthy_decay_trips_nothing() {
        let rows: Vec<_> = (0..400)
            .map(|i| row(i, 100.0 * (-0.01 * i as f32).exp() + 5.0))
            .collect();
        assert_eq!(analyze_rows(&rows), vec![]);
    }

    #[test]
    fn exploding_loss_trips_divergence() {
        let rows: Vec<_> = (0..120)
            .map(|i| row(i, 50.0 * (1.0 + 0.08 * i as f32)))
            .collect();
        let findings = analyze_rows(&rows);
        let div = findings
            .iter()
            .find(|f| f.rule == "divergence")
            .expect("divergence tripped");
        assert_eq!(div.severity, Severity::Critical);
        assert!(!div.evidence.is_empty(), "evidence window recorded");
        assert!(div.evidence.first().unwrap().0 < div.iter);
    }

    #[test]
    fn nan_trips_poisoning_once() {
        let mut rows: Vec<_> = (0..40).map(|i| row(i, 80.0 - i as f32)).collect();
        rows[20].loss = f32::NAN;
        rows[25].grad_norm = f32::INFINITY;
        let findings = analyze_rows(&rows);
        let poison: Vec<_> = findings.iter().filter(|f| f.rule == "poisoning").collect();
        assert_eq!(poison.len(), 1, "{findings:?}");
        assert_eq!(poison[0].iter, 20);
        assert_eq!(poison[0].severity, Severity::Critical);
    }

    #[test]
    fn big_swings_trip_oscillation_but_jitter_does_not() {
        // 30% swings around a flat loss: oscillation
        let noisy: Vec<_> = (0..200)
            .map(|i| row(i, 100.0 + if i % 2 == 0 { 30.0 } else { -30.0 }))
            .collect();
        let findings = analyze_rows(&noisy);
        assert!(
            findings.iter().any(|f| f.rule == "oscillation"),
            "{findings:?}"
        );
        // 0.1% jitter: healthy late-stage noise
        let calm: Vec<_> = (0..200)
            .map(|i| row(i, 100.0 + if i % 2 == 0 { 0.1 } else { -0.1 }))
            .collect();
        assert!(analyze_rows(&calm).iter().all(|f| f.rule != "oscillation"));
    }

    #[test]
    fn gradient_spike_trips_after_warmup() {
        let mut rows: Vec<_> = (0..60).map(|i| row(i, 90.0 - i as f32)).collect();
        rows[40].grad_norm = 500.0;
        let findings = analyze_rows(&rows);
        let spike = findings.iter().find(|f| f.rule == "grad_spike").unwrap();
        assert_eq!(spike.iter, 40);
    }

    #[test]
    fn stuck_overflow_trips_the_stall_rule() {
        let rows: Vec<_> = (0..400)
            .map(|i| {
                let mut r = row(i, 50.0 - 0.01 * i as f32);
                r.overflow = 3.0;
                r
            })
            .collect();
        let findings = analyze_rows(&rows);
        assert!(
            findings.iter().any(|f| f.rule == "overflow_stall"),
            "{findings:?}"
        );
    }

    #[test]
    fn findings_rank_critical_first() {
        let mut f = vec![
            Finding {
                rule: "oscillation",
                severity: Severity::Warn,
                score: 0.9,
                iter: 5,
                message: String::new(),
                evidence: vec![],
            },
            Finding {
                rule: "divergence",
                severity: Severity::Critical,
                score: 3.0,
                iter: 9,
                message: String::new(),
                evidence: vec![],
            },
        ];
        rank_findings(&mut f);
        assert_eq!(f[0].rule, "divergence");
    }

    #[test]
    fn rate_collapse_compares_against_baseline() {
        assert!(rate_collapse_finding(10.0, 15.0).is_none());
        let f = rate_collapse_finding(4.0, 100.0).unwrap();
        assert_eq!(f.rule, "rate_collapse");
        assert!(f.message.contains("4.0"));
        assert!(rate_collapse_finding(4.0, 0.0).is_none());
        assert!(rate_collapse_finding(f64::NAN, 10.0).is_none());
    }

    #[test]
    fn jsonl_round_trips_rows_including_nan() {
        let mut r = row(3, 12.5);
        r.loss = f32::NAN; // serializes as null
        let text = format!("{}\n{}\n", row(2, 13.0).to_json(), r.to_json());
        let rows = rows_from_jsonl(&text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].iter, 2);
        assert!(rows[1].loss.is_nan(), "null loss re-read as NaN");
        assert!(rows_from_jsonl("{\"loss\":1}\n").is_err(), "iter required");
    }

    #[test]
    fn finding_json_carries_the_evidence_window() {
        let f = Finding {
            rule: "divergence",
            severity: Severity::Critical,
            score: 2.5,
            iter: 40,
            message: "boom".into(),
            evidence: vec![(38, 1.0), (39, 2.0), (40, 4.0)],
        };
        let json = f.to_json();
        assert!(json.contains("\"rule\":\"divergence\""));
        assert!(json.contains("\"window_start\":38"));
        assert!(json.contains("\"window_end\":40"));
        assert!(json.contains("\"window_values\":[1,2,4]"));
    }

    #[test]
    fn live_scopes_tick_and_report_health() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset_sentinel();
        {
            let _scope = crate::status::status_scope(301);
            for i in 0..120 {
                sentinel_tick(&row(i, 50.0 * (1.0 + 0.08 * i as f32)));
            }
        }
        {
            let _scope = crate::status::status_scope(302);
            for i in 0..60 {
                sentinel_tick(&row(i, 100.0 - i as f32));
            }
        }
        crate::set_enabled(false);
        let (v301, f301) = health_of(301).unwrap();
        assert_eq!(v301, Verdict::Critical);
        assert!(f301.iter().any(|f| f.rule == "divergence"));
        assert_eq!(health_of(302).unwrap().0, Verdict::Ok);
        let json = health_json();
        assert!(json.contains("\"verdict\":\"critical\""), "{json}");
        assert!(json.contains("\"id\":301"));
        assert!(json.contains("\"id\":302"));
        assert!(health_summary_of(301).contains("divergence@"));
        assert_eq!(health_summary_of(302), "ok");
        assert!(!health_timeline_jsonl_of(301).is_empty());
        sentinel_remove(301);
        sentinel_remove(302);
        assert!(health_of(301).is_none());
        reset_sentinel();
    }

    #[test]
    fn watchdog_deadline_raises_cancel_with_reason() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset_sentinel();
        let cancel = Arc::new(AtomicBool::new(false));
        {
            let _scope = crate::status::status_scope(401);
            watchdog_arm(401, Arc::clone(&cancel), Some(0), None);
            sentinel_tick(&row(0, 10.0));
        }
        crate::set_enabled(false);
        assert!(cancel.load(Ordering::Relaxed), "cancel flag raised");
        let reason = watchdog_breach(401).unwrap();
        assert!(reason.starts_with("watchdog: deadline_ms=0"), "{reason}");
        sentinel_remove(401);
        reset_sentinel();
    }

    #[test]
    fn watchdog_stall_budget_counts_from_last_improvement() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset_sentinel();
        let cancel = Arc::new(AtomicBool::new(false));
        {
            let _scope = crate::status::status_scope(402);
            watchdog_arm(402, Arc::clone(&cancel), None, Some(50));
            // loss improves for 30 iters, then flatlines
            for i in 0..30 {
                sentinel_tick(&row(i, 100.0 - i as f32));
            }
            for i in 30..85 {
                sentinel_tick(&row(i, 71.0));
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
        crate::set_enabled(false);
        assert!(cancel.load(Ordering::Relaxed));
        let reason = watchdog_breach(402).unwrap();
        assert!(reason.contains("max_stall_iters=50"), "{reason}");
        sentinel_remove(402);
        reset_sentinel();
    }

    #[test]
    fn disabled_ticks_are_dropped() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        reset_sentinel();
        sentinel_tick(&row(0, f32::NAN));
        assert!(health_of(crate::status::status_scope_id()).is_none());
    }
}
