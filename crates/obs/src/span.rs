//! Hierarchical span timers with a thread-safe global registry and
//! Chrome trace-event export.
//!
//! A span is opened with [`span`] and closed when its [`SpanGuard`]
//! drops. Completed spans land in a process-global log as
//! `(category, name, thread, depth, start, duration)` tuples, and are
//! simultaneously folded into per-name aggregate totals, so the registry
//! serves both uses:
//!
//! * [`chrome_trace`] — the full event log as a Chrome trace-event JSON
//!   array (`chrome://tracing` / Perfetto "X" complete events, one track
//!   per thread; nesting is reconstructed from time containment),
//! * [`span_totals`] — per-name `(count, total)` aggregates for summary
//!   tables and benchmark phase breakdowns.
//!
//! Recording is gated on [`crate::enabled`]: a disabled span costs one
//! relaxed atomic load. An enabled span costs two `Instant::now()` calls
//! plus one mutex push — suitable for per-phase and per-iteration scopes,
//! not for per-element inner loops (use [`crate::counter`] there).
//!
//! The event log is capped at [`MAX_EVENTS`]; beyond it, events still
//! fold into the aggregates but the detailed log drops them (the drop
//! count is reported by [`dropped_events`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::JsonObject;

/// Hard cap on detailed span events held in memory (~48 bytes each).
pub const MAX_EVENTS: usize = 1 << 20;

/// One completed span.
#[derive(Debug, Clone, Copy)]
struct SpanEvent {
    cat: &'static str,
    name: &'static str,
    tid: u32,
    depth: u32,
    start_ns: u64,
    dur_ns: u64,
}

#[derive(Default)]
struct SpanLog {
    events: Vec<SpanEvent>,
    totals: HashMap<&'static str, (u64, u128)>,
    dropped: usize,
}

fn log() -> std::sync::MutexGuard<'static, SpanLog> {
    static LOG: OnceLock<Mutex<SpanLog>> = OnceLock::new();
    // poison-tolerant: spans record from worker threads; one panicking
    // scope must not wedge the registry for the rest of the process
    match LOG.get_or_init(|| Mutex::new(SpanLog::default())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The registry epoch: all timestamps are offsets from the first span.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small dense per-thread ids for trace tracks (OS thread ids are sparse).
fn thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

thread_local! {
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

// ---------------------------------------------------------------------------
// active-span stacks (the sampling profiler's view)
// ---------------------------------------------------------------------------

/// Whether the sampling profiler is attached. When off (the default),
/// span open/close never touches the active-stack registry, preserving
/// the lock-free open path.
static PROFILING: AtomicBool = AtomicBool::new(false);

#[inline]
pub(crate) fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

pub(crate) fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
    if !on {
        active().clear();
    }
}

/// Per-thread stacks of currently-open span names. Only maintained while
/// [`profiling`] — a mutex push/pop per span open/close, acceptable for
/// phase- and iteration-granularity spans.
fn active() -> std::sync::MutexGuard<'static, HashMap<u32, Vec<&'static str>>> {
    static ACTIVE: OnceLock<Mutex<HashMap<u32, Vec<&'static str>>>> = OnceLock::new();
    match ACTIVE.get_or_init(|| Mutex::new(HashMap::new())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A point-in-time copy of every thread's open-span stack, outermost
/// frame first, sorted by thread id (deterministic iteration for the
/// profiler's aggregation). Empty stacks are skipped.
pub(crate) fn active_stacks() -> Vec<(u32, Vec<&'static str>)> {
    let map = active();
    let mut out: Vec<(u32, Vec<&'static str>)> = map
        .iter()
        .filter(|(_, s)| !s.is_empty())
        .map(|(&tid, s)| (tid, s.clone()))
        .collect();
    out.sort_by_key(|(tid, _)| *tid);
    out
}

/// Opens a span named `name` under category `cat`; the span closes (and
/// is recorded) when the returned guard drops. Both strings must be
/// static so hot recording never allocates.
///
/// When observability is disabled ([`crate::enabled`] is false) the
/// returned guard is inert.
#[must_use = "a span measures the scope of its guard"]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    // materialize the epoch before `start` so offsets are never negative
    let _ = epoch();
    let tracked = profiling();
    if tracked {
        active().entry(thread_id()).or_default().push(name);
    }
    SpanGuard {
        live: Some(LiveSpan {
            cat,
            name,
            depth,
            tracked,
            start: Instant::now(),
        }),
    }
}

struct LiveSpan {
    cat: &'static str,
    name: &'static str,
    depth: u32,
    /// Whether this span pushed onto the active-stack registry at open
    /// time (profiling may toggle while the span is live; pop iff pushed).
    tracked: bool,
    start: Instant,
}

/// Guard returned by [`span`]; records the span on drop.
#[must_use = "a span measures the scope of its guard"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur = live.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if live.tracked {
            // tracked spans close in LIFO order among themselves, so the
            // top of this thread's stack is this span (untracked spans
            // never pushed)
            if let Some(stack) = active().get_mut(&thread_id()) {
                stack.pop();
            }
        }
        let event = SpanEvent {
            cat: live.cat,
            name: live.name,
            tid: thread_id(),
            depth: live.depth,
            start_ns: live.start.duration_since(epoch()).as_nanos() as u64,
            dur_ns: dur.as_nanos() as u64,
        };
        let mut log = log();
        let t = log.totals.entry(live.name).or_insert((0, 0));
        t.0 += 1;
        t.1 += dur.as_nanos();
        if log.events.len() < MAX_EVENTS {
            log.events.push(event);
        } else {
            log.dropped += 1;
        }
    }
}

/// Per-name aggregate over all recorded spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTotal {
    /// The span name.
    pub name: &'static str,
    /// How many spans completed under this name.
    pub count: u64,
    /// Summed wall-clock duration.
    pub total: Duration,
}

impl SpanTotal {
    /// Mean duration per span.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// All per-name aggregates, longest total first.
pub fn span_totals() -> Vec<SpanTotal> {
    let log = log();
    let mut out: Vec<SpanTotal> = log
        .totals
        .iter()
        .map(|(&name, &(count, ns))| SpanTotal {
            name,
            count,
            total: Duration::from_nanos(ns.min(u64::MAX as u128) as u64),
        })
        .collect();
    out.sort_by(|a, b| b.total.cmp(&a.total).then(a.name.cmp(b.name)));
    out
}

/// Number of detailed events discarded after [`MAX_EVENTS`] was reached
/// (aggregates are never dropped).
pub fn dropped_events() -> usize {
    log().dropped
}

/// Clears the event log and the aggregates.
pub fn reset_spans() {
    let mut log = log();
    log.events.clear();
    log.totals.clear();
    log.dropped = 0;
}

/// Serializes every recorded span as a Chrome trace-event JSON array.
///
/// Load the result in `chrome://tracing` or <https://ui.perfetto.dev>.
/// Timestamps are microseconds since the first span; each pipeline thread
/// gets its own track.
pub fn chrome_trace() -> String {
    let log = log();
    let mut out = String::with_capacity(64 + log.events.len() * 96);
    out.push_str("[\n");
    let mut threads: Vec<u32> = log.events.iter().map(|e| e.tid).collect();
    threads.sort_unstable();
    threads.dedup();
    let mut first = true;
    for tid in threads {
        let mut o = JsonObject::new();
        o.field_str("name", "thread_name");
        o.field_str("ph", "M");
        o.field_u64("pid", 1);
        o.field_u64("tid", tid as u64);
        o.field_raw(
            "args",
            &format!(
                "{{\"name\":\"dgr-{}\"}}",
                if tid == 0 { "main" } else { "pool" }
            ),
        );
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&o.finish());
    }
    for e in &log.events {
        let mut o = JsonObject::new();
        o.field_str("name", e.name);
        o.field_str("cat", e.cat);
        o.field_str("ph", "X");
        o.field_u64("pid", 1);
        o.field_u64("tid", e.tid as u64);
        o.field_f64("ts", e.start_ns as f64 / 1e3);
        o.field_f64("dur", e.dur_ns as f64 / 1e3);
        o.field_raw("args", &format!("{{\"depth\":{}}}", e.depth));
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&o.finish());
    }
    out.push_str("\n]\n");
    out
}

/// Writes [`chrome_trace`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset_spans();
        {
            let _outer = span("test", "outer");
            for _ in 0..3 {
                let _inner = span("test", "inner");
                std::hint::black_box(0u64);
            }
        }
        crate::set_enabled(false);
        let totals = span_totals();
        let outer = totals.iter().find(|t| t.name == "outer").unwrap();
        let inner = totals.iter().find(|t| t.name == "inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(outer.total >= inner.total, "outer contains the inners");
        assert!(inner.mean() <= inner.total);
        reset_spans();
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset_spans();
        {
            let _s = span("test", "traced");
        }
        crate::set_enabled(false);
        let json = chrome_trace();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"traced\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""), "thread metadata present");
        // crude structural check: balanced brackets/braces
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        reset_spans();
    }

    #[test]
    fn disabled_spans_cost_nothing_visible() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        reset_spans();
        {
            let _s = span("test", "ghost");
        }
        assert!(span_totals().is_empty());
        assert_eq!(dropped_events(), 0);
    }

    #[test]
    fn cross_thread_spans_get_distinct_tracks() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset_spans();
        let h = std::thread::spawn(|| {
            let _s = span("test", "worker-span");
        });
        {
            let _s = span("test", "main-span");
        }
        h.join().unwrap();
        crate::set_enabled(false);
        let log = log();
        let tids: std::collections::HashSet<u32> = log.events.iter().map(|e| e.tid).collect();
        assert_eq!(log.events.len(), 2);
        assert_eq!(tids.len(), 2, "each thread has its own track");
        drop(log);
        reset_spans();
    }
}
