//! Shared line-oriented output plumbing for the JSONL sinks.
//!
//! [`TelemetrySink`](crate::TelemetrySink) and
//! [`SnapshotSink`](crate::SnapshotSink) both write newline-delimited JSON
//! to either a buffered file or an in-memory buffer; this module holds the
//! destination they share. I/O errors after creation are deliberately
//! swallowed — observability output must never abort a routing run.

use std::io::Write;

/// A line destination: buffered file or in-memory byte buffer.
pub(crate) enum LineOut {
    /// Buffered file output.
    File(std::io::BufWriter<std::fs::File>),
    /// In-memory accumulation (tests, determinism checks).
    Memory(Vec<u8>),
}

impl LineOut {
    /// Creates (truncating) a file destination at `path`.
    pub(crate) fn to_path(path: &str) -> std::io::Result<Self> {
        Ok(LineOut::File(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }

    /// Creates an in-memory destination.
    pub(crate) fn in_memory() -> Self {
        LineOut::Memory(Vec::new())
    }

    /// Short kind tag for `Debug` impls.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            LineOut::File(_) => "file",
            LineOut::Memory(_) => "memory",
        }
    }

    /// Appends `line` plus a trailing newline. Errors are swallowed.
    pub(crate) fn write_line(&mut self, line: &str) {
        match self {
            LineOut::File(w) => {
                let _ = w.write_all(line.as_bytes());
                let _ = w.write_all(b"\n");
            }
            LineOut::Memory(buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
        }
    }

    /// Flushes buffered output (no-op for memory destinations).
    pub(crate) fn flush(&mut self) {
        if let LineOut::File(w) = self {
            let _ = w.flush();
        }
    }

    /// The accumulated text of an in-memory destination (`None` for
    /// files).
    pub(crate) fn memory_contents(&self) -> Option<&str> {
        match self {
            LineOut::Memory(buf) => std::str::from_utf8(buf).ok(),
            LineOut::File(_) => None,
        }
    }
}
