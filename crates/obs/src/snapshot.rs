//! Spatial congestion snapshots and per-net attribution records.
//!
//! A *snapshot stream* is a JSONL file (`dgr route --snap out.snaps`)
//! describing where on the grid the overflow term of Eq. (3) lives and
//! which nets put it there. The stream is self-describing — three record
//! kinds, discriminated by a `"kind"` field:
//!
//! * **header** (first line, once): grid dimensions plus the H/V edge
//!   capacity grids, which are invariant across the run:
//!   `{"kind":"header","version":1,"width":W,"height":H,
//!   "h_capacity":[...],"v_capacity":[...]}`. H edges are listed
//!   row-major, `(width−1)·height` of them; V edges row-major,
//!   `width·(height−1)`.
//! * **snapshot** (every stride iterations and at phase boundaries): the
//!   Eq. (2)/Eq. (10) total-demand grids and the derived per-edge
//!   overflow (`max(0, demand − capacity)`), plus aggregate stats. The
//!   `phase` field is `"train"`, `"extract"` or `"final"`.
//! * **attribution** (once per extracted solution): each overflowed
//!   edge's excess split evenly among the nets crossing it, yielding a
//!   ranked per-net share of the overflow mass alongside that net's
//!   wirelength/turn counts and ICCAD'19 weighted cost.
//!
//! This crate stays dependency-free, so records hold plain vectors —
//! the capture kernels that fill them from grid types live in
//! `dgr-grid`/`dgr-core`.

use crate::json::JsonObject;
use crate::parse::{parse_jsonl, JsonValue};
use crate::sink::LineOut;

/// Schema version written in the header record.
pub const SNAPSHOT_VERSION: u64 = 1;

/// The run-invariant prelude of a snapshot stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotHeader {
    /// Grid width in g-cells.
    pub width: u32,
    /// Grid height in g-cells.
    pub height: u32,
    /// Horizontal-edge capacities, row-major (`(width−1)·height`).
    pub h_capacity: Vec<f32>,
    /// Vertical-edge capacities, row-major (`width·(height−1)`).
    pub v_capacity: Vec<f32>,
}

impl SnapshotHeader {
    /// Serializes the header record (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("kind", "header");
        o.field_u64("version", SNAPSHOT_VERSION);
        o.field_u64("width", self.width as u64);
        o.field_u64("height", self.height as u64);
        o.field_f32_array("h_capacity", &self.h_capacity);
        o.field_f32_array("v_capacity", &self.v_capacity);
        o.finish()
    }
}

/// One spatial congestion capture.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// Iteration the capture was taken at (monotone across rounds).
    pub iter: u64,
    /// Pipeline phase: `"train"`, `"extract"` or `"final"`.
    pub phase: String,
    /// Horizontal-edge total demand (Eq. 2 discrete or Eq. 10 expected).
    pub h_demand: Vec<f32>,
    /// Vertical-edge total demand.
    pub v_demand: Vec<f32>,
    /// Horizontal-edge overflow `max(0, demand − capacity)`.
    pub h_overflow: Vec<f32>,
    /// Vertical-edge overflow.
    pub v_overflow: Vec<f32>,
    /// Edges over capacity by more than the solver epsilon.
    pub overflowed_edges: u64,
    /// Sum of per-edge overflow.
    pub total_overflow: f32,
    /// Largest per-edge overflow.
    pub peak_overflow: f32,
    /// Batch lane index for `--batch N` runs (`None`/`null` for
    /// single-instance captures).
    pub lane: Option<u64>,
}

impl SnapshotRecord {
    /// Serializes the snapshot record (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("kind", "snapshot");
        o.field_u64("iter", self.iter);
        o.field_str("phase", &self.phase);
        o.field_f32_array("h_demand", &self.h_demand);
        o.field_f32_array("v_demand", &self.v_demand);
        o.field_f32_array("h_overflow", &self.h_overflow);
        o.field_f32_array("v_overflow", &self.v_overflow);
        o.field_u64("overflowed_edges", self.overflowed_edges);
        o.field_f32("total_overflow", self.total_overflow);
        o.field_f32("peak_overflow", self.peak_overflow);
        o.field_opt_u64("lane", self.lane);
        o.finish()
    }
}

/// One net's share of the solution cost, as charged by the attribution
/// pass.
#[derive(Debug, Clone, PartialEq)]
pub struct NetShare {
    /// Net index in the input design.
    pub net: u64,
    /// Net name from the design.
    pub name: String,
    /// The net's routed wirelength in g-cell edge units.
    pub wirelength: u64,
    /// The net's 2D turning points.
    pub turns: u64,
    /// Overflow mass charged to this net (excess of each overflowed edge
    /// it crosses, split evenly among that edge's crossing nets).
    pub overflow_share: f32,
    /// Number of overflowed edges this net crosses.
    pub overflowed_edges: u64,
    /// The net's ICCAD'19 weighted cost contribution:
    /// `w_ovf·overflow_share + w_via·turns + w_wl·wirelength`.
    pub cost: f64,
}

impl NetShare {
    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("net", self.net);
        o.field_str("name", &self.name);
        o.field_u64("wl", self.wirelength);
        o.field_u64("turns", self.turns);
        o.field_f32("overflow", self.overflow_share);
        o.field_u64("edges", self.overflowed_edges);
        o.field_f64("cost", self.cost);
        o.finish()
    }
}

/// The per-net attribution of one extracted solution.
///
/// `nets` is ranked worst-offender first (overflow share, then cost,
/// then net index) and may be truncated for stream compactness —
/// `ranked_nets` counts how many nets carried a nonzero overflow share
/// before truncation, so consumers can tell when the table is partial.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRecord {
    /// Pipeline phase the attribution describes (normally `"final"`).
    pub phase: String,
    /// Number of nets in the design.
    pub total_nets: u64,
    /// Nets with a nonzero overflow share (before any truncation).
    pub ranked_nets: u64,
    /// Total overflow mass of the solution.
    pub total_excess: f32,
    /// Portion of `total_excess` charged to nets. The remainder sits on
    /// edges no net wire crosses (pure via-pressure overflow).
    pub charged_excess: f32,
    /// Ranked per-net shares, worst offender first (possibly truncated).
    pub nets: Vec<NetShare>,
}

impl AttributionRecord {
    /// Serializes the attribution record (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("kind", "attribution");
        o.field_str("phase", &self.phase);
        o.field_u64("total_nets", self.total_nets);
        o.field_u64("ranked_nets", self.ranked_nets);
        o.field_f32("total_excess", self.total_excess);
        o.field_f32("charged_excess", self.charged_excess);
        let items: Vec<String> = self.nets.iter().map(NetShare::to_json).collect();
        o.field_raw("nets", &format!("[{}]", items.join(",")));
        o.finish()
    }
}

/// A JSONL snapshot-stream destination (file or in-memory buffer).
pub struct SnapshotSink {
    out: LineOut,
    header_written: bool,
    snapshots: usize,
}

impl std::fmt::Debug for SnapshotSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotSink")
            .field("snapshots", &self.snapshots)
            .field("kind", &self.out.kind())
            .finish()
    }
}

impl SnapshotSink {
    /// Creates (truncating) a snapshot file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn to_path(path: &str) -> std::io::Result<Self> {
        Ok(SnapshotSink {
            out: LineOut::to_path(path)?,
            header_written: false,
            snapshots: 0,
        })
    }

    /// Creates an in-memory sink (tests, determinism checks).
    pub fn in_memory() -> Self {
        SnapshotSink {
            out: LineOut::in_memory(),
            header_written: false,
            snapshots: 0,
        }
    }

    /// Writes the header record. Subsequent calls are ignored, so capture
    /// sites can call this unconditionally before each record.
    pub fn write_header(&mut self, header: &SnapshotHeader) {
        if !self.header_written {
            self.header_written = true;
            self.out.write_line(&header.to_json());
        }
    }

    /// Whether the header record has been written.
    pub fn header_written(&self) -> bool {
        self.header_written
    }

    /// Appends one snapshot record.
    pub fn write_snapshot(&mut self, snap: &SnapshotRecord) {
        self.snapshots += 1;
        self.out.write_line(&snap.to_json());
    }

    /// Appends one attribution record.
    pub fn write_attribution(&mut self, attr: &AttributionRecord) {
        self.out.write_line(&attr.to_json());
    }

    /// Snapshot records written so far (header and attribution excluded).
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }

    /// Flushes buffered output (no-op for memory sinks).
    pub fn flush(&mut self) {
        self.out.flush();
    }

    /// The accumulated JSONL text of an in-memory sink (`None` for file
    /// sinks).
    pub fn memory_contents(&self) -> Option<&str> {
        self.out.memory_contents()
    }
}

impl Drop for SnapshotSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A fully parsed snapshot stream, ready for report rendering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotStream {
    /// The header record, if the stream had one.
    pub header: Option<SnapshotHeader>,
    /// All snapshot records, in stream order.
    pub snapshots: Vec<SnapshotRecord>,
    /// All attribution records, in stream order.
    pub attributions: Vec<AttributionRecord>,
}

impl SnapshotStream {
    /// Parses the JSONL text of a snapshot stream. Unknown record kinds
    /// are skipped (forward compatibility).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<SnapshotStream, String> {
        let values = parse_jsonl(text).map_err(|(line, e)| format!("line {line}: {e}"))?;
        let mut stream = SnapshotStream::default();
        for (i, v) in values.iter().enumerate() {
            let fail = |what: &str| format!("record {}: {what}", i + 1);
            match v.str("kind") {
                Some("header") => {
                    stream.header = Some(SnapshotHeader {
                        width: v.num("width").unwrap_or(0.0) as u32,
                        height: v.num("height").unwrap_or(0.0) as u32,
                        h_capacity: v.f32s("h_capacity").ok_or_else(|| fail("no h_capacity"))?,
                        v_capacity: v.f32s("v_capacity").ok_or_else(|| fail("no v_capacity"))?,
                    });
                }
                Some("snapshot") => {
                    stream.snapshots.push(SnapshotRecord {
                        iter: v.get("iter").and_then(JsonValue::as_u64).unwrap_or(0),
                        phase: v.str("phase").unwrap_or("train").to_string(),
                        h_demand: v.f32s("h_demand").ok_or_else(|| fail("no h_demand"))?,
                        v_demand: v.f32s("v_demand").ok_or_else(|| fail("no v_demand"))?,
                        h_overflow: v.f32s("h_overflow").ok_or_else(|| fail("no h_overflow"))?,
                        v_overflow: v.f32s("v_overflow").ok_or_else(|| fail("no v_overflow"))?,
                        overflowed_edges: v
                            .get("overflowed_edges")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0),
                        total_overflow: v.num("total_overflow").unwrap_or(0.0) as f32,
                        peak_overflow: v.num("peak_overflow").unwrap_or(0.0) as f32,
                        lane: v.get("lane").and_then(JsonValue::as_u64),
                    });
                }
                Some("attribution") => {
                    let nets = v
                        .get("nets")
                        .and_then(JsonValue::as_arr)
                        .ok_or_else(|| fail("no nets array"))?
                        .iter()
                        .map(|n| NetShare {
                            net: n.get("net").and_then(JsonValue::as_u64).unwrap_or(0),
                            name: n.str("name").unwrap_or("").to_string(),
                            wirelength: n.get("wl").and_then(JsonValue::as_u64).unwrap_or(0),
                            turns: n.get("turns").and_then(JsonValue::as_u64).unwrap_or(0),
                            overflow_share: n.num("overflow").unwrap_or(0.0) as f32,
                            overflowed_edges: n
                                .get("edges")
                                .and_then(JsonValue::as_u64)
                                .unwrap_or(0),
                            cost: n.num("cost").unwrap_or(0.0),
                        })
                        .collect();
                    stream.attributions.push(AttributionRecord {
                        phase: v.str("phase").unwrap_or("final").to_string(),
                        total_nets: v.get("total_nets").and_then(JsonValue::as_u64).unwrap_or(0),
                        ranked_nets: v
                            .get("ranked_nets")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0),
                        total_excess: v.num("total_excess").unwrap_or(0.0) as f32,
                        charged_excess: v.num("charged_excess").unwrap_or(0.0) as f32,
                        nets,
                    });
                }
                _ => {} // unknown kinds are skipped
            }
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SnapshotHeader {
        SnapshotHeader {
            width: 3,
            height: 2,
            h_capacity: vec![2.0, 2.0, 1.0, 1.0],
            v_capacity: vec![2.0, 2.0, 2.0],
        }
    }

    fn snap(iter: u64, phase: &str) -> SnapshotRecord {
        SnapshotRecord {
            iter,
            phase: phase.to_string(),
            h_demand: vec![1.0, 0.0, 2.5, 0.0],
            v_demand: vec![0.0, 0.5, 0.0],
            h_overflow: vec![0.0, 0.0, 1.5, 0.0],
            v_overflow: vec![0.0, 0.0, 0.0],
            overflowed_edges: 1,
            total_overflow: 1.5,
            peak_overflow: 1.5,
            lane: None,
        }
    }

    #[test]
    fn lane_round_trips() {
        let mut s = snap(4, "train");
        s.lane = Some(3);
        let mut sink = SnapshotSink::in_memory();
        sink.write_header(&header());
        sink.write_snapshot(&s);
        let text = sink.memory_contents().unwrap().to_string();
        let stream = SnapshotStream::parse(&text).unwrap();
        assert_eq!(stream.snapshots[0].lane, Some(3));
    }

    fn attribution() -> AttributionRecord {
        AttributionRecord {
            phase: "final".to_string(),
            total_nets: 5,
            ranked_nets: 2,
            total_excess: 1.5,
            charged_excess: 1.25,
            nets: vec![
                NetShare {
                    net: 3,
                    name: "n3".to_string(),
                    wirelength: 12,
                    turns: 2,
                    overflow_share: 1.0,
                    overflowed_edges: 1,
                    cost: 514.0,
                },
                NetShare {
                    net: 0,
                    name: "n0".to_string(),
                    wirelength: 4,
                    turns: 1,
                    overflow_share: 0.25,
                    overflowed_edges: 1,
                    cost: 131.0,
                },
            ],
        }
    }

    #[test]
    fn stream_round_trips() {
        let mut sink = SnapshotSink::in_memory();
        sink.write_header(&header());
        sink.write_header(&header()); // second call is a no-op
        sink.write_snapshot(&snap(0, "train"));
        sink.write_snapshot(&snap(16, "final"));
        sink.write_attribution(&attribution());
        assert_eq!(sink.snapshots(), 2);
        let text = sink.memory_contents().unwrap().to_string();
        assert_eq!(text.lines().count(), 4);

        let stream = SnapshotStream::parse(&text).unwrap();
        assert_eq!(stream.header, Some(header()));
        assert_eq!(stream.snapshots, vec![snap(0, "train"), snap(16, "final")]);
        assert_eq!(stream.attributions, vec![attribution()]);
    }

    #[test]
    fn header_record_shape() {
        let json = header().to_json();
        assert!(json.starts_with(r#"{"kind":"header","version":1,"width":3,"height":2,"#));
        assert!(json.contains(r#""h_capacity":[2,2,1,1]"#));
    }

    #[test]
    fn unknown_kinds_are_skipped() {
        let text = format!("{}\n{{\"kind\":\"future\"}}\n", header().to_json());
        let stream = SnapshotStream::parse(&text).unwrap();
        assert!(stream.header.is_some());
        assert!(stream.snapshots.is_empty());
    }

    #[test]
    fn malformed_line_is_reported() {
        let err = SnapshotStream::parse("{\"kind\":\"header\"}\nnope\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // header without capacities is also rejected
        let err = SnapshotStream::parse("{\"kind\":\"header\"}\n").unwrap_err();
        assert!(err.contains("h_capacity"), "{err}");
    }
}
