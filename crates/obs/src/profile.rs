//! Sampling self-profiler: collapsed-stack (flamegraph) profiles of the
//! span hierarchy, captured by a background thread.
//!
//! The span registry ([`crate::span`]) already knows, at every instant,
//! which spans are open on which thread. The profiler samples that view
//! at a fixed interval from its own thread, folds each observed stack
//! into a `frame;frame;frame` key, and counts samples per key — the
//! *collapsed stack* format consumed by `flamegraph.pl`, `inferno`,
//! speedscope and friends. No per-sample I/O, no symbolization, no
//! signal handlers: the cost is one mutex lock per sample on the
//! profiler thread, plus one push/pop per span open/close on the
//! instrumented threads (only while a profiler is attached).
//!
//! Alongside stacks the sampler reads the process RSS (Linux
//! `/proc/self/status`) every [`RSS_SAMPLE_STRIDE`] samples into the
//! `process.rss_bytes` gauge, so `/metrics` and `/status` report live
//! memory without the training loop doing anything.
//!
//! ```no_run
//! dgr_obs::set_enabled(true);
//! let profiler = dgr_obs::Profiler::start(dgr_obs::ProfilerConfig::default());
//! // ... run the workload ...
//! let profile = profiler.stop();
//! profile.write("out.folded").unwrap();
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the sampler re-reads the process RSS, in samples.
pub const RSS_SAMPLE_STRIDE: u64 = 16;

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilerConfig {
    /// Time between samples. The default (2 ms, 500 Hz) resolves
    /// millisecond-scale training phases while keeping sampling overhead
    /// well under 1% of one core.
    pub interval: Duration,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            interval: Duration::from_millis(2),
        }
    }
}

/// A running sampling profiler. Stop it with [`Profiler::stop`] to get
/// the [`FoldedProfile`]; dropping without stopping detaches the sampler
/// and discards the samples.
#[derive(Debug)]
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<FoldedProfile>>,
}

impl Profiler {
    /// Attaches active-stack tracking to the span registry and spawns
    /// the sampler thread. Only one profiler should run at a time (a
    /// second one would share — and then clear — the same stack
    /// registry).
    pub fn start(cfg: ProfilerConfig) -> Profiler {
        crate::span::set_profiling(true);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let interval = cfg.interval.max(Duration::from_micros(100));
        let handle = std::thread::Builder::new()
            .name("dgr-profiler".into())
            .spawn(move || sampler_loop(&stop2, interval))
            .expect("spawn profiler thread");
        Profiler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and returns the aggregated profile.
    pub fn stop(mut self) -> FoldedProfile {
        self.stop.store(true, Ordering::Relaxed);
        let profile = self
            .handle
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default();
        crate::span::set_profiling(false);
        profile
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        crate::span::set_profiling(false);
    }
}

fn sampler_loop(stop: &AtomicBool, interval: Duration) -> FoldedProfile {
    let mut profile = FoldedProfile::default();
    while !stop.load(Ordering::Relaxed) {
        profile.samples += 1;
        let stacks = crate::span::active_stacks();
        if stacks.is_empty() {
            profile.idle += 1;
        } else {
            for (_tid, frames) in &stacks {
                *profile.counts.entry(frames.join(";")).or_insert(0) += 1;
            }
        }
        if profile.samples % RSS_SAMPLE_STRIDE == 1 {
            if let Some(rss) = read_rss_bytes() {
                crate::gauge("process.rss_bytes").set(rss as f64);
                profile.peak_rss = profile.peak_rss.max(rss);
            }
        }
        std::thread::sleep(interval);
    }
    profile
}

/// Current process RSS in bytes (Linux `/proc/self/status`; `None`
/// elsewhere). Duplicated here rather than imported — this crate is the
/// bottom of the dependency stack.
pub fn read_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line
        .trim_start_matches("VmRSS:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    (kb > 0).then_some(kb * 1024)
}

/// An aggregated sampling profile in collapsed-stack form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedProfile {
    /// Sample count per `frame;frame;frame` stack (BTreeMap: the folded
    /// output is deterministic given the counts).
    pub counts: BTreeMap<String, u64>,
    /// Total sampler ticks taken.
    pub samples: u64,
    /// Ticks on which no thread had an open span.
    pub idle: u64,
    /// Largest RSS observed by the sampler, in bytes (0 when
    /// unmeasurable).
    pub peak_rss: u64,
}

impl FoldedProfile {
    /// Serializes in the collapsed-stack format flamegraph tooling
    /// consumes: one `stack count` line per distinct stack, sorted by
    /// stack. An `(idle)` pseudo-stack carries the ticks with no open
    /// span so the output always accounts for every sample.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        if self.idle > 0 {
            out.push_str(&format!("(idle) {}\n", self.idle));
        }
        for (stack, count) in &self.counts {
            out.push_str(&format!("{stack} {count}\n"));
        }
        out
    }

    /// Writes [`FoldedProfile::to_folded`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_folded())
    }

    /// Parses collapsed-stack text back into a profile (report
    /// rendering). Malformed lines are skipped; the `(idle)` pseudo-stack
    /// is folded back into [`FoldedProfile::idle`].
    pub fn parse(text: &str) -> FoldedProfile {
        let mut p = FoldedProfile::default();
        for line in text.lines() {
            let line = line.trim();
            let Some((stack, count)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(count) = count.parse::<u64>() else {
                continue;
            };
            if stack == "(idle)" {
                p.idle += count;
            } else {
                *p.counts.entry(stack.to_string()).or_insert(0) += count;
            }
            p.samples += count;
        }
        p
    }

    /// Per-leaf-frame self-sample totals, heaviest first (name ties break
    /// alphabetically). The leaf of each stack is where the time was
    /// actually spent — this is the profile's "top functions" view.
    pub fn hot_frames(&self) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for (stack, count) in &self.counts {
            let leaf = stack.rsplit(';').next().unwrap_or(stack);
            *totals.entry(leaf).or_insert(0) += count;
        }
        let mut out: Vec<(String, u64)> = totals
            .into_iter()
            .map(|(name, n)| (name.to_string(), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Samples attributed to any stack (i.e. non-idle thread samples).
    pub fn busy_samples(&self) -> u64 {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_samples_live_spans() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let profiler = Profiler::start(ProfilerConfig {
            interval: Duration::from_micros(200),
        });
        {
            let _outer = crate::span("test", "prof-outer");
            for _ in 0..40 {
                let _inner = crate::span("test", "prof-inner");
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        let profile = profiler.stop();
        crate::set_enabled(false);
        assert!(profile.samples > 0);
        let folded = profile.to_folded();
        assert!(
            folded.contains("prof-outer;prof-inner"),
            "nested stack missing from:\n{folded}"
        );
        let hot = profile.hot_frames();
        assert_eq!(hot[0].0, "prof-inner", "leaf frame dominates: {hot:?}");
    }

    #[test]
    fn folded_round_trips_through_parse() {
        let mut p = FoldedProfile::default();
        p.counts.insert("route;train;forward".into(), 30);
        p.counts.insert("route;train;backward".into(), 50);
        p.idle = 7;
        p.samples = 87;
        let text = p.to_folded();
        let back = FoldedProfile::parse(&text);
        assert_eq!(back.counts, p.counts);
        assert_eq!(back.idle, 7);
        assert_eq!(back.samples, 87);
        assert_eq!(back.busy_samples(), 80);
    }

    #[test]
    fn parse_skips_malformed_lines() {
        let p = FoldedProfile::parse("a;b 3\nnot-a-count x\n\nc 2\n");
        assert_eq!(p.counts.len(), 2);
        assert_eq!(p.samples, 5);
    }

    #[test]
    fn detached_profiler_leaves_registry_clean() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        {
            let _p = Profiler::start(ProfilerConfig::default());
        } // dropped without stop()
        {
            let _s = crate::span("test", "after-drop");
        }
        crate::set_enabled(false);
        // tracking is off again: no stacks linger
        assert!(crate::span::active_stacks().is_empty());
    }
}
