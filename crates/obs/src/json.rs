//! A minimal JSON writer — just enough for trace/telemetry export.
//!
//! The workspace has no registry access, so rather than pull a vendored
//! serializer into the hot telemetry path this module hand-rolls the two
//! things the crate emits: escaped strings and flat objects. Non-finite
//! floats serialize as `null` (JSON has no NaN/Inf).

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incrementally builds one flat JSON object.
///
/// ```
/// let mut o = dgr_obs::json::JsonObject::new();
/// o.field_u64("iter", 3);
/// o.field_f32("loss", 1.5);
/// assert_eq!(o.finish(), r#"{"iter":3,"loss":1.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        push_escaped(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        self.buf.push_str(&v.to_string());
    }

    /// Adds an `f32` field (`null` when non-finite).
    pub fn field_f32(&mut self, name: &str, v: f32) {
        self.key(name);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Adds an `f64` field (`null` when non-finite).
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Adds an optional unsigned integer field (`null` when `None`).
    pub fn field_opt_u64(&mut self, name: &str, v: Option<u64>) {
        self.key(name);
        match v {
            Some(v) => self.buf.push_str(&v.to_string()),
            None => self.buf.push_str("null"),
        }
    }

    /// Adds an `f32` array field (non-finite elements become `null`).
    pub fn field_f32_array(&mut self, name: &str, vs: &[f32]) {
        self.key(name);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            if v.is_finite() {
                self.buf.push_str(&format!("{v}"));
            } else {
                self.buf.push_str("null");
            }
        }
        self.buf.push(']');
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        push_escaped(&mut self.buf, v);
    }

    /// Adds a pre-serialized JSON value verbatim (caller guarantees
    /// validity).
    pub fn field_raw(&mut self, name: &str, v: &str) {
        self.key(name);
        self.buf.push_str(v);
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn object_round_trip_shape() {
        let mut o = JsonObject::new();
        o.field_u64("n", 7);
        o.field_f32("x", 0.5);
        o.field_f32("bad", f32::NAN);
        o.field_str("s", "hi");
        o.field_raw("arr", "[1,2]");
        assert_eq!(
            o.finish(),
            r#"{"n":7,"x":0.5,"bad":null,"s":"hi","arr":[1,2]}"#
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn optional_and_array_fields() {
        let mut o = JsonObject::new();
        o.field_opt_u64("some", Some(9));
        o.field_opt_u64("none", None);
        o.field_f32_array("xs", &[1.0, 0.5, f32::INFINITY]);
        o.field_f32_array("empty", &[]);
        assert_eq!(
            o.finish(),
            r#"{"some":9,"none":null,"xs":[1,0.5,null],"empty":[]}"#
        );
    }
}
