//! `--serve ADDR`: a tiny blocking HTTP/1.1 server over
//! `std::net::TcpListener` — zero dependencies, hand-rolled request
//! parsing, one thread.
//!
//! Built-in endpoints (always served):
//!
//! * `GET /metrics` — every registered obs metric in the Prometheus
//!   text exposition format ([`crate::metrics::prometheus_text`]),
//! * `GET /status` — the live run status as JSON
//!   ([`crate::status::status_json`]): current job/phase/iteration,
//!   loss, overflow, temperature, batch width, queue depth, RSS,
//!   plus one row per registered status scope on multi-job daemons,
//! * `GET /report` — the standard HTML post-mortem rendered from the
//!   live telemetry ring and span registry *mid-run*,
//! * `GET /health` — the sentinel convergence-health verdicts as JSON
//!   ([`crate::sentinel::health_json`]): overall verdict plus one row
//!   per live scope with its ranked findings,
//! * `GET /` — a plain-text index of the above.
//!
//! The server is deliberately minimal: `Connection: close` on every
//! response, one request per connection, 2-second socket timeouts. That
//! is exactly enough for `curl`, Prometheus scrapers and the `dgrd`
//! daemon frontend, with nothing to keep alive or pool. Requests are
//! served from the accept loop thread — a slow client cannot stall the
//! training loop, only other scrapers.
//!
//! # Extension point
//!
//! [`ObsServer::start_with_handler`] installs an application handler
//! consulted *before* the built-in routes: the `dgrd` job server mounts
//! its `POST /jobs` / `GET /jobs/:id` / `DELETE /jobs/:id` endpoints
//! this way instead of forking the listener. With a handler installed,
//! non-GET methods are parsed (including a `Content-Length` body,
//! bounded by the configured cap → `413`); without one the server stays
//! GET-only exactly as before. Server-level failures (malformed head,
//! oversized body, unrouted method) always answer with a structured
//! JSON error body, so protocol clients never have to scrape prose.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default cap on request bodies accepted by [`ObsServer::start_with_handler`].
pub const DEFAULT_MAX_BODY_BYTES: usize = 256 * 1024;

/// Cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request, handed to the application handler.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, `DELETE`, ...), uppercase as sent.
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// A response produced by the application handler or the built-in routes.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "application/json".into(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into(),
        }
    }

    /// An HTML response.
    pub fn html(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "text/html; charset=utf-8".into(),
            body: body.into(),
        }
    }

    /// The standard structured error body: `{"error":...,"status":N}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut o = crate::json::JsonObject::new();
        o.field_str("error", message);
        o.field_u64("status", u64::from(status));
        let mut body = o.finish();
        body.push('\n');
        HttpResponse::json(status, body)
    }
}

/// An application handler consulted before the built-in routes. Return
/// `None` to fall through to `/metrics`, `/status`, `/report`, `/`.
pub type HttpHandler = Arc<dyn Fn(&HttpRequest) -> Option<HttpResponse> + Send + Sync>;

/// A running server. Keep the handle alive for the duration of the
/// run; [`ObsServer::stop`] (or drop) shuts the listener down.
pub struct ObsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`, or port 0 for an
    /// OS-assigned port) and spawns the accept loop serving only the
    /// built-in GET endpoints.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start(addr: &str) -> std::io::Result<ObsServer> {
        Self::start_inner(addr, None, DEFAULT_MAX_BODY_BYTES)
    }

    /// [`ObsServer::start`] with an application handler mounted in front
    /// of the built-in routes. Non-GET requests are accepted and their
    /// bodies read (bounded by `max_body_bytes` → `413 Payload Too
    /// Large`); a non-GET request the handler declines answers `405`.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start_with_handler(
        addr: &str,
        handler: HttpHandler,
        max_body_bytes: usize,
    ) -> std::io::Result<ObsServer> {
        Self::start_inner(addr, Some(handler), max_body_bytes)
    }

    fn start_inner(
        addr: &str,
        handler: Option<HttpHandler>,
        max_body_bytes: usize,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dgr-serve".into())
            .spawn(move || accept_loop(&listener, &stop2, handler.as_ref(), max_body_bytes))?;
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // unblock accept() with a throwaway connection
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    handler: Option<&HttpHandler>,
    max_body_bytes: usize,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // per-connection errors (timeouts, resets) only drop that client
        let _ = serve_connection(stream, handler, max_body_bytes);
    }
}

fn serve_connection(
    mut stream: TcpStream,
    handler: Option<&HttpHandler>,
    max_body_bytes: usize,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // without a handler the server is GET-only, bodies are never read
    let allow_body = handler.is_some();
    let request = match read_request(&mut stream, allow_body, max_body_bytes) {
        Ok(r) => r,
        Err(resp) => return write_response(&mut stream, &resp),
    };
    if let Some(handler) = handler {
        if let Some(resp) = handler(&request) {
            return write_response(&mut stream, &resp);
        }
        if request.method != "GET" {
            return write_response(
                &mut stream,
                &HttpResponse::error(
                    405,
                    &format!("method {} not allowed on {}", request.method, request.path),
                ),
            );
        }
    }
    let resp = route(&request.path);
    write_response(&mut stream, &resp)
}

/// Reads one request (head + optional `Content-Length` body). Errors are
/// returned as ready-to-send structured responses.
fn read_request(
    stream: &mut TcpStream,
    allow_body: bool,
    max_body_bytes: usize,
) -> Result<HttpRequest, HttpResponse> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    // read until the blank line ending the head (or a sane cap)
    let head_end = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpResponse::error(400, "request head too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpResponse::error(400, &format!("bad request: {e}")))?;
        if n == 0 {
            match head_end(&buf) {
                Some(end) => break end,
                None => return Err(HttpResponse::error(400, "truncated request head")),
            }
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpResponse::error(400, "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpResponse::error(400, "no request target"))?;
    if !parts
        .next()
        .is_some_and(|version| version.starts_with("HTTP/"))
    {
        return Err(HttpResponse::error(400, "not an HTTP request line"));
    }
    if !allow_body && method != "GET" {
        return Err(HttpResponse::error(
            400,
            &format!("method {method} not supported"),
        ));
    }
    let content_length = content_length(&head)
        .map_err(|()| HttpResponse::error(400, "bad Content-Length header"))?;
    let mut body = Vec::new();
    if let Some(len) = content_length {
        if len > max_body_bytes {
            return Err(HttpResponse::error(
                413,
                &format!("request body of {len} bytes exceeds the {max_body_bytes} byte cap"),
            ));
        }
        // bytes past the head already read into `buf` are body prefix
        body.extend_from_slice(&buf[head_end.min(buf.len())..]);
        while body.len() < len {
            let n = stream
                .read(&mut chunk)
                .map_err(|e| HttpResponse::error(400, &format!("bad request body: {e}")))?;
            if n == 0 {
                return Err(HttpResponse::error(400, "truncated request body"));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(len);
    }
    // strip any query string; no endpoint takes parameters
    let path = target.split('?').next().unwrap_or("/").to_string();
    Ok(HttpRequest { method, path, body })
}

/// Byte offset one past the blank line ending the head, if complete.
fn head_end(buf: &[u8]) -> Option<usize> {
    if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(i + 4);
    }
    buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2)
}

/// The `Content-Length` value, if any header carries one.
fn content_length(head: &str) -> Result<Option<usize>, ()> {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value.trim().parse::<usize>().map(Some).map_err(|_| ());
            }
        }
    }
    Ok(None)
}

/// Maps a GET path to the built-in endpoints.
fn route(path: &str) -> HttpResponse {
    match path {
        "/metrics" => HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
            body: crate::metrics::prometheus_text(),
        },
        "/status" => {
            let mut body = crate::status::status_json();
            body.push('\n');
            HttpResponse::json(200, body)
        }
        "/report" => HttpResponse::html(200, live_report()),
        "/health" => {
            let mut body = crate::sentinel::health_json();
            body.push('\n');
            HttpResponse::json(200, body)
        }
        "/" => HttpResponse::text(
            200,
            "dgr observatory\n\n/metrics  Prometheus text exposition\n/status   live run status (JSON)\n/report   HTML post-mortem of the run so far\n/health   sentinel convergence-health verdicts (JSON)\n",
        ),
        _ => HttpResponse::error(404, &format!("no such endpoint: {path}")),
    }
}

/// Renders the standard report from whatever the run has produced so
/// far: the live telemetry ring and the span registry. Snapshot grids
/// are file-bound, so the congestion section renders its placeholder.
fn live_report() -> String {
    let status = crate::status::status_snapshot();
    let telemetry = crate::status::status_ring_jsonl();
    let trace = crate::chrome_trace();
    let title = if status.job.is_empty() {
        "live".to_string()
    } else {
        format!("{} (live)", status.job)
    };
    let scope = crate::status::status_scope_id();
    let health =
        crate::sentinel::health_of(scope).map(|_| crate::sentinel::health_timeline_jsonl_of(scope));
    let inputs = crate::report::ReportInputs {
        title,
        telemetry: (!telemetry.is_empty()).then_some(telemetry),
        snapshots: None,
        trace: (trace != "[]").then_some(trace),
        profile: None,
        health,
    };
    crate::report::render_report(&inputs).unwrap_or_else(|e| {
        format!("<!DOCTYPE html>\n<html><body><p>report error: {e}</p></body></html>\n")
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Error",
    }
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        raw(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    fn raw(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_status_report_and_404() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::counter("serve.test.counter").add(2);
        crate::status::status_begin("train", 10, 1);
        crate::status::status_phase("forward");
        let server = ObsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("dgr_serve_test_counter 2\n"), "{body}");

        let (status, body) = get(addr, "/status");
        assert_eq!(status, 200);
        assert!(body.contains("\"phase\":\"forward\""), "{body}");

        let (status, body) = get(addr, "/report");
        assert_eq!(status, 200);
        assert!(body.contains("<html"), "{body}");

        let (status, body) = get(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"verdict\""), "{body}");

        let (status, body) = get(addr, "/nope");
        assert_eq!(status, 404);
        assert!(body.contains("\"error\""), "{body}");

        let (status, _) = get(addr, "/");
        assert_eq!(status, 200);

        server.stop();
        crate::set_enabled(false);
    }

    #[test]
    fn rejects_non_get() {
        let _guard = crate::test_lock();
        let server = ObsServer::start("127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.stop();
    }

    #[test]
    fn handler_gets_posted_bodies_and_falls_through() {
        let _guard = crate::test_lock();
        let handler: HttpHandler = Arc::new(|req: &HttpRequest| {
            (req.method == "POST" && req.path == "/echo")
                .then(|| HttpResponse::text(202, String::from_utf8_lossy(&req.body).into_owned()))
        });
        let server = ObsServer::start_with_handler("127.0.0.1:0", handler, 64).unwrap();
        let addr = server.local_addr();

        let (status, body) = raw(
            addr,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert_eq!(status, 202);
        assert_eq!(body, "hello");

        // built-in routes still answer behind the handler
        let (status, _) = get(addr, "/");
        assert_eq!(status, 200);

        // a non-GET the handler declines is 405, not a hang or a 400
        let (status, body) = raw(
            addr,
            "PATCH /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 405);
        assert!(body.contains("\"error\""), "{body}");

        // an oversized body is refused with 413 before the handler runs
        let (status, body) = raw(
            addr,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 9999\r\n\r\n",
        );
        assert_eq!(status, 413);
        assert!(body.contains("\"error\""), "{body}");

        server.stop();
    }

    #[test]
    fn malformed_heads_get_structured_400() {
        let _guard = crate::test_lock();
        let handler: HttpHandler = Arc::new(|_| None);
        let server = ObsServer::start_with_handler("127.0.0.1:0", handler, 64).unwrap();
        let addr = server.local_addr();
        let (status, body) = raw(addr, "GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert_eq!(status, 400);
        assert!(body.contains("\"error\""), "{body}");
        // listener survives the malformed request
        let (status, _) = get(addr, "/");
        assert_eq!(status, 200);
        server.stop();
    }
}
