//! `--serve ADDR`: a tiny blocking HTTP/1.1 exporter over
//! `std::net::TcpListener` — zero dependencies, hand-rolled request
//! parsing, one thread.
//!
//! Endpoints:
//!
//! * `GET /metrics` — every registered obs metric in the Prometheus
//!   text exposition format ([`crate::metrics::prometheus_text`]),
//! * `GET /status` — the live run status as JSON
//!   ([`crate::status::status_json`]): current job/phase/iteration,
//!   loss, overflow, temperature, batch width, queue depth, RSS,
//! * `GET /report` — the standard HTML post-mortem rendered from the
//!   live telemetry ring and span registry *mid-run*,
//! * `GET /` — a plain-text index of the above.
//!
//! The server is deliberately minimal: GET only, `Connection: close`
//! on every response, one request per connection, 2-second socket
//! timeouts. That is exactly enough for `curl`, Prometheus scrapers
//! and the future `dgrd` daemon frontend, with nothing to keep alive
//! or pool. Requests are served from the accept loop thread — a slow
//! client cannot stall the training loop, only other scrapers.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running exporter. Keep the handle alive for the duration of the
/// run; [`ObsServer::stop`] (or drop) shuts the listener down.
#[derive(Debug)]
pub struct ObsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`, or port 0 for an
    /// OS-assigned port) and spawns the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start(addr: &str) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dgr-serve".into())
            .spawn(move || accept_loop(&listener, &stop2))?;
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // unblock accept() with a throwaway connection
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // per-connection errors (timeouts, resets) only drop that client
        let _ = serve_connection(stream);
    }
}

fn serve_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let path = match read_request_path(&mut stream) {
        Ok(p) => p,
        Err(e) => {
            let _ = write_response(
                &mut stream,
                400,
                "text/plain",
                &format!("bad request: {e}\n"),
            );
            return Ok(());
        }
    };
    let (status, content_type, body) = route(&path);
    write_response(&mut stream, status, content_type, &body)
}

/// Reads the request head and returns the request-target path. Only
/// `GET` is accepted; the body (none, for GET) and headers are
/// discarded.
fn read_request_path(stream: &mut TcpStream) -> Result<String, String> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    // read until the blank line ending the head (or a sane cap)
    while !head_complete(&buf) {
        if buf.len() > 16 * 1024 {
            return Err("request head too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?;
    let target = parts.next().ok_or("no request target")?;
    if method != "GET" {
        return Err(format!("method {method} not supported"));
    }
    // strip any query string; the endpoints take no parameters
    Ok(target.split('?').next().unwrap_or("/").to_string())
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// Maps a request path to `(status, content-type, body)`.
fn route(path: &str) -> (u16, &'static str, String) {
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            crate::metrics::prometheus_text(),
        ),
        "/status" => {
            let mut body = crate::status::status_json();
            body.push('\n');
            (200, "application/json", body)
        }
        "/report" => (200, "text/html; charset=utf-8", live_report()),
        "/" => (
            200,
            "text/plain; charset=utf-8",
            "dgr observatory\n\n/metrics  Prometheus text exposition\n/status   live run status (JSON)\n/report   HTML post-mortem of the run so far\n".to_string(),
        ),
        _ => (404, "text/plain", format!("no such endpoint: {path}\n")),
    }
}

/// Renders the standard report from whatever the run has produced so
/// far: the live telemetry ring and the span registry. Snapshot grids
/// are file-bound, so the congestion section renders its placeholder.
fn live_report() -> String {
    let status = crate::status::status_snapshot();
    let telemetry = crate::status::status_ring_jsonl();
    let trace = crate::chrome_trace();
    let title = if status.job.is_empty() {
        "live".to_string()
    } else {
        format!("{} (live)", status.job)
    };
    let inputs = crate::report::ReportInputs {
        title,
        telemetry: (!telemetry.is_empty()).then_some(telemetry),
        snapshots: None,
        trace: (trace != "[]").then_some(trace),
        profile: None,
    };
    crate::report::render_report(&inputs).unwrap_or_else(|e| {
        format!("<!DOCTYPE html>\n<html><body><p>report error: {e}</p></body></html>\n")
    })
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_status_report_and_404() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::counter("serve.test.counter").add(2);
        crate::status::status_begin("train", 10, 1);
        crate::status::status_phase("forward");
        let server = ObsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("dgr_serve_test_counter 2\n"), "{body}");

        let (status, body) = get(addr, "/status");
        assert_eq!(status, 200);
        assert!(body.contains("\"phase\":\"forward\""), "{body}");

        let (status, body) = get(addr, "/report");
        assert_eq!(status, 200);
        assert!(body.contains("<html"), "{body}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        let (status, _) = get(addr, "/");
        assert_eq!(status, 200);

        server.stop();
        crate::set_enabled(false);
    }

    #[test]
    fn rejects_non_get() {
        let _guard = crate::test_lock();
        let server = ObsServer::start("127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.stop();
    }
}
