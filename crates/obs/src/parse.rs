//! A minimal recursive-descent JSON reader — the inverse of [`crate::json`].
//!
//! `dgr report` has to read back the telemetry/snapshot JSONL and the
//! Chrome-trace file this crate wrote, and the workspace has no vendored
//! JSON parser. This module implements just enough of RFC 8259 for that:
//! objects, arrays, strings with the escapes [`crate::json::push_escaped`]
//! emits (plus `\uXXXX`, including surrogate pairs), numbers, booleans and
//! `null`. Numbers are held as `f64` — every value the crate writes fits
//! without precision loss at the magnitudes involved.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys live in a [`BTreeMap`] so iteration
/// order (and therefore everything the report renders) is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value of `self`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// `self` as a non-negative integer (`None` for fractional/negative).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Convenience: `self[key]` as `f64`.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(JsonValue::as_f64)
    }

    /// Convenience: `self[key]` as `&str`.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }

    /// Convenience: `self[key]` as an `f32` vector (non-numbers → 0).
    pub fn f32s(&self, key: &str) -> Option<Vec<f32>> {
        self.get(key)
            .and_then(JsonValue::as_arr)
            .map(|a| a.iter().map(|v| v.as_f64().unwrap_or(0.0) as f32).collect())
    }
}

/// Parse error: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document from `input`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing non-whitespace.
pub fn parse_json(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parses each non-empty line of a JSONL stream, reporting the first
/// malformed line's number (1-based) alongside the parse error.
///
/// # Errors
///
/// Returns `(line_number, error)` for the first malformed line.
pub fn parse_jsonl(input: &str) -> Result<Vec<JsonValue>, (usize, ParseError)> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_json(line).map_err(|e| (i + 1, e))?);
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(a));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: expect \uXXXX low half
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let cp = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                            // hex4 advanced past the digits; undo the
                            // shared `pos += 1` below
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one full UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = text.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("control char in string"));
                    }
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(
            parse_json(r#""a\nb""#).unwrap(),
            JsonValue::Str("a\nb".into())
        );
    }

    #[test]
    fn round_trips_writer_output() {
        let mut o = crate::json::JsonObject::new();
        o.field_u64("iter", 12);
        o.field_f32("loss", 0.625);
        o.field_opt_u64("mem_rss", None);
        o.field_str("name", "n\"7\"\n");
        o.field_f32_array("xs", &[1.0, f32::NAN]);
        let v = parse_json(&o.finish()).unwrap();
        assert_eq!(v.num("iter"), Some(12.0));
        assert_eq!(v.num("loss"), Some(0.625));
        assert_eq!(v.get("mem_rss"), Some(&JsonValue::Null));
        assert_eq!(v.str("name"), Some("n\"7\"\n"));
        assert_eq!(
            v.get("xs").unwrap().as_arr().unwrap(),
            &[JsonValue::Num(1.0), JsonValue::Null]
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse_json(r#""Aé""#).unwrap(), JsonValue::Str("Aé".into()));
        // surrogate pair for 😀 (U+1F600)
        assert_eq!(parse_json(r#""😀""#).unwrap(), JsonValue::Str("😀".into()));
        assert!(parse_json(r#""\ud83d""#).is_err());
    }

    #[test]
    fn nested_structures() {
        let v = parse_json(r#"{"a":[1,{"b":[]},null],"c":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("b").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(v.get("c"), Some(&JsonValue::Obj(BTreeMap::new())));
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_json("{\"a\":}").unwrap_err();
        assert_eq!(e.at, 5);
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn jsonl_reports_line_numbers() {
        let ok = parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(ok.len(), 2);
        let (line, _) = parse_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert_eq!(line, 2);
    }

    #[test]
    fn as_u64_rejects_fractional_and_negative() {
        assert_eq!(parse_json("4096").unwrap().as_u64(), Some(4096));
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-3").unwrap().as_u64(), None);
    }
}
