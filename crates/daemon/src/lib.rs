#![warn(missing_docs)]

//! `dgr-daemon` — `dgrd`, a long-lived multi-tenant routing job server.
//!
//! The one-shot `dgr route` CLI loads a design, trains, refines,
//! assigns layers, and exits. `dgrd` keeps that exact pipeline resident
//! and schedules *jobs* over it:
//!
//! * [`spec`] — the strict JSON grammar of `POST /jobs` bodies,
//! * [`queue`] — a pure bounded priority/FIFO job table (the lifecycle
//!   state machine, proptest-able in isolation),
//! * [`server`] — a fixed worker set draining the table; each job runs
//!   with its own design, telemetry sink, cooperative cancel flag, and
//!   job-scoped `dgr-obs` status entry,
//! * [`http`] — the `/jobs` REST surface mounted in front of the
//!   observability server's built-in routes.
//!
//! # Isolation and determinism
//!
//! Jobs share nothing but the autodiff worker pool (whose dispatch lock
//! serializes graph execution) and the global metrics registry. A
//! daemon-routed job therefore produces a route guide **byte-identical**
//! to a one-shot `dgr route` of the same design/config — the e2e suite
//! asserts this with concurrent jobs in flight.
//!
//! ```no_run
//! use dgr_daemon::{Daemon, DaemonConfig};
//! let daemon = Daemon::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
//! println!("dgrd listening on {}", daemon.local_addr());
//! // POST /jobs, GET /jobs/1, DELETE /jobs/1, GET /jobs/1/report ...
//! daemon.stop();
//! ```

pub mod http;
pub mod queue;
pub mod server;
pub mod spec;

pub use http::Daemon;
pub use queue::{
    CancelError, CancelOutcome, Job, JobId, JobResult, JobState, JobTable, SubmitError,
};
pub use server::{DaemonConfig, JobServer};
pub use spec::{DesignSource, JobSpec, SpecError};
