//! The job scheduler: a fixed worker set draining the [`JobTable`].
//!
//! Each worker thread claims the highest-priority queued job, opens a
//! job-scoped `dgr-obs` status scope (so `/status` reports every live
//! job independently), and runs the exact one-shot `dgr route`
//! pipeline: `route_with_hooks` → `refine` → `assign_layers` → guide
//! extraction. Per-job state is fully isolated — each run gets its own
//! design, its own in-memory telemetry sink, and its own cooperative
//! cancel flag — so concurrent jobs produce byte-identical artifacts to
//! one-shot CLI runs of the same config.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use dgr_core::{DgrConfig, DgrError, DgrRouter, RouteHooks};
use dgr_grid::Design;
use dgr_io::{catalog_case, parse_design, IspdLikeGenerator};
use dgr_obs::ledger::{self, LedgerRecord, LEDGER_VERSION};
use dgr_obs::TelemetrySink;
use dgr_post::{assign_layers, refine, AssignConfig, RefineConfig, RouteGuide};

use crate::queue::{CancelError, CancelOutcome, Job, JobId, JobResult, JobTable, SubmitError};
use crate::spec::{DesignSource, JobSpec};

/// Tuning knobs of a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads draining the queue (≥ 1).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it get HTTP 429.
    pub queue_capacity: usize,
    /// Request-body cap for `POST /jobs` (HTTP 413 beyond it).
    pub max_body_bytes: usize,
    /// Terminal jobs retained for inspection before eviction.
    pub retain_jobs: usize,
    /// Append one persistent-ledger record per finished job (off by
    /// default so embedded/test daemons do not write `~/.dgr`; the
    /// `dgr serve-jobs` CLI turns it on unless `--no-ledger`).
    pub ledger: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 2,
            queue_capacity: 16,
            max_body_bytes: dgr_obs::DEFAULT_MAX_BODY_BYTES,
            retain_jobs: 64,
            ledger: false,
        }
    }
}

struct Inner {
    cfg: DaemonConfig,
    table: Mutex<JobTable>,
    work: Condvar,
    shutdown: AtomicBool,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, JobTable> {
        // A panicking worker must not brick the whole daemon; the table
        // is transition-consistent at every await point.
        self.table.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The scheduler: owns the job table and the worker threads.
pub struct JobServer {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobServer {
    /// Boots `cfg.workers` worker threads over an empty job table.
    ///
    /// Also flips the global `dgr-obs` recording switch on: the daemon
    /// is an observability surface by nature — job-scoped `/status`
    /// rows, `/metrics`, and per-job ledger records all depend on it.
    pub fn start(cfg: DaemonConfig) -> JobServer {
        dgr_obs::set_enabled(true);
        let inner = Arc::new(Inner {
            table: Mutex::new(JobTable::new(cfg.queue_capacity, cfg.retain_jobs)),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        publish_queue_gauges(&inner.lock());
        let mut handles = Vec::new();
        for i in 0..inner.cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dgrd-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn dgrd worker"),
            );
        }
        JobServer {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// The daemon configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.inner.cfg
    }

    /// Admits a job and wakes a worker; `Err` is queue backpressure.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let id = {
            let mut table = self.inner.lock();
            let id = table.submit(spec)?;
            publish_queue_gauges(&table);
            id
        };
        self.inner.work.notify_one();
        Ok(id)
    }

    /// Requests cancellation (see [`JobTable::cancel`] for semantics).
    pub fn cancel(&self, id: JobId) -> Result<CancelOutcome, CancelError> {
        let mut table = self.inner.lock();
        let out = table.cancel(id)?;
        publish_queue_gauges(&table);
        Ok(out)
    }

    /// Runs `f` against the job record under the table lock; `None` for
    /// unknown (or already evicted) ids. Keep `f` cheap.
    pub fn with_job<R>(&self, id: JobId, f: impl FnOnce(&Job) -> R) -> Option<R> {
        self.inner.lock().get(id).map(f)
    }

    /// Runs `f` against the whole table under the lock (listings,
    /// queue-depth probes, test assertions).
    pub fn with_table<R>(&self, f: impl FnOnce(&JobTable) -> R) -> R {
        f(&self.inner.lock())
    }

    /// Blocks until the job reaches a terminal state or the timeout
    /// elapses; returns whether it finished. Test/CLI convenience.
    pub fn wait_terminal(&self, id: JobId, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            match self.with_job(id, |j| j.state.is_terminal()) {
                Some(true) | None => return true,
                Some(false) if Instant::now() >= deadline => return false,
                Some(false) => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        }
    }

    /// Stops accepting work, raises every running job's cancel flag, and
    /// joins the workers. Queued jobs are left queued (they report as
    /// such; the daemon is shutting down).
    pub fn stop(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let table = self.inner.lock();
            for job in table.jobs() {
                if job.state == crate::queue::JobState::Running {
                    job.cancel.store(true, Ordering::Relaxed);
                }
            }
        }
        self.inner.work.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // claim the next job, or park on the condvar
        let (id, spec, cancel) = {
            let mut table = inner.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = table.claim() {
                    let job = table.get(id).expect("claimed job exists");
                    publish_queue_gauges(&table);
                    break (id, job.spec.clone(), Arc::clone(&job.cancel));
                }
                table = inner.work.wait(table).unwrap_or_else(|p| p.into_inner());
            }
        };

        // Arm the sentinel SLO watchdog before the run so the deadline
        // clock covers design materialization too; a breach raises the
        // same cooperative-cancel flag a client cancel would.
        dgr_obs::watchdog_arm(
            id,
            Arc::clone(&cancel),
            spec.deadline_ms,
            spec.max_stall_iters,
        );

        // run it under a job-scoped status registry entry
        let run = {
            let _scope = dgr_obs::status_scope(id);
            run_job(&spec, &cancel, inner.cfg.ledger)
        };

        // A cooperative stop triggered by the watchdog (not a client
        // cancel) is a structured failure, not a cancellation: the job
        // broke its SLO and the reason says which rule and by how much.
        let watchdog_reason = if run.cancelled {
            dgr_obs::watchdog_breach(id)
        } else {
            None
        };

        let mut table = inner.lock();
        match watchdog_reason {
            Some(reason) => table.finish(id, Err(reason), run.telemetry, false),
            None => table.finish(id, run.result, run.telemetry, run.cancelled),
        }
        let evicted = table.evict();
        publish_queue_gauges(&table);
        drop(table);
        for old in evicted {
            dgr_obs::status_remove(old);
            dgr_obs::sentinel_remove(old);
        }
        inner.work.notify_all();
    }
}

/// Mirrors the table's lifecycle counts onto `/metrics` gauges
/// (`dgrd_jobs_queued`, `dgrd_jobs_running`, … and `dgrd_queue_capacity`).
/// Called under the table lock at every state transition.
fn publish_queue_gauges(table: &JobTable) {
    if !dgr_obs::enabled() {
        return;
    }
    let [queued, running, done, failed, cancelled] = table.state_counts();
    dgr_obs::gauge("dgrd.jobs.queued").set(queued as f64);
    dgr_obs::gauge("dgrd.jobs.running").set(running as f64);
    dgr_obs::gauge("dgrd.jobs.done").set(done as f64);
    dgr_obs::gauge("dgrd.jobs.failed").set(failed as f64);
    dgr_obs::gauge("dgrd.jobs.cancelled").set(cancelled as f64);
    dgr_obs::gauge("dgrd.queue.capacity").set(table.capacity() as f64);
}

struct RunOutput {
    result: Result<JobResult, String>,
    telemetry: Option<String>,
    cancelled: bool,
}

impl RunOutput {
    fn failed(msg: String) -> RunOutput {
        RunOutput {
            result: Err(msg),
            telemetry: None,
            cancelled: false,
        }
    }
}

/// Executes one job with the exact one-shot `dgr route` pipeline.
fn run_job(spec: &JobSpec, cancel: &Arc<AtomicBool>, to_ledger: bool) -> RunOutput {
    let mut cfg = DgrConfig::default();
    if let Some(it) = spec.iterations {
        cfg.iterations = it;
    }
    if let Some(s) = spec.seed {
        cfg.seed = s;
    }
    dgr_obs::status_begin(&spec.label, cfg.iterations as u64, 1);

    let design = match load_design(&spec.design) {
        Ok(d) => d,
        Err(e) => return RunOutput::failed(e),
    };

    let mut hooks = RouteHooks {
        telemetry: Some(TelemetrySink::in_memory()),
        cancel: Some(Arc::clone(cancel)),
        ..RouteHooks::default()
    };
    let t0 = Instant::now();
    let routed = DgrRouter::new(cfg.clone()).route_with_hooks(&design, &mut hooks);
    let telemetry = hooks
        .telemetry
        .as_ref()
        .and_then(|s| s.memory_contents())
        .map(str::to_string);
    let mut solution = match routed {
        Ok(s) => s,
        Err(DgrError::Cancelled) => {
            return RunOutput {
                result: Err("run cancelled".into()),
                telemetry,
                cancelled: true,
            }
        }
        Err(e) => {
            return RunOutput {
                result: Err(e.to_string()),
                telemetry,
                cancelled: false,
            }
        }
    };

    let refine_t = Instant::now();
    if let Err(e) = refine(&design, &mut solution, RefineConfig::default()) {
        return RunOutput {
            result: Err(format!("refine: {e}")),
            telemetry,
            cancelled: false,
        };
    }
    let refine_ms = refine_t.elapsed().as_secs_f64() * 1e3;

    let m = solution.metrics;
    let mut vias = m.total_turns;
    let mut guide = None;
    let mut guide_boxes = 0u64;
    let mut assign_ms = 0.0f64;
    if design.num_layers >= 2 {
        let assign_t = Instant::now();
        let assigned = match assign_layers(&design, &solution, AssignConfig::default()) {
            Ok(a) => a,
            Err(e) => {
                return RunOutput {
                    result: Err(format!("assign: {e}")),
                    telemetry,
                    cancelled: false,
                }
            }
        };
        assign_ms = assign_t.elapsed().as_secs_f64() * 1e3;
        vias = assigned.total_vias;
        if spec.want_guide {
            let g = RouteGuide::from_assignment(&design, &assigned);
            guide_boxes = g.num_boxes() as u64;
            guide = Some(g.to_text());
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut phases = std::collections::BTreeMap::new();
    let mut final_loss = f64::NAN;
    if let Some(report) = &solution.train_report {
        final_loss = report.final_loss as f64;
        phases.insert("train".into(), report.duration.as_secs_f64() * 1e3);
        phases.insert("forward".into(), report.forward_time.as_secs_f64() * 1e3);
        phases.insert("backward".into(), report.backward_time.as_secs_f64() * 1e3);
    }
    phases.insert("refine".into(), refine_ms);
    phases.insert("assign".into(), assign_ms);

    let result = JobResult {
        final_loss,
        wirelength: m.total_wirelength,
        turns: m.total_turns,
        overflow: m.overflow.total_overflow,
        overflowed_edges: m.overflow.overflowed_edges as u64,
        vias,
        nets: design.num_nets() as u64,
        guide,
        guide_boxes,
        phases: phases.clone(),
        wall_ms: wall_ms as u64,
    };
    if to_ledger {
        append_job_ledger(spec, &design, &cfg, &result);
    }
    RunOutput {
        result: Ok(result),
        telemetry,
        cancelled: false,
    }
}

/// Materializes the job's design (parse inline text, read a file, or
/// generate a catalog case with the `dgr generate [--fast]` rules).
fn load_design(src: &DesignSource) -> Result<Design, String> {
    match src {
        DesignSource::Text(t) => parse_design(t).map_err(|e| format!("design_text: {e}")),
        DesignSource::Path(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("design_path `{p}`: {e}"))?;
            parse_design(&text).map_err(|e| format!("design_path `{p}`: {e}"))
        }
        DesignSource::Catalog { name, fast } => {
            let case =
                catalog_case(name).ok_or_else(|| format!("unknown catalog case `{name}`"))?;
            let mut config = case.config.clone();
            if *fast {
                // same shrink as `dgr generate --fast`
                config.num_nets /= 4;
                config.width = (config.width / 2).max(20);
                config.height = (config.height / 2).max(20);
                config.clusters = (config.clusters / 4).max(3);
                config.cluster_spread /= 2.0;
            }
            IspdLikeGenerator::new(config)
                .generate()
                .map_err(|e| format!("catalog `{name}`: {e}"))
        }
    }
}

/// Appends one persistent-ledger record for a finished job (best
/// effort, like the CLI's).
fn append_job_ledger(spec: &JobSpec, design: &Design, cfg: &DgrConfig, r: &JobResult) {
    let train_ms = r.phases.get("train").copied().unwrap_or(0.0);
    let train_secs = if train_ms > 0.0 {
        train_ms
    } else {
        r.wall_ms as f64
    } / 1e3;
    let iterations = cfg.iterations as u64;
    let it_per_s = if train_secs > 0.0 {
        iterations as f64 / train_secs
    } else {
        0.0
    };
    let mut fp_cfg = cfg.clone();
    fp_cfg.seed = 0;
    let key = format!(
        "{}|{}|{}x{}|{}|{:?}",
        spec.label,
        design.num_nets(),
        design.grid.width(),
        design.grid.height(),
        design.num_layers,
        fp_cfg
    );
    let record = LedgerRecord {
        version: LEDGER_VERSION,
        hash: String::new(),
        ts: crate::queue::now_unix_ms() / 1000,
        cmd: "dgrd".to_string(),
        design: spec.label.clone(),
        nets: design.num_nets() as u64,
        config_fp: format!("{:016x}", ledger::fnv1a64(key.as_bytes())),
        iterations,
        seed: cfg.seed,
        batch: 1,
        wall_ms: r.wall_ms,
        it_per_s,
        loss: r.final_loss,
        wirelength: r.wirelength,
        overflow: r.overflow,
        overflowed_edges: r.overflowed_edges,
        vias: r.vias,
        cache_hits: dgr_obs::counter("rsmt.cache.hits").get(),
        cache_misses: dgr_obs::counter("rsmt.cache.misses").get(),
        phases: r.phases.clone(),
        health: Some(dgr_obs::health_summary_of(dgr_obs::status_scope_id())),
    };
    let _ = ledger::append(&record);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::JobState;
    use std::time::Duration;

    fn tiny_design_text() -> String {
        let case = catalog_case("ispd18_test1").expect("catalog has ispd18_test1");
        let mut config = case.config.clone();
        config.num_nets = 12;
        config.width = 12;
        config.height = 12;
        config.clusters = 3;
        let d = IspdLikeGenerator::new(config).generate().unwrap();
        dgr_io::write_design(&d)
    }

    fn quick_spec(iters: usize) -> JobSpec {
        JobSpec {
            label: "unit".into(),
            tenant: "test".into(),
            priority: 0,
            iterations: Some(iters),
            seed: Some(1),
            design: DesignSource::Text(tiny_design_text()),
            want_guide: true,
            deadline_ms: None,
            max_stall_iters: None,
        }
    }

    #[test]
    fn runs_a_job_to_done_with_artifacts() {
        let server = JobServer::start(DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        });
        let id = server.submit(quick_spec(4)).unwrap();
        assert!(server.wait_terminal(id, Duration::from_secs(60)));
        server
            .with_job(id, |j| {
                assert_eq!(j.state, JobState::Done, "error: {:?}", j.error);
                let r = j.result.as_ref().unwrap();
                assert!(r.nets > 0);
                assert!(r.guide.as_deref().is_some_and(|g| !g.is_empty()));
                assert!(r.phases.contains_key("train"));
                assert!(j
                    .telemetry
                    .as_deref()
                    .is_some_and(|t| t.contains("\"iter\"")));
                assert!(j.run_seq.is_some());
            })
            .unwrap();
        server.stop();
    }

    #[test]
    fn watchdog_breach_fails_the_job_with_a_structured_reason() {
        let server = JobServer::start(DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        });
        let mut spec = quick_spec(600);
        spec.deadline_ms = Some(1);
        let id = server.submit(spec).unwrap();
        assert!(server.wait_terminal(id, Duration::from_secs(60)));
        server
            .with_job(id, |j| {
                assert_eq!(j.state, JobState::Failed, "error: {:?}", j.error);
                let err = j.error.as_deref().unwrap();
                assert!(err.starts_with("watchdog: "), "error was {err:?}");
                assert!(err.contains("deadline_ms=1"), "error was {err:?}");
                // the watchdog, not a client, raised the cancel flag
                assert!(!j.cancel_requested);
            })
            .unwrap();
        // the breach left the queue healthy: a follow-up job still runs
        let next = server.submit(quick_spec(2)).unwrap();
        assert!(server.wait_terminal(next, Duration::from_secs(60)));
        server
            .with_job(next, |j| assert_eq!(j.state, JobState::Done))
            .unwrap();
        server.stop();
    }

    #[test]
    fn bad_design_text_fails_cleanly() {
        let server = JobServer::start(DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        });
        let mut spec = quick_spec(2);
        spec.design = DesignSource::Text("this is not a design".into());
        let id = server.submit(spec).unwrap();
        assert!(server.wait_terminal(id, Duration::from_secs(30)));
        server
            .with_job(id, |j| {
                assert_eq!(j.state, JobState::Failed);
                assert!(j.error.as_deref().unwrap().contains("design_text"));
            })
            .unwrap();
        server.stop();
    }
}
