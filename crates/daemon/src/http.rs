//! The HTTP face of `dgrd`: `/jobs` routes mounted on the `dgr-obs`
//! blocking server.
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /jobs` | submit a job spec (202, or 400/413/429) |
//! | `GET /jobs` | queue + job listing |
//! | `GET /jobs/{id}` | full lifecycle state of one job |
//! | `DELETE /jobs/{id}` | cancel (200 queued-cancel, 202 running) |
//! | `GET /jobs/{id}/report` | per-job HTML post-mortem |
//! | `GET /jobs/{id}/telemetry` | per-job training telemetry (JSONL) |
//! | `GET /jobs/{id}/guide` | route-guide text of a finished job |
//! | `GET /health` | overall + per-job sentinel convergence verdicts |
//!
//! Every other path falls through to the built-in observability routes
//! (`/metrics`, `/status`, `/report`, `/`). The daemon's `/health`
//! shadows the obs built-in so its rows can join job metadata (label,
//! tenant, state, watchdog errors) onto the sentinel verdicts. All
//! errors are structured: a 4xx status plus `{"error": ..., "status":
//! N}` JSON.

use std::sync::Arc;

use dgr_obs::json::JsonObject;
use dgr_obs::{render_report, HttpHandler, HttpRequest, HttpResponse, ObsServer, ReportInputs};

use crate::queue::{CancelError, CancelOutcome, Job, JobState};
use crate::server::{DaemonConfig, JobServer};
use crate::spec::JobSpec;

/// A running daemon: scheduler plus HTTP listener.
pub struct Daemon {
    jobs: Arc<JobServer>,
    http: ObsServer,
}

impl Daemon {
    /// Boots the scheduler and binds the listener (use port 0 for an
    /// ephemeral port; read it back with [`Daemon::local_addr`]).
    pub fn start(addr: &str, cfg: DaemonConfig) -> std::io::Result<Daemon> {
        let max_body = cfg.max_body_bytes;
        let jobs = Arc::new(JobServer::start(cfg));
        let handler_jobs = Arc::clone(&jobs);
        let handler: HttpHandler = Arc::new(move |req| handle(&handler_jobs, req));
        let http = ObsServer::start_with_handler(addr, handler, max_body)?;
        Ok(Daemon { jobs, http })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.http.local_addr()
    }

    /// The job scheduler (for in-process submission and assertions).
    pub fn jobs(&self) -> &Arc<JobServer> {
        &self.jobs
    }

    /// Stops the listener, cancels running jobs, and joins the workers.
    pub fn stop(self) {
        self.http.stop();
        self.jobs.stop();
    }
}

/// Routes one request; `None` falls through to the obs built-ins.
fn handle(jobs: &JobServer, req: &HttpRequest) -> Option<HttpResponse> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => Some(post_job(jobs, &req.body)),
        ("GET", "/jobs") => Some(list_jobs(jobs)),
        ("GET", "/health") => Some(health(jobs)),
        (method, path) => {
            let rest = path.strip_prefix("/jobs/")?;
            let (id_text, sub) = match rest.split_once('/') {
                Some((id, sub)) => (id, Some(sub)),
                None => (rest, None),
            };
            let Ok(id) = id_text.parse::<u64>() else {
                return Some(HttpResponse::error(404, "job ids are integers"));
            };
            Some(match (method, sub) {
                ("GET", None) => job_json(jobs, id),
                ("DELETE", None) => cancel_job(jobs, id),
                ("GET", Some("report")) => job_report(jobs, id),
                ("GET", Some("telemetry")) => job_telemetry(jobs, id),
                ("GET", Some("guide")) => job_guide(jobs, id),
                ("GET", Some(_)) => HttpResponse::error(404, "unknown job subresource"),
                _ => HttpResponse::error(405, "method not allowed on this route"),
            })
        }
    }
}

fn post_job(jobs: &JobServer, body: &[u8]) -> HttpResponse {
    let Ok(text) = std::str::from_utf8(body) else {
        return HttpResponse::error(400, "request body is not UTF-8");
    };
    let spec = match JobSpec::from_json(text) {
        Ok(s) => s,
        Err(e) => return HttpResponse::error(400, &e.0),
    };
    match jobs.submit(spec) {
        Ok(id) => {
            let mut o = JsonObject::new();
            o.field_u64("id", id);
            o.field_str("state", "queued");
            HttpResponse::json(202, o.finish() + "\n")
        }
        Err(e) => HttpResponse::error(429, &e.to_string()),
    }
}

fn list_jobs(jobs: &JobServer) -> HttpResponse {
    let body = jobs.with_table(|t| {
        let rows: Vec<String> = t
            .jobs()
            .map(|j| {
                let mut o = JsonObject::new();
                o.field_u64("id", j.id);
                o.field_str("label", &j.spec.label);
                o.field_str("tenant", &j.spec.tenant);
                o.field_str("state", j.state.as_str());
                o.field_raw("priority", &j.spec.priority.to_string());
                o.field_opt_u64("run_seq", j.run_seq);
                o.finish()
            })
            .collect();
        let mut o = JsonObject::new();
        o.field_raw("jobs", &format!("[{}]", rows.join(",")));
        o.field_u64("queued", t.queue_len() as u64);
        o.field_u64("capacity", t.capacity() as u64);
        o.finish()
    });
    HttpResponse::json(200, body + "\n")
}

/// `GET /health`: sentinel verdicts joined onto job metadata. One row
/// per table-resident job; the overall verdict is the worst row's
/// (watchdog-failed jobs report `critical` even if no analytic rule
/// tripped before the cancel landed).
fn health(jobs: &JobServer) -> HttpResponse {
    let body = jobs.with_table(|t| {
        let mut overall = dgr_obs::Verdict::Ok;
        let rows: Vec<String> = t
            .jobs()
            .map(|j| {
                let watchdog_failed = j
                    .error
                    .as_deref()
                    .is_some_and(|e| e.starts_with("watchdog: "));
                let mut verdict = dgr_obs::health_of(j.id).map_or(dgr_obs::Verdict::Ok, |h| h.0);
                if watchdog_failed {
                    verdict = dgr_obs::Verdict::Critical;
                }
                overall = overall.max(verdict);
                let findings = dgr_obs::health_summary_of(j.id);
                let mut o = JsonObject::new();
                o.field_u64("id", j.id);
                o.field_str("label", &j.spec.label);
                o.field_str("tenant", &j.spec.tenant);
                o.field_str("state", j.state.as_str());
                o.field_str("verdict", verdict.as_str());
                o.field_str("findings", &findings);
                if let Some(e) = &j.error {
                    o.field_str("error", e);
                }
                o.finish()
            })
            .collect();
        let mut o = JsonObject::new();
        o.field_str("verdict", overall.as_str());
        o.field_u64("jobs", rows.len() as u64);
        o.field_raw("rows", &format!("[{}]", rows.join(",")));
        o.finish()
    });
    HttpResponse::json(200, body + "\n")
}

fn job_json(jobs: &JobServer, id: u64) -> HttpResponse {
    match jobs.with_job(id, render_job) {
        Some(body) => HttpResponse::json(200, body + "\n"),
        None => HttpResponse::error(404, "unknown job"),
    }
}

fn render_job(j: &Job) -> String {
    let mut o = JsonObject::new();
    o.field_u64("id", j.id);
    o.field_str("label", &j.spec.label);
    o.field_str("tenant", &j.spec.tenant);
    o.field_str("state", j.state.as_str());
    o.field_raw("priority", &j.spec.priority.to_string());
    o.field_opt_u64("iterations", j.spec.iterations.map(|i| i as u64));
    o.field_opt_u64("seed", j.spec.seed);
    o.field_opt_u64("deadline_ms", j.spec.deadline_ms);
    o.field_opt_u64("max_stall_iters", j.spec.max_stall_iters);
    o.field_str("health", &dgr_obs::health_summary_of(j.id));
    o.field_u64("submitted_unix_ms", j.submitted_unix_ms);
    o.field_opt_u64("started_unix_ms", j.started_unix_ms);
    o.field_opt_u64("finished_unix_ms", j.finished_unix_ms);
    o.field_opt_u64("run_seq", j.run_seq);
    o.field_raw(
        "cancel_requested",
        if j.cancel_requested { "true" } else { "false" },
    );
    if let Some(e) = &j.error {
        o.field_str("error", e);
    }
    if let Some(r) = &j.result {
        let mut res = JsonObject::new();
        res.field_f64("final_loss", r.final_loss);
        res.field_u64("wirelength", r.wirelength);
        res.field_u64("turns", r.turns);
        res.field_f64("overflow", r.overflow);
        res.field_u64("overflowed_edges", r.overflowed_edges);
        res.field_u64("vias", r.vias);
        res.field_u64("nets", r.nets);
        res.field_u64("guide_boxes", r.guide_boxes);
        res.field_u64("wall_ms", r.wall_ms);
        let mut ph = JsonObject::new();
        for (name, ms) in &r.phases {
            ph.field_f64(name, *ms);
        }
        res.field_raw("phases_ms", &ph.finish());
        o.field_raw("result", &res.finish());
    }
    o.finish()
}

fn cancel_job(jobs: &JobServer, id: u64) -> HttpResponse {
    match jobs.cancel(id) {
        Ok(CancelOutcome::CancelledQueued) => {
            let mut o = JsonObject::new();
            o.field_u64("id", id);
            o.field_str("state", "cancelled");
            HttpResponse::json(200, o.finish() + "\n")
        }
        Ok(CancelOutcome::CancelRequested) => {
            let mut o = JsonObject::new();
            o.field_u64("id", id);
            o.field_str("state", "running");
            o.field_str("cancel", "requested");
            HttpResponse::json(202, o.finish() + "\n")
        }
        Err(CancelError::UnknownJob) => HttpResponse::error(404, "unknown job"),
        Err(e @ (CancelError::AlreadyRequested | CancelError::NotCancellable(_))) => {
            HttpResponse::error(409, &e.to_string())
        }
    }
}

/// Telemetry source for a job: the stored full JSONL once terminal, the
/// live job-scoped status ring while running (the in-memory sink is
/// exclusively owned by the run until it finishes).
fn job_telemetry_text(jobs: &JobServer, id: u64) -> Option<(String, JobState)> {
    let (stored, state) = jobs.with_job(id, |j| (j.telemetry.clone(), j.state))?;
    let text = match stored {
        Some(t) => t,
        None if state == JobState::Running => dgr_obs::status_ring_jsonl_of(id),
        None => String::new(),
    };
    Some((text, state))
}

fn job_telemetry(jobs: &JobServer, id: u64) -> HttpResponse {
    match job_telemetry_text(jobs, id) {
        Some((text, _)) => HttpResponse {
            status: 200,
            content_type: "application/x-ndjson".into(),
            body: text,
        },
        None => HttpResponse::error(404, "unknown job"),
    }
}

fn job_report(jobs: &JobServer, id: u64) -> HttpResponse {
    let Some((telemetry, _state)) = job_telemetry_text(jobs, id) else {
        return HttpResponse::error(404, "unknown job");
    };
    let label = jobs
        .with_job(id, |j| j.spec.label.clone())
        .unwrap_or_default();
    let health = dgr_obs::health_of(id).map(|_| dgr_obs::health_timeline_jsonl_of(id));
    let inputs = ReportInputs {
        title: format!("job {id} — {label}"),
        telemetry: (!telemetry.is_empty()).then_some(telemetry),
        snapshots: None,
        trace: None,
        profile: None,
        health,
    };
    match render_report(&inputs) {
        Ok(html) => HttpResponse::html(200, html),
        Err(e) => HttpResponse::error(500, &format!("report: {e}")),
    }
}

fn job_guide(jobs: &JobServer, id: u64) -> HttpResponse {
    match jobs.with_job(id, |j| {
        (j.state, j.result.as_ref().and_then(|r| r.guide.clone()))
    }) {
        None => HttpResponse::error(404, "unknown job"),
        Some((state, Some(guide))) => {
            debug_assert!(state.is_terminal());
            HttpResponse::text(200, guide)
        }
        Some((state, None)) if state.is_terminal() => {
            HttpResponse::error(404, "job finished without a guide")
        }
        Some((_, None)) => HttpResponse::error(409, "job not finished yet"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DesignSource;
    use std::io::{Read, Write};

    fn request(addr: std::net::SocketAddr, head: &str, body: &str) -> (u16, String) {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let msg = format!(
            "{head} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(msg.as_bytes()).unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        let status: u16 = resp
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let payload = resp
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    #[test]
    fn submit_poll_and_builtin_fallthrough() {
        let daemon = Daemon::start(
            "127.0.0.1:0",
            DaemonConfig {
                workers: 1,
                ..DaemonConfig::default()
            },
        )
        .unwrap();
        let addr = daemon.local_addr();

        // an unroutable-but-parsable spec error is a structured 400
        let (status, body) = request(addr, "POST /jobs", r#"{"bogus":1}"#);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("\"error\""));

        // obs built-ins still answer
        let (status, body) = request(addr, "GET /metrics", "");
        assert_eq!(status, 200, "{body}");

        // unknown id and non-integer id
        let (status, _) = request(addr, "GET /jobs/424242", "");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET /jobs/nope", "");
        assert_eq!(status, 404);

        // the daemon /health shadows the obs built-in with job rows
        let (status, body) = request(addr, "GET /health", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"verdict\""), "{body}");
        assert!(body.contains("\"rows\""), "{body}");

        daemon.stop();
    }

    #[test]
    fn guide_endpoint_states() {
        let server = JobServer::start(DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        });
        let id = server
            .submit(JobSpec {
                label: "g".into(),
                tenant: "t".into(),
                priority: 0,
                iterations: Some(1),
                seed: None,
                design: DesignSource::Text("garbage".into()),
                want_guide: true,
                deadline_ms: None,
                max_stall_iters: None,
            })
            .unwrap();
        assert!(server.wait_terminal(id, std::time::Duration::from_secs(30)));
        let resp = job_guide(&server, id);
        assert_eq!(resp.status, 404); // failed job → no guide
        let resp = job_guide(&server, 999_999_998);
        assert_eq!(resp.status, 404);
        server.stop();
    }
}
