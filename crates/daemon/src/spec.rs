//! Job-spec parsing: the JSON body of `POST /jobs`.
//!
//! The grammar is deliberately small and strict — unknown keys are
//! rejected rather than ignored, so a typo in a client script fails
//! loudly at submission instead of silently routing the wrong design.
//!
//! ```json
//! {
//!   "design_catalog": "ispd18_test1", // exactly one design source
//!   "fast": true,                //   (catalog only) shrink like `dgr generate --fast`
//!   "iterations": 40,            // optional DgrConfig overrides
//!   "seed": 7,
//!   "label": "smoke",            // optional display label
//!   "tenant": "ci",              // optional tenant tag (default "anon")
//!   "priority": 2,               // optional; higher runs first (default 0)
//!   "guide": true,               // optional; keep the route guide (default true)
//!   "deadline_ms": 60000,        // optional SLO: cancel after this wall-clock budget
//!   "max_stall_iters": 500       // optional SLO: cancel after this many iterations
//!                                //   without a relative loss improvement
//! }
//! ```
//!
//! The two SLO keys arm the sentinel watchdog (`dgr_obs::sentinel`): a
//! breach raises the job's cooperative-cancel flag and the job finishes
//! `failed` with a structured `watchdog: …` error.
//!
//! The other design sources are `"design_text"` (inline netlist in the
//! `dgr-io` text format) and `"design_path"` (server-side file path).

use dgr_obs::parse::{parse_json, JsonValue};

/// Where the job's design comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignSource {
    /// Inline design text in the `dgr-io` format (`design_text`).
    Text(String),
    /// Path to a design file readable by the daemon (`design_path`).
    Path(String),
    /// A named catalog case generated on demand (`design_catalog`),
    /// optionally shrunk with the same rules as `dgr generate --fast`.
    Catalog {
        /// Catalog case name (see `dgr cases`).
        name: String,
        /// Apply the `--fast` shrink.
        fast: bool,
    },
}

/// A parsed, validated job specification.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Display label (defaults to a name derived from the source).
    pub label: String,
    /// Tenant tag, recorded on every artifact of the job.
    pub tenant: String,
    /// Scheduling priority: higher runs first, FIFO within a priority.
    pub priority: i64,
    /// Training-iteration override (`DgrConfig` default when absent).
    pub iterations: Option<usize>,
    /// RNG-seed override.
    pub seed: Option<u64>,
    /// The design source.
    pub design: DesignSource,
    /// Whether to keep the route-guide text on the finished job.
    pub want_guide: bool,
    /// SLO: wall-clock budget in milliseconds; the sentinel watchdog
    /// cancels the run once exceeded (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// SLO: iteration budget without a relative loss improvement before
    /// the watchdog cancels the run (`None` = no stall limit).
    pub max_stall_iters: Option<u64>,
}

/// A structured spec rejection (maps to HTTP 400).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

const KNOWN_KEYS: &[&str] = &[
    "label",
    "tenant",
    "priority",
    "iterations",
    "seed",
    "design_text",
    "design_path",
    "design_catalog",
    "fast",
    "guide",
    "deadline_ms",
    "max_stall_iters",
];

impl JobSpec {
    /// Parses and validates a `POST /jobs` body.
    pub fn from_json(text: &str) -> Result<JobSpec, SpecError> {
        let v = parse_json(text).map_err(|e| SpecError(format!("invalid JSON: {e}")))?;
        let JsonValue::Obj(map) = &v else {
            return Err(SpecError("job spec must be a JSON object".into()));
        };
        if let Some(k) = map.keys().find(|k| !KNOWN_KEYS.contains(&k.as_str())) {
            return Err(SpecError(format!(
                "unknown job spec key `{k}` (known keys: {})",
                KNOWN_KEYS.join(", ")
            )));
        }

        let text_src = opt_str(&v, "design_text")?;
        let path_src = opt_str(&v, "design_path")?;
        let catalog_src = opt_str(&v, "design_catalog")?;
        let fast = opt_bool(&v, "fast")?.unwrap_or(false);
        let sources = [
            text_src.is_some(),
            path_src.is_some(),
            catalog_src.is_some(),
        ]
        .iter()
        .filter(|p| **p)
        .count();
        if sources != 1 {
            return Err(SpecError(
                "exactly one of `design_text`, `design_path`, `design_catalog` is required".into(),
            ));
        }
        if fast && catalog_src.is_none() {
            return Err(SpecError(
                "`fast` only applies to `design_catalog` jobs".into(),
            ));
        }
        let design = if let Some(t) = text_src {
            DesignSource::Text(t)
        } else if let Some(p) = path_src {
            DesignSource::Path(p)
        } else {
            DesignSource::Catalog {
                name: catalog_src.expect("source count checked"),
                fast,
            }
        };

        let iterations = match opt_u64(&v, "iterations")? {
            Some(0) => return Err(SpecError("`iterations` must be at least 1".into())),
            Some(n) => Some(n as usize),
            None => None,
        };
        let seed = opt_u64(&v, "seed")?;
        let deadline_ms = match opt_u64(&v, "deadline_ms")? {
            Some(0) => return Err(SpecError("`deadline_ms` must be at least 1".into())),
            other => other,
        };
        let max_stall_iters = match opt_u64(&v, "max_stall_iters")? {
            Some(0) => return Err(SpecError("`max_stall_iters` must be at least 1".into())),
            other => other,
        };
        let priority = match v.get("priority") {
            None | Some(JsonValue::Null) => 0,
            Some(JsonValue::Num(n)) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => *n as i64,
            Some(_) => return Err(SpecError("`priority` must be an integer".into())),
        };
        let want_guide = opt_bool(&v, "guide")?.unwrap_or(true);
        let tenant = opt_str(&v, "tenant")?.unwrap_or_else(|| "anon".into());
        let label = match opt_str(&v, "label")? {
            Some(l) if !l.trim().is_empty() => l,
            _ => default_label(&design),
        };

        Ok(JobSpec {
            label,
            tenant,
            priority,
            iterations,
            seed,
            design,
            want_guide,
            deadline_ms,
            max_stall_iters,
        })
    }
}

fn default_label(design: &DesignSource) -> String {
    match design {
        DesignSource::Text(_) => "inline".into(),
        DesignSource::Path(p) => p
            .rsplit('/')
            .next()
            .unwrap_or(p)
            .trim_end_matches(".txt")
            .to_string(),
        DesignSource::Catalog { name, fast } => {
            if *fast {
                format!("{name}-fast")
            } else {
                name.clone()
            }
        }
    }
}

fn opt_str(v: &JsonValue, key: &str) -> Result<Option<String>, SpecError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(SpecError(format!("`{key}` must be a string"))),
    }
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, SpecError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(n @ JsonValue::Num(_)) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| SpecError(format!("`{key}` must be a non-negative integer"))),
        Some(_) => Err(SpecError(format!("`{key}` must be a non-negative integer"))),
    }
}

fn opt_bool(v: &JsonValue, key: &str) -> Result<Option<bool>, SpecError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(SpecError(format!("`{key}` must be a boolean"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let s = JobSpec::from_json(
            r#"{"design_catalog":"ispd18_test1","fast":true,"iterations":40,"seed":7,
                "label":"smoke","tenant":"ci","priority":2,"guide":false}"#,
        )
        .unwrap();
        assert_eq!(s.label, "smoke");
        assert_eq!(s.tenant, "ci");
        assert_eq!(s.priority, 2);
        assert_eq!(s.iterations, Some(40));
        assert_eq!(s.seed, Some(7));
        assert!(!s.want_guide);
        assert_eq!(
            s.design,
            DesignSource::Catalog {
                name: "ispd18_test1".into(),
                fast: true
            }
        );
    }

    #[test]
    fn defaults_are_sane() {
        let s = JobSpec::from_json(r#"{"design_text":"grid 8 8\n"}"#).unwrap();
        assert_eq!(s.label, "inline");
        assert_eq!(s.tenant, "anon");
        assert_eq!(s.priority, 0);
        assert_eq!(s.iterations, None);
        assert!(s.want_guide);
        assert_eq!(s.deadline_ms, None);
        assert_eq!(s.max_stall_iters, None);
    }

    #[test]
    fn slo_keys_parse() {
        let s =
            JobSpec::from_json(r#"{"design_text":"x","deadline_ms":60000,"max_stall_iters":500}"#)
                .unwrap();
        assert_eq!(s.deadline_ms, Some(60_000));
        assert_eq!(s.max_stall_iters, Some(500));
    }

    #[test]
    fn rejects_bad_specs() {
        for (body, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"design_text":"x","bogus":1}"#, "unknown job spec key"),
            (r#"{}"#, "exactly one of"),
            (r#"{"design_text":"x","design_path":"y"}"#, "exactly one of"),
            (r#"{"design_text":"x","fast":true}"#, "`fast` only applies"),
            (r#"{"design_text":"x","iterations":0}"#, "at least 1"),
            (r#"{"design_text":"x","iterations":-3}"#, "non-negative"),
            (r#"{"design_text":"x","deadline_ms":0}"#, "at least 1"),
            (r#"{"design_text":"x","deadline_ms":-1}"#, "non-negative"),
            (r#"{"design_text":"x","max_stall_iters":0}"#, "at least 1"),
            (
                r#"{"design_text":"x","max_stall_iters":"soon"}"#,
                "non-negative",
            ),
            (r#"{"design_text":"x","priority":1.5}"#, "integer"),
            (r#"{"design_text":"x","guide":"yes"}"#, "boolean"),
            (r#"{"design_text":7}"#, "must be a string"),
        ] {
            let err = JobSpec::from_json(body).unwrap_err();
            assert!(
                err.0.contains(needle),
                "body {body:?}: error {:?} missing {needle:?}",
                err.0
            );
        }
    }

    #[test]
    fn negative_priority_is_allowed() {
        let s = JobSpec::from_json(r#"{"design_text":"x","priority":-4}"#).unwrap();
        assert_eq!(s.priority, -4);
    }

    #[test]
    fn derives_labels_from_sources() {
        let p = JobSpec::from_json(r#"{"design_path":"/tmp/designs/chip3.txt"}"#).unwrap();
        assert_eq!(p.label, "chip3");
        let c = JobSpec::from_json(r#"{"design_catalog":"ispd18_test1","fast":true}"#).unwrap();
        assert_eq!(c.label, "ispd18_test1-fast");
    }
}
