//! The daemon's job table: a pure, single-threaded state machine.
//!
//! Everything concurrency-sensitive about `dgrd` — admission control,
//! priority/FIFO ordering, lifecycle transitions, cancellation rules,
//! terminal-job retention — lives here behind plain method calls with no
//! locks, threads, or clocks of its own. [`crate::server::JobServer`]
//! wraps one [`JobTable`] in a mutex; tests (including the proptest
//! interleaving suite) drive the table directly and check
//! [`JobTable::check_invariants`] after every step.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::spec::JobSpec;

/// Daemon-wide job identifier.
///
/// Allocated from a process-global counter (not per-table) so job ids —
/// which double as `dgr-obs` status-scope ids — never collide even when
/// several daemons run inside one test process.
pub type JobId = u64;

static NEXT_JOB_ID: AtomicU64 = AtomicU64::new(1);

fn next_job_id() -> JobId {
    NEXT_JOB_ID.fetch_add(1, Ordering::Relaxed)
}

/// Lifecycle state of a job.
///
/// ```text
/// queued ──claim──▶ running ──finish──▶ done | failed | cancelled
///    │                                            ▲
///    └────────────────cancel──────────────────────┘
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the queue.
    Queued,
    /// Claimed by a worker; the route pipeline is executing.
    Running,
    /// Finished successfully; [`Job::result`] is populated.
    Done,
    /// Finished with an error; [`Job::error`] is populated.
    Failed,
    /// Cancelled before (from the queue) or during (cooperatively) a run.
    Cancelled,
}

impl JobState {
    /// Lower-case wire name used in JSON payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is final (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Metrics of a successfully finished job, mirroring what the one-shot
/// `dgr route` prints and ledgers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobResult {
    /// Final training loss.
    pub final_loss: f64,
    /// Extracted-solution wirelength (g-cell edge units), post-refine.
    pub wirelength: u64,
    /// Turning points of the 2D solution.
    pub turns: u64,
    /// Total overflow, post-refine.
    pub overflow: f64,
    /// Overflowed edge count, post-refine.
    pub overflowed_edges: u64,
    /// 3D vias when layer assignment ran, otherwise the 2D turn count.
    pub vias: u64,
    /// Nets routed.
    pub nets: u64,
    /// Route-guide text, when the spec asked for one and the design has
    /// enough layers for assignment.
    pub guide: Option<String>,
    /// Boxes in the guide (0 when no guide was produced).
    pub guide_boxes: u64,
    /// Wall-clock per phase, milliseconds (`train`, `forward`,
    /// `backward`, `refine`, `assign`).
    pub phases: BTreeMap<String, f64>,
    /// Wall-clock of the whole pipeline, milliseconds.
    pub wall_ms: u64,
}

/// One job: spec, lifecycle, timestamps, and artifacts.
#[derive(Debug)]
pub struct Job {
    /// Daemon-wide id (also the `dgr-obs` status-scope id while running).
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Unix milliseconds at submission.
    pub submitted_unix_ms: u64,
    /// Unix milliseconds when a worker claimed the job.
    pub started_unix_ms: Option<u64>,
    /// Unix milliseconds when the job reached a terminal state.
    pub finished_unix_ms: Option<u64>,
    /// Execution order among claimed jobs (0-based): the FIFO witness.
    pub run_seq: Option<u64>,
    /// Cooperative cancellation flag shared with the training loop.
    pub cancel: Arc<AtomicBool>,
    /// Whether a cancel request has been recorded (queued-job cancels
    /// transition immediately; running-job cancels set this and wait for
    /// the training loop to notice).
    pub cancel_requested: bool,
    /// Result metrics, present iff `state == Done`.
    pub result: Option<JobResult>,
    /// Error message, present iff `state == Failed`.
    pub error: Option<String>,
    /// Full per-iteration telemetry JSONL captured during the run
    /// (present once terminal, when training produced rows).
    pub telemetry: Option<String>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; the client should back off.
    QueueFull {
        /// Configured queue bound.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue full (capacity {capacity})")
            }
        }
    }
}

/// What a successful cancel request did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: removed and terminally cancelled.
    CancelledQueued,
    /// The job was running: the cooperative flag is now set and the
    /// training loop will stop between iterations.
    CancelRequested,
}

/// Why a cancel request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelError {
    /// No such job id (never existed, or already evicted).
    UnknownJob,
    /// A cancel was already requested for this running job.
    AlreadyRequested,
    /// The job is already terminal.
    NotCancellable(JobState),
}

impl std::fmt::Display for CancelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelError::UnknownJob => write!(f, "unknown job"),
            CancelError::AlreadyRequested => write!(f, "cancel already requested"),
            CancelError::NotCancellable(s) => write!(f, "job already {}", s.as_str()),
        }
    }
}

/// The job table: bounded priority/FIFO queue plus the full lifecycle
/// record of every live and recently finished job.
#[derive(Debug)]
pub struct JobTable {
    capacity: usize,
    retain: usize,
    /// Queued ids, highest priority first, FIFO within a priority.
    queue: VecDeque<JobId>,
    jobs: BTreeMap<JobId, Job>,
    next_run_seq: u64,
    /// Terminal ids in completion order (oldest first) — the eviction
    /// order once more than `retain` terminal jobs accumulate.
    finished_order: VecDeque<JobId>,
}

impl JobTable {
    /// Creates a table admitting at most `capacity` queued jobs and
    /// retaining at most `retain` terminal jobs.
    pub fn new(capacity: usize, retain: usize) -> Self {
        JobTable {
            capacity: capacity.max(1),
            retain: retain.max(1),
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            next_run_seq: 0,
            finished_order: VecDeque::new(),
        }
    }

    /// Queued-job count.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Configured queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All jobs currently in the table, ascending id.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Looks up one job.
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Admits a job, or rejects it when the queue is at capacity.
    ///
    /// Queue position: after every queued job of `>=` priority, before
    /// the first of lower priority — i.e. priority classes are strict,
    /// FIFO within a class.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        if self.queue.len() >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = next_job_id();
        let priority = spec.priority;
        let pos = self
            .queue
            .iter()
            .position(|qid| self.jobs[qid].spec.priority < priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, id);
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: JobState::Queued,
                submitted_unix_ms: now_unix_ms(),
                started_unix_ms: None,
                finished_unix_ms: None,
                run_seq: None,
                cancel: Arc::new(AtomicBool::new(false)),
                cancel_requested: false,
                result: None,
                error: None,
                telemetry: None,
            },
        );
        Ok(id)
    }

    /// Pops the head of the queue and marks it running; `None` when the
    /// queue is empty.
    pub fn claim(&mut self) -> Option<JobId> {
        let id = self.queue.pop_front()?;
        let job = self.jobs.get_mut(&id).expect("queued id has a job record");
        job.state = JobState::Running;
        job.started_unix_ms = Some(now_unix_ms());
        job.run_seq = Some(self.next_run_seq);
        self.next_run_seq += 1;
        Some(id)
    }

    /// Records the outcome of a claimed job's run. `cancelled` wins over
    /// `result` (a cooperatively stopped run reports `Cancelled` even
    /// though it produced an error value internally).
    pub fn finish(
        &mut self,
        id: JobId,
        result: Result<JobResult, String>,
        telemetry: Option<String>,
        cancelled: bool,
    ) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        debug_assert_eq!(job.state, JobState::Running, "finish on a non-running job");
        if cancelled {
            // the partial run's result/error is meaningless — drop it
            job.state = JobState::Cancelled;
        } else {
            match result {
                Ok(r) => {
                    job.state = JobState::Done;
                    job.result = Some(r);
                }
                Err(e) => {
                    job.state = JobState::Failed;
                    job.error = Some(e);
                }
            }
        }
        job.telemetry = telemetry;
        job.finished_unix_ms = Some(now_unix_ms());
        self.finished_order.push_back(id);
    }

    /// Requests cancellation.
    ///
    /// * Queued → removed from the queue, terminally [`JobState::Cancelled`].
    /// * Running → the shared flag is raised; the run stops between
    ///   iterations. A second request is [`CancelError::AlreadyRequested`].
    /// * Terminal → [`CancelError::NotCancellable`].
    pub fn cancel(&mut self, id: JobId) -> Result<CancelOutcome, CancelError> {
        let Some(job) = self.jobs.get_mut(&id) else {
            return Err(CancelError::UnknownJob);
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.cancel_requested = true;
                job.cancel.store(true, Ordering::Relaxed);
                job.finished_unix_ms = Some(now_unix_ms());
                self.queue.retain(|qid| *qid != id);
                self.finished_order.push_back(id);
                Ok(CancelOutcome::CancelledQueued)
            }
            JobState::Running => {
                if job.cancel_requested {
                    return Err(CancelError::AlreadyRequested);
                }
                job.cancel_requested = true;
                job.cancel.store(true, Ordering::Relaxed);
                Ok(CancelOutcome::CancelRequested)
            }
            s => Err(CancelError::NotCancellable(s)),
        }
    }

    /// Drops the oldest terminal jobs beyond the retention bound and
    /// returns their ids (the server detaches their status scopes).
    pub fn evict(&mut self) -> Vec<JobId> {
        let mut evicted = Vec::new();
        while self.finished_order.len() > self.retain {
            let id = self.finished_order.pop_front().expect("len checked");
            self.jobs.remove(&id);
            evicted.push(id);
        }
        evicted
    }

    /// Jobs per lifecycle state, in `(queued, running, done, failed,
    /// cancelled)` order — the source for the `dgrd_jobs_*` gauges.
    pub fn state_counts(&self) -> [u64; 5] {
        let mut counts = [0u64; 5];
        for job in self.jobs.values() {
            let slot = match job.state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
            };
            counts[slot] += 1;
        }
        counts
    }

    /// Structural invariants; the proptest suite calls this after every
    /// operation. Panics with a description on violation.
    pub fn check_invariants(&self) {
        assert!(
            self.queue.len() <= self.capacity,
            "queue over capacity: {} > {}",
            self.queue.len(),
            self.capacity
        );
        for pair in self.queue.iter().zip(self.queue.iter().skip(1)) {
            let (a, b) = (&self.jobs[pair.0], &self.jobs[pair.1]);
            assert!(
                a.spec.priority > b.spec.priority
                    || (a.spec.priority == b.spec.priority && a.id < b.id),
                "queue order violated: job {} (prio {}) before job {} (prio {})",
                a.id,
                a.spec.priority,
                b.id,
                b.spec.priority
            );
        }
        let mut queued_seen = std::collections::BTreeSet::new();
        for qid in &self.queue {
            let job = self.jobs.get(qid).expect("queued id has a job record");
            assert_eq!(job.state, JobState::Queued, "queued id not in Queued state");
            assert!(queued_seen.insert(*qid), "duplicate id {qid} in queue");
        }
        let mut run_seqs = std::collections::BTreeSet::new();
        for job in self.jobs.values() {
            match job.state {
                JobState::Queued => {
                    assert!(
                        queued_seen.contains(&job.id),
                        "Queued job {} missing from queue",
                        job.id
                    );
                    assert!(job.run_seq.is_none() && job.started_unix_ms.is_none());
                }
                JobState::Running => {
                    assert!(job.run_seq.is_some() && job.started_unix_ms.is_some());
                    assert!(job.finished_unix_ms.is_none());
                }
                s => {
                    assert!(s.is_terminal());
                    assert!(job.finished_unix_ms.is_some());
                    assert!(
                        self.finished_order.contains(&job.id),
                        "terminal job {} missing from finished_order",
                        job.id
                    );
                }
            }
            if let Some(seq) = job.run_seq {
                assert!(run_seqs.insert(seq), "duplicate run_seq {seq}");
            }
            assert_eq!(job.state == JobState::Done, job.result.is_some());
            assert_eq!(job.state == JobState::Failed, job.error.is_some());
        }
        // NOTE: `finished_order.len() <= retain` is deliberately NOT
        // asserted here — eviction is an explicit step, so terminal jobs
        // may transiently exceed the bound between a finish/cancel and
        // the next `evict` call.
        for fid in &self.finished_order {
            assert!(
                self.jobs.get(fid).is_some_and(|j| j.state.is_terminal()),
                "finished_order id {fid} not a retained terminal job"
            );
        }
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DesignSource;

    fn spec(priority: i64) -> JobSpec {
        JobSpec {
            label: "t".into(),
            tenant: "anon".into(),
            priority,
            iterations: Some(1),
            seed: None,
            design: DesignSource::Text(String::new()),
            want_guide: false,
            deadline_ms: None,
            max_stall_iters: None,
        }
    }

    #[test]
    fn state_counts_track_transitions() {
        let mut t = JobTable::new(8, 8);
        let a = t.submit(spec(0)).unwrap();
        let b = t.submit(spec(0)).unwrap();
        assert_eq!(t.state_counts(), [2, 0, 0, 0, 0]);
        t.claim().unwrap();
        assert_eq!(t.state_counts(), [1, 1, 0, 0, 0]);
        t.finish(a, Ok(JobResult::default()), None, false);
        t.cancel(b).unwrap();
        assert_eq!(t.state_counts(), [0, 0, 1, 0, 1]);
    }

    #[test]
    fn fifo_within_priority_class() {
        let mut t = JobTable::new(8, 8);
        let a = t.submit(spec(0)).unwrap();
        let b = t.submit(spec(0)).unwrap();
        let c = t.submit(spec(0)).unwrap();
        t.check_invariants();
        assert_eq!(t.claim(), Some(a));
        assert_eq!(t.claim(), Some(b));
        assert_eq!(t.claim(), Some(c));
        assert_eq!(t.claim(), None);
        assert_eq!(t.get(a).unwrap().run_seq, Some(0));
        assert_eq!(t.get(c).unwrap().run_seq, Some(2));
    }

    #[test]
    fn higher_priority_jumps_the_queue() {
        let mut t = JobTable::new(8, 8);
        let low = t.submit(spec(0)).unwrap();
        let high = t.submit(spec(5)).unwrap();
        let mid = t.submit(spec(2)).unwrap();
        t.check_invariants();
        assert_eq!(t.claim(), Some(high));
        assert_eq!(t.claim(), Some(mid));
        assert_eq!(t.claim(), Some(low));
    }

    #[test]
    fn backpressure_at_capacity() {
        let mut t = JobTable::new(2, 8);
        t.submit(spec(0)).unwrap();
        t.submit(spec(0)).unwrap();
        assert_eq!(
            t.submit(spec(0)),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        // a claim frees a slot
        t.claim().unwrap();
        t.submit(spec(0)).unwrap();
        t.check_invariants();
    }

    #[test]
    fn cancel_semantics() {
        let mut t = JobTable::new(8, 8);
        let q = t.submit(spec(0)).unwrap();
        assert_eq!(t.cancel(q), Ok(CancelOutcome::CancelledQueued));
        assert_eq!(t.get(q).unwrap().state, JobState::Cancelled);
        assert_eq!(
            t.cancel(q),
            Err(CancelError::NotCancellable(JobState::Cancelled))
        );

        let r = t.submit(spec(0)).unwrap();
        assert_eq!(t.claim(), Some(r));
        assert_eq!(t.cancel(r), Ok(CancelOutcome::CancelRequested));
        assert!(t.get(r).unwrap().cancel.load(Ordering::Relaxed));
        assert_eq!(t.cancel(r), Err(CancelError::AlreadyRequested));
        t.finish(r, Err("cancelled".into()), None, true);
        assert_eq!(t.get(r).unwrap().state, JobState::Cancelled);
        assert_eq!(t.cancel(999_999_999), Err(CancelError::UnknownJob));
        t.check_invariants();
    }

    #[test]
    fn eviction_drops_oldest_terminal_jobs() {
        let mut t = JobTable::new(8, 2);
        let mut ids = Vec::new();
        for _ in 0..4 {
            let id = t.submit(spec(0)).unwrap();
            t.claim().unwrap();
            t.finish(id, Ok(JobResult::default()), None, false);
            ids.push(id);
        }
        let evicted = t.evict();
        assert_eq!(evicted, ids[..2].to_vec());
        assert!(t.get(ids[0]).is_none());
        assert!(t.get(ids[3]).is_some());
        t.check_invariants();
    }
}
