//! Property tests over the [`JobTable`] lifecycle state machine: random
//! interleavings of submit / claim / cancel / finish / evict must keep
//! the table's structural invariants intact and must agree with a naive
//! linearized model of a bounded priority/FIFO queue.

use std::collections::BTreeSet;

use dgr_daemon::queue::{CancelOutcome, JobResult, JobState, JobTable, SubmitError};
use dgr_daemon::spec::{DesignSource, JobSpec};
use proptest::prelude::*;

const CAPACITY: usize = 4;
const RETAIN: usize = 3;

fn spec(priority: i64) -> JobSpec {
    JobSpec {
        label: "prop".into(),
        tenant: "prop".into(),
        priority,
        iterations: Some(1),
        seed: None,
        design: DesignSource::Text(String::new()),
        want_guide: false,
        deadline_ms: None,
        max_stall_iters: None,
    }
}

/// One random operation: `(kind, index, priority)`.
///
/// * kind 0 — submit at `priority - 2` (so classes span negative/zero/positive)
/// * kind 1 — claim
/// * kind 2 — cancel the `index`-th known id (or an unknown id)
/// * kind 3 — finish the `index`-th running id (outcome from `priority`)
/// * kind 4 — evict
fn ops() -> impl Strategy<Value = Vec<(u32, usize, i64)>> {
    proptest::collection::vec((0u32..5u32, 0usize..8usize, 0i64..5i64), 1..48)
}

/// Naive model of the expected scheduler state.
#[derive(Default)]
struct Model {
    /// Expected queue order: `(priority, id)`, head first.
    queue: Vec<(i64, u64)>,
    running: BTreeSet<u64>,
    terminal: BTreeSet<u64>,
    all: Vec<u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interleavings_keep_the_table_consistent(ops in ops()) {
        let mut table = JobTable::new(CAPACITY, RETAIN);
        let mut model = Model::default();

        for (kind, index, raw_prio) in ops {
            match kind {
                0 => {
                    let priority = raw_prio - 2;
                    match table.submit(spec(priority)) {
                        Ok(id) => {
                            prop_assert!(model.queue.len() < CAPACITY,
                                "admitted past the bound");
                            let pos = model
                                .queue
                                .iter()
                                .position(|(p, _)| *p < priority)
                                .unwrap_or(model.queue.len());
                            model.queue.insert(pos, (priority, id));
                            model.all.push(id);
                        }
                        Err(SubmitError::QueueFull { capacity }) => {
                            prop_assert_eq!(capacity, CAPACITY);
                            prop_assert_eq!(model.queue.len(), CAPACITY,
                                "rejected below the bound");
                        }
                    }
                }
                1 => {
                    let claimed = table.claim();
                    match (claimed, model.queue.first().copied()) {
                        (Some(id), Some((_, expect))) => {
                            prop_assert_eq!(id, expect,
                                "claim order diverged from the model");
                            model.queue.remove(0);
                            model.running.insert(id);
                        }
                        (None, None) => {}
                        (got, want) => prop_assert!(false,
                            "claim {:?} but model head {:?}", got, want),
                    }
                }
                2 => {
                    // target a known id most of the time, sometimes nonsense
                    let target = if index < model.all.len() {
                        model.all[index]
                    } else {
                        u64::MAX - index as u64
                    };
                    let queued_pos = model.queue.iter().position(|(_, id)| *id == target);
                    let result = table.cancel(target);
                    if let Some(pos) = queued_pos {
                        prop_assert_eq!(result, Ok(CancelOutcome::CancelledQueued));
                        model.queue.remove(pos);
                        model.terminal.insert(target);
                    } else if model.running.contains(&target) {
                        // first request succeeds, later ones conflict
                        prop_assert!(result.is_ok()
                            || result == Err(dgr_daemon::queue::CancelError::AlreadyRequested));
                    } else if model.terminal.contains(&target) {
                        prop_assert!(matches!(
                            result,
                            Err(dgr_daemon::queue::CancelError::NotCancellable(_))
                        ));
                    } else {
                        prop_assert_eq!(result,
                            Err(dgr_daemon::queue::CancelError::UnknownJob));
                    }
                }
                3 => {
                    let running: Vec<u64> = model.running.iter().copied().collect();
                    if let Some(&id) = running.get(index % running.len().max(1)) {
                        let outcome = match raw_prio {
                            0 => Ok(JobResult::default()),
                            1 => Err("synthetic failure".to_string()),
                            _ => Err("cancelled".to_string()),
                        };
                        let cancelled = raw_prio >= 2;
                        table.finish(id, outcome, None, cancelled);
                        model.running.remove(&id);
                        model.terminal.insert(id);
                        let job = table.get(id).expect("just finished");
                        prop_assert!(job.state.is_terminal());
                        prop_assert_eq!(
                            job.state == JobState::Cancelled, cancelled);
                    }
                }
                _ => {
                    for id in table.evict() {
                        prop_assert!(model.terminal.remove(&id),
                            "evicted a non-terminal job {}", id);
                    }
                    let retained = table.jobs().filter(|j| j.state.is_terminal()).count();
                    prop_assert!(retained <= RETAIN,
                        "evict left {} terminal jobs (retain {})", retained, RETAIN);
                }
            }
            table.check_invariants();
        }

        // drain to quiescence: everything left must still be claimable
        // and finishable without tripping an invariant
        while let Some(id) = table.claim() {
            prop_assert_eq!(model.queue.remove(0).1, id);
            table.finish(id, Ok(JobResult::default()), None, false);
            table.check_invariants();
        }
        prop_assert!(model.queue.is_empty());
    }
}
