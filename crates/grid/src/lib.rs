#![warn(missing_docs)]

//! G-cell grid substrate for the DGR global router.
//!
//! Global routing abstracts the chip into a coarse grid of *g-cells*.
//! Adjacent g-cells are connected by *g-cell edges* that carry a routing
//! [`CapacityModel`] (how many wires fit) and a [`DemandMap`] (how many wires
//! the current solution pushes through). This crate provides:
//!
//! * [`Point`], [`Rect`] — integer g-cell geometry,
//! * [`GcellGrid`] — the grid graph with dense edge/cell indexing,
//! * [`CapacityModel`] — Eq. (1) of the DGR paper:
//!   `cap_e = tracks_e − β_v·pin_density_v − local_nets`,
//! * [`DemandMap`] — accumulated wire/via demand per edge,
//! * [`metrics`] — overflow statistics used by every experiment.
//!
//! # Examples
//!
//! ```
//! use dgr_grid::{GcellGrid, Point};
//!
//! let grid = GcellGrid::new(8, 6)?;
//! let e = grid.h_edge(3, 2)?;
//! let (a, b) = grid.edge_endpoints(e);
//! assert_eq!((a, b), (Point::new(3, 2), Point::new(4, 2)));
//! # Ok::<(), dgr_grid::GridError>(())
//! ```

pub mod capacity;
pub mod demand;
pub mod design;
pub mod geom;
pub mod grid;
pub mod ids;
pub mod maze;
pub mod metrics;
pub mod snapshot;

pub use capacity::{CapacityBuilder, CapacityModel};
pub use demand::DemandMap;
pub use design::{Design, Net};
pub use geom::{Point, Rect};
pub use grid::{EdgeDir, GcellGrid};
pub use ids::{EdgeId, GcellId, NetId};
pub use maze::{maze_route, MazeConfig};
pub use metrics::{CongestionReport, OverflowStats};
pub use snapshot::{capacity_grids, edge_excess, CongestionSnapshot};

/// Errors produced by grid construction and indexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A grid dimension was zero or exceeded the supported maximum.
    BadDimensions {
        /// Requested width in g-cells.
        width: u32,
        /// Requested height in g-cells.
        height: u32,
    },
    /// A cell coordinate fell outside the grid.
    CellOutOfBounds {
        /// Offending x coordinate.
        x: i32,
        /// Offending y coordinate.
        y: i32,
    },
    /// An edge coordinate fell outside the grid.
    EdgeOutOfBounds {
        /// Offending x coordinate.
        x: i32,
        /// Offending y coordinate.
        y: i32,
        /// Direction of the requested edge.
        dir: EdgeDir,
    },
    /// Two points expected to be rectilinearly aligned were not.
    NotAligned {
        /// First endpoint.
        a: Point,
        /// Second endpoint.
        b: Point,
    },
    /// A per-cell or per-edge data vector had the wrong length.
    LengthMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::BadDimensions { width, height } => {
                write!(f, "grid dimensions {width}x{height} are invalid")
            }
            GridError::CellOutOfBounds { x, y } => {
                write!(f, "g-cell ({x}, {y}) is outside the grid")
            }
            GridError::EdgeOutOfBounds { x, y, dir } => {
                write!(f, "{dir:?} edge at ({x}, {y}) is outside the grid")
            }
            GridError::NotAligned { a, b } => {
                write!(f, "points {a} and {b} are not rectilinearly aligned")
            }
            GridError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} entries, got {got}")
            }
        }
    }
}

impl std::error::Error for GridError {}
