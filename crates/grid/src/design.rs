//! The routing problem input: grid + capacities + nets.
//!
//! A [`Design`] is the common input type shared by the differentiable
//! router, every baseline router, and the benchmark generators — the
//! in-memory equivalent of the LEF/DEF + net list the paper's flows parse.

use serde::{Deserialize, Serialize};

use crate::capacity::CapacityModel;
use crate::geom::Point;
use crate::grid::GcellGrid;
use crate::GridError;

/// A single net: a name and its pin positions (g-cell coordinates).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Human-readable net name.
    pub name: String,
    /// Pin positions; duplicates allowed (merged during tree construction).
    pub pins: Vec<Point>,
}

impl Net {
    /// Creates a net.
    pub fn new(name: impl Into<String>, pins: Vec<Point>) -> Self {
        Net {
            name: name.into(),
            pins,
        }
    }
}

/// A complete global-routing problem instance.
///
/// # Examples
///
/// ```
/// use dgr_grid::{CapacityBuilder, Design, GcellGrid, Net, Point};
///
/// let grid = GcellGrid::new(8, 8)?;
/// let cap = CapacityBuilder::uniform(&grid, 4.0).build(&grid)?;
/// let design = Design::new(
///     grid,
///     cap,
///     vec![Net::new("n0", vec![Point::new(0, 0), Point::new(5, 6)])],
///     3,
/// )?;
/// assert_eq!(design.num_nets(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    /// The g-cell grid.
    pub grid: GcellGrid,
    /// Per-edge routing capacities.
    pub capacity: CapacityModel,
    /// The nets to route.
    pub nets: Vec<Net>,
    /// Number of routable layers (`L` in Eq. 5's `√L` via weight).
    pub num_layers: u32,
}

impl Design {
    /// Assembles a design, validating that every pin is on the grid and
    /// the capacity model matches the grid.
    ///
    /// # Errors
    ///
    /// * [`GridError::CellOutOfBounds`] for a pin outside the grid,
    /// * [`GridError::LengthMismatch`] if `capacity` was built for a
    ///   different grid,
    /// * [`GridError::BadDimensions`] if `num_layers` is zero.
    pub fn new(
        grid: GcellGrid,
        capacity: CapacityModel,
        nets: Vec<Net>,
        num_layers: u32,
    ) -> Result<Self, GridError> {
        if capacity.num_edges() != grid.num_edges() {
            return Err(GridError::LengthMismatch {
                expected: grid.num_edges(),
                got: capacity.num_edges(),
            });
        }
        if num_layers == 0 {
            return Err(GridError::BadDimensions {
                width: grid.width(),
                height: 0,
            });
        }
        for net in &nets {
            for &p in &net.pins {
                if !grid.contains(p) {
                    return Err(GridError::CellOutOfBounds { x: p.x, y: p.y });
                }
            }
        }
        Ok(Design {
            grid,
            capacity,
            nets,
            num_layers,
        })
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Total pin count across nets.
    pub fn num_pins(&self) -> usize {
        self.nets.iter().map(|n| n.pins.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityBuilder;

    #[test]
    fn rejects_out_of_grid_pin() {
        let grid = GcellGrid::new(4, 4).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        let err = Design::new(grid, cap, vec![Net::new("bad", vec![Point::new(9, 9)])], 1);
        assert!(matches!(err, Err(GridError::CellOutOfBounds { .. })));
    }

    #[test]
    fn rejects_zero_layers() {
        let grid = GcellGrid::new(4, 4).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        assert!(Design::new(grid, cap, vec![], 0).is_err());
    }

    #[test]
    fn rejects_capacity_from_other_grid() {
        let g1 = GcellGrid::new(4, 4).unwrap();
        let g2 = GcellGrid::new(5, 5).unwrap();
        let cap = CapacityBuilder::uniform(&g2, 1.0).build(&g2).unwrap();
        assert!(matches!(
            Design::new(g1, cap, vec![], 1),
            Err(GridError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn counts_pins() {
        let grid = GcellGrid::new(6, 6).unwrap();
        let cap = CapacityBuilder::uniform(&grid, 1.0).build(&grid).unwrap();
        let d = Design::new(
            grid,
            cap,
            vec![
                Net::new("a", vec![Point::new(0, 0), Point::new(1, 1)]),
                Net::new(
                    "b",
                    vec![Point::new(2, 2), Point::new(3, 3), Point::new(4, 4)],
                ),
            ],
            5,
        )
        .unwrap();
        assert_eq!(d.num_nets(), 2);
        assert_eq!(d.num_pins(), 5);
    }
}
