//! Dense spatial congestion captures for the observability pipeline.
//!
//! [`CongestionSnapshot`] freezes the per-edge total demand (Eq. 2) and
//! the derived overflow (`max(0, demand − capacity)`) into separate
//! horizontal/vertical grids, row-major, matching the dense edge
//! numbering of [`GcellGrid`] (H edges first, V edges offset by
//! `num_h_edges()`). The split-by-direction layout is what heatmap
//! renderers and snapshot streams want: each grid is a rectangular
//! raster.
//!
//! Two capture paths exist because the pipeline has two demand
//! representations: [`CongestionSnapshot::capture`] reads a discrete
//! [`DemandMap`] (extracted solutions), while
//! [`CongestionSnapshot::from_dense`] reads the dense per-edge expected
//! demand vector (Eq. 10) that the relaxed model maintains during
//! training.

use crate::capacity::CapacityModel;
use crate::demand::DemandMap;
use crate::grid::GcellGrid;

/// Overflow threshold in tracks, matching
/// [`crate::metrics::OverflowStats::measure`]: float round-off from the
/// differentiable solver must not flip edge counts.
const EPS: f32 = 1e-4;

/// A frozen per-edge demand/overflow capture, split by edge direction.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionSnapshot {
    /// Horizontal-edge total demand, row-major (`(width−1)·height`).
    pub h_demand: Vec<f32>,
    /// Vertical-edge total demand, row-major (`width·(height−1)`).
    pub v_demand: Vec<f32>,
    /// Horizontal-edge overflow `max(0, demand − capacity)`.
    pub h_overflow: Vec<f32>,
    /// Vertical-edge overflow.
    pub v_overflow: Vec<f32>,
    /// Edges over capacity by more than the solver epsilon.
    pub overflowed_edges: usize,
    /// Sum of per-edge overflow.
    pub total_overflow: f32,
    /// Largest per-edge overflow.
    pub peak_overflow: f32,
}

impl CongestionSnapshot {
    /// Captures the current state of a discrete [`DemandMap`] (Eq. 2
    /// total demand: wire plus β-weighted endpoint via pressure).
    pub fn capture(grid: &GcellGrid, cap: &CapacityModel, demand: &DemandMap) -> Self {
        let dense: Vec<f32> = grid
            .edge_ids()
            .map(|e| demand.total(grid, cap, e))
            .collect();
        Self::from_dense(grid, cap, &dense).expect("dense vector has num_edges() entries")
    }

    /// Captures from a dense per-edge total-demand slice indexed by
    /// [`crate::EdgeId`] — the representation the differentiable solver
    /// maintains during training (Eq. 10 expected demand).
    ///
    /// # Errors
    ///
    /// Returns [`crate::GridError::LengthMismatch`] if `total_demand`
    /// does not have `grid.num_edges()` entries.
    pub fn from_dense(
        grid: &GcellGrid,
        cap: &CapacityModel,
        total_demand: &[f32],
    ) -> Result<Self, crate::GridError> {
        if total_demand.len() != grid.num_edges() {
            return Err(crate::GridError::LengthMismatch {
                expected: grid.num_edges(),
                got: total_demand.len(),
            });
        }
        let num_h = grid.num_h_edges();
        let mut snap = CongestionSnapshot {
            h_demand: total_demand[..num_h].to_vec(),
            v_demand: total_demand[num_h..].to_vec(),
            h_overflow: Vec::with_capacity(num_h),
            v_overflow: Vec::with_capacity(total_demand.len() - num_h),
            overflowed_edges: 0,
            total_overflow: 0.0,
            peak_overflow: 0.0,
        };
        for e in grid.edge_ids() {
            let over = total_demand[e.index()] - cap.capacity(e);
            let over = if over > EPS { over } else { 0.0 };
            if over > 0.0 {
                snap.overflowed_edges += 1;
                snap.total_overflow += over;
                snap.peak_overflow = snap.peak_overflow.max(over);
            }
            if e.index() < num_h {
                snap.h_overflow.push(over);
            } else {
                snap.v_overflow.push(over);
            }
        }
        Ok(snap)
    }
}

/// The run-invariant capacity rasters, split by direction
/// (`(h_capacity, v_capacity)`, row-major) — the snapshot-stream header
/// payload.
pub fn capacity_grids(grid: &GcellGrid, cap: &CapacityModel) -> (Vec<f32>, Vec<f32>) {
    let num_h = grid.num_h_edges();
    let mut h = Vec::with_capacity(num_h);
    let mut v = Vec::with_capacity(grid.num_v_edges());
    for e in grid.edge_ids() {
        if e.index() < num_h {
            h.push(cap.capacity(e));
        } else {
            v.push(cap.capacity(e));
        }
    }
    (h, v)
}

/// Dense per-edge overflow excess (`max(0, demand − capacity)`, zeroed
/// below the solver epsilon), indexed by [`crate::EdgeId`] — the input
/// of the per-net attribution pass.
pub fn edge_excess(grid: &GcellGrid, cap: &CapacityModel, demand: &DemandMap) -> Vec<f32> {
    grid.edge_ids()
        .map(|e| {
            let over = demand.total(grid, cap, e) - cap.capacity(e);
            if over > EPS {
                over
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityBuilder;
    use crate::metrics::OverflowStats;
    use crate::Point;

    fn setup(tracks: f32) -> (GcellGrid, CapacityModel, DemandMap) {
        let g = GcellGrid::new(4, 3).unwrap();
        let cap = CapacityBuilder::uniform(&g, tracks).build(&g).unwrap();
        let d = DemandMap::new(&g);
        (g, cap, d)
    }

    #[test]
    fn capture_splits_directions_row_major() {
        let (g, cap, mut d) = setup(1.0);
        // 2 wires across the h-edge (1,2)-(2,2); one wire on v-edge (0,0)-(0,1)
        for _ in 0..2 {
            d.add_segment(&g, Point::new(1, 2), Point::new(2, 2))
                .unwrap();
        }
        d.add_segment(&g, Point::new(0, 0), Point::new(0, 1))
            .unwrap();
        let snap = CongestionSnapshot::capture(&g, &cap, &d);
        assert_eq!(snap.h_demand.len(), g.num_h_edges());
        assert_eq!(snap.v_demand.len(), g.num_v_edges());
        // h-edge (1,2): row-major index y*(w−1)+x = 2*3+1 = 7
        assert_eq!(snap.h_demand[7], 2.0);
        assert_eq!(snap.h_overflow[7], 1.0);
        // v-edge (0,0): index y*w+x = 0
        assert_eq!(snap.v_demand[0], 1.0);
        assert_eq!(snap.v_overflow[0], 0.0);
        assert_eq!(snap.overflowed_edges, 1);
        assert_eq!(snap.total_overflow, 1.0);
        assert_eq!(snap.peak_overflow, 1.0);
    }

    #[test]
    fn capture_agrees_with_overflow_stats() {
        let (g, cap, mut d) = setup(1.0);
        for _ in 0..3 {
            d.add_segment(&g, Point::new(0, 0), Point::new(3, 0))
                .unwrap();
        }
        d.add_turn(&g, Point::new(3, 0)).unwrap();
        let snap = CongestionSnapshot::capture(&g, &cap, &d);
        let stats = OverflowStats::measure(&g, &cap, &d);
        assert_eq!(snap.overflowed_edges, stats.overflowed_edges);
        assert!((snap.total_overflow as f64 - stats.total_overflow).abs() < 1e-5);
        assert_eq!(snap.peak_overflow, stats.peak_overflow);
    }

    #[test]
    fn from_dense_validates_length() {
        let (g, cap, _) = setup(1.0);
        assert!(CongestionSnapshot::from_dense(&g, &cap, &[0.0; 3]).is_err());
        let ok = CongestionSnapshot::from_dense(&g, &cap, &vec![0.5; g.num_edges()]).unwrap();
        assert_eq!(ok.overflowed_edges, 0);
    }

    #[test]
    fn round_off_below_epsilon_is_not_overflow() {
        let (g, cap, _) = setup(1.0);
        let dense = vec![1.0 + 5e-5; g.num_edges()];
        let snap = CongestionSnapshot::from_dense(&g, &cap, &dense).unwrap();
        assert_eq!(snap.overflowed_edges, 0);
        assert!(snap.h_overflow.iter().all(|&o| o == 0.0));
    }

    #[test]
    fn capacity_grids_match_model() {
        let g = GcellGrid::new(3, 3).unwrap();
        let mut b = CapacityBuilder::uniform(&g, 2.0);
        b.set_tracks(g.h_edge(1, 0).unwrap(), 0.5);
        let cap = b.build(&g).unwrap();
        let (h, v) = capacity_grids(&g, &cap);
        assert_eq!(h.len(), g.num_h_edges());
        assert_eq!(v.len(), g.num_v_edges());
        assert_eq!(h[1], 0.5); // h-edge (1,0) is index 1
        assert!(v.iter().all(|&c| c == 2.0));
    }

    #[test]
    fn edge_excess_is_dense_and_thresholded() {
        let (g, cap, mut d) = setup(1.0);
        for _ in 0..2 {
            d.add_segment(&g, Point::new(0, 1), Point::new(1, 1))
                .unwrap();
        }
        let excess = edge_excess(&g, &cap, &d);
        assert_eq!(excess.len(), g.num_edges());
        let e = g.h_edge(0, 1).unwrap();
        assert_eq!(excess[e.index()], 1.0);
        assert_eq!(excess.iter().filter(|&&x| x > 0.0).count(), 1);
    }
}
