//! Overflow and congestion statistics used by every experiment.
//!
//! The DGR paper reports, per testcase:
//!
//! * the number of g-cell edges with overflow (`demand > capacity`),
//! * total overflow mass,
//! * peak per-edge overflow, and
//! * (Fig. 6) a *weighted overflow* score
//!   `10·n₁ + 1000·n₂ + 10000·peak`, where `n₁` counts overflowed nets
//!   after layer assignment and `n₂` counts overflowed g-cell edges.

use serde::{Deserialize, Serialize};

use crate::capacity::CapacityModel;
use crate::demand::DemandMap;
use crate::grid::GcellGrid;

/// Aggregate overflow statistics of a routing state.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverflowStats {
    /// Number of g-cell edges whose demand exceeds capacity.
    pub overflowed_edges: usize,
    /// Sum of `max(0, demand − capacity)` over all edges.
    pub total_overflow: f64,
    /// Largest per-edge overflow.
    pub peak_overflow: f32,
    /// Sum of demand over all edges (diagnostic).
    pub total_demand: f64,
}

impl OverflowStats {
    /// Computes statistics from a demand map against a capacity model.
    ///
    /// Overflow uses total demand per Eq. (2) (wire + β-weighted via
    /// pressure). An edge counts as overflowed when demand exceeds capacity
    /// by more than `1e-4` tracks, so that float round-off in the
    /// differentiable solver does not flip edge counts.
    pub fn measure(grid: &GcellGrid, cap: &CapacityModel, demand: &DemandMap) -> Self {
        const EPS: f32 = 1e-4;
        let mut stats = OverflowStats::default();
        for e in grid.edge_ids() {
            let d = demand.total(grid, cap, e);
            stats.total_demand += d as f64;
            let over = d - cap.capacity(e);
            if over > EPS {
                stats.overflowed_edges += 1;
                stats.total_overflow += over as f64;
                stats.peak_overflow = stats.peak_overflow.max(over);
            }
        }
        stats
    }

    /// The Fig. 6 *weighted overflow* score:
    /// `10·overflowed_nets + 1000·overflowed_edges + 10000·peak`.
    pub fn weighted(&self, overflowed_nets: usize) -> f64 {
        10.0 * overflowed_nets as f64
            + 1000.0 * self.overflowed_edges as f64
            + 10_000.0 * self.peak_overflow as f64
    }
}

/// A per-edge congestion snapshot for reporting and visualization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionReport {
    /// Demand divided by capacity per edge (`∞`-free: blocked edges with
    /// non-positive capacity report `f32::INFINITY` only when demand > 0).
    pub utilization: Vec<f32>,
    /// Aggregate statistics.
    pub stats: OverflowStats,
}

impl CongestionReport {
    /// Builds a report from the current demand state.
    pub fn measure(grid: &GcellGrid, cap: &CapacityModel, demand: &DemandMap) -> Self {
        let utilization = grid
            .edge_ids()
            .map(|e| {
                let d = demand.total(grid, cap, e);
                let c = cap.capacity(e);
                if c > 0.0 {
                    d / c
                } else if d > 0.0 {
                    f32::INFINITY
                } else {
                    0.0
                }
            })
            .collect();
        CongestionReport {
            utilization,
            stats: OverflowStats::measure(grid, cap, demand),
        }
    }

    /// Serializes per-edge utilization as CSV
    /// (`edge_id,x,y,dir,utilization`), ready for external plotting.
    pub fn to_csv(&self, grid: &GcellGrid) -> String {
        let mut out = String::from("edge_id,x,y,dir,utilization\n");
        for e in grid.edge_ids() {
            let (a, _) = grid.edge_endpoints(e);
            let dir = match grid.edge_dir(e) {
                crate::EdgeDir::Horizontal => 'H',
                crate::EdgeDir::Vertical => 'V',
            };
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.0,
                a.x,
                a.y,
                dir,
                self.utilization[e.index()]
            ));
        }
        out
    }

    /// Renders an ASCII heat map of horizontal-plus-vertical utilization
    /// per g-cell (max over incident edges), top row printed first.
    pub fn ascii_heatmap(&self, grid: &GcellGrid) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::new();
        for y in (0..grid.height() as i32).rev() {
            for x in 0..grid.width() as i32 {
                let p = crate::Point::new(x, y);
                let mut worst = 0.0f32;
                for e in grid.incident_edges(p) {
                    worst = worst.max(self.utilization[e.index()]);
                }
                let idx = if worst.is_infinite() {
                    RAMP.len() - 1
                } else {
                    (((worst.min(1.25)) / 1.25) * (RAMP.len() - 1) as f32).round() as usize
                };
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityBuilder;
    use crate::Point;

    fn setup(cap_tracks: f32) -> (GcellGrid, CapacityModel, DemandMap) {
        let g = GcellGrid::new(4, 4).unwrap();
        let cap = CapacityBuilder::uniform(&g, cap_tracks).build(&g).unwrap();
        let d = DemandMap::new(&g);
        (g, cap, d)
    }

    #[test]
    fn empty_demand_has_no_overflow() {
        let (g, cap, d) = setup(1.0);
        let s = OverflowStats::measure(&g, &cap, &d);
        assert_eq!(s.overflowed_edges, 0);
        assert_eq!(s.total_overflow, 0.0);
        assert_eq!(s.peak_overflow, 0.0);
    }

    #[test]
    fn overflow_counts_single_edge() {
        let (g, cap, mut d) = setup(1.0);
        // push 3 wires over one edge of capacity 1 → overflow 2
        for _ in 0..3 {
            d.add_segment(&g, Point::new(0, 0), Point::new(1, 0))
                .unwrap();
        }
        let s = OverflowStats::measure(&g, &cap, &d);
        assert_eq!(s.overflowed_edges, 1);
        assert!((s.total_overflow - 2.0).abs() < 1e-6);
        assert!((s.peak_overflow - 2.0).abs() < 1e-6);
    }

    #[test]
    fn demand_at_capacity_is_not_overflow() {
        let (g, cap, mut d) = setup(2.0);
        d.add_segment(&g, Point::new(0, 0), Point::new(1, 0))
            .unwrap();
        d.add_segment(&g, Point::new(0, 0), Point::new(1, 0))
            .unwrap();
        let s = OverflowStats::measure(&g, &cap, &d);
        assert_eq!(s.overflowed_edges, 0);
    }

    #[test]
    fn weighted_overflow_formula() {
        let s = OverflowStats {
            overflowed_edges: 3,
            total_overflow: 5.0,
            peak_overflow: 2.0,
            total_demand: 10.0,
        };
        assert_eq!(s.weighted(7), 10.0 * 7.0 + 1000.0 * 3.0 + 10_000.0 * 2.0);
    }

    #[test]
    fn report_utilization_and_heatmap() {
        let (g, cap, mut d) = setup(2.0);
        d.add_segment(&g, Point::new(0, 0), Point::new(3, 0))
            .unwrap();
        let r = CongestionReport::measure(&g, &cap, &d);
        let e = g.h_edge(0, 0).unwrap();
        assert!((r.utilization[e.index()] - 0.5).abs() < 1e-6);
        let map = r.ascii_heatmap(&g);
        assert_eq!(map.lines().count(), 4);
        assert_eq!(map.lines().next().unwrap().len(), 4);
    }

    #[test]
    fn csv_export_has_one_row_per_edge() {
        let (g, cap, mut d) = setup(2.0);
        d.add_segment(&g, Point::new(0, 0), Point::new(1, 0))
            .unwrap();
        let r = CongestionReport::measure(&g, &cap, &d);
        let csv = r.to_csv(&g);
        assert_eq!(csv.lines().count(), g.num_edges() + 1);
        assert!(csv.starts_with("edge_id,x,y,dir,utilization\n"));
        assert!(csv.contains(",H,"));
        assert!(csv.contains(",V,"));
    }

    #[test]
    fn blocked_edge_with_demand_is_infinite_utilization() {
        let g = GcellGrid::new(3, 3).unwrap();
        let mut b = CapacityBuilder::uniform(&g, 1.0);
        let e = g.h_edge(0, 0).unwrap();
        b.set_tracks(e, 0.0);
        let cap = b.build(&g).unwrap();
        let mut d = DemandMap::new(&g);
        d.add_segment(&g, Point::new(0, 0), Point::new(1, 0))
            .unwrap();
        let r = CongestionReport::measure(&g, &cap, &d);
        assert!(r.utilization[e.index()].is_infinite());
        assert_eq!(r.stats.overflowed_edges, 1);
    }
}
