//! Routing capacity model — Eq. (1) of the DGR paper.
//!
//! The usable capacity of a g-cell edge `e` is the raw track count reduced
//! by an estimate of the resources consumed by pin connections and purely
//! local nets inside the adjacent g-cells:
//!
//! ```text
//! cap_e = tracks_e − β_v · pin_density_v − local_net_e
//! ```
//!
//! The paper attributes the pin-density and local-net penalty to "the g-cell
//! v which is connected to e". An edge touches *two* g-cells, so this
//! implementation splits the penalty evenly between the two endpoints —
//! a symmetric resolution of the ambiguity that keeps the model smooth for
//! the differentiable solver. The same convention is used for via demand in
//! [`crate::demand`].

use serde::{Deserialize, Serialize};

use crate::geom::Point;
use crate::grid::GcellGrid;
use crate::ids::EdgeId;
use crate::GridError;

/// Immutable per-edge routing capacities.
///
/// Build one with [`CapacityBuilder`]; the finished model also retains the
/// per-cell `β` weights because via demand (Eq. 2) reuses them.
///
/// # Examples
///
/// ```
/// use dgr_grid::{CapacityBuilder, GcellGrid, Point};
///
/// let grid = GcellGrid::new(4, 4)?;
/// let cap = CapacityBuilder::uniform(&grid, 10.0)
///     .add_pins(&grid, Point::new(1, 1), 4)?
///     .build(&grid)?;
/// // Pin penalty is split over the four edges incident to (1, 1).
/// let e = grid.h_edge(1, 1)?;
/// assert!(cap.capacity(e) < 10.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    cap: Vec<f32>,
    beta: Vec<f32>,
}

impl CapacityModel {
    /// Reassembles a model from raw per-edge capacities and per-cell `β`
    /// weights (e.g. when parsing a serialized design).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::LengthMismatch`] if either buffer does not
    /// match `grid`.
    pub fn from_parts(grid: &GcellGrid, cap: Vec<f32>, beta: Vec<f32>) -> Result<Self, GridError> {
        if cap.len() != grid.num_edges() {
            return Err(GridError::LengthMismatch {
                expected: grid.num_edges(),
                got: cap.len(),
            });
        }
        if beta.len() != grid.num_cells() {
            return Err(GridError::LengthMismatch {
                expected: grid.num_cells(),
                got: beta.len(),
            });
        }
        Ok(CapacityModel { cap, beta })
    }

    /// Capacity of edge `e`, in tracks. May be fractional or negative
    /// (heavily blocked edges).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn capacity(&self, e: EdgeId) -> f32 {
        self.cap[e.index()]
    }

    /// Per-edge capacities as a dense slice indexed by [`EdgeId`].
    pub fn as_slice(&self) -> &[f32] {
        &self.cap
    }

    /// The `β` weight of the g-cell with the given dense id (see Eq. 1/2).
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of range.
    pub fn beta(&self, cell: crate::ids::GcellId) -> f32 {
        self.beta[cell.index()]
    }

    /// Per-cell `β` weights as a dense slice indexed by [`crate::GcellId`].
    pub fn beta_slice(&self) -> &[f32] {
        &self.beta
    }

    /// Number of edges covered by the model.
    pub fn num_edges(&self) -> usize {
        self.cap.len()
    }

    /// Total routing capacity across all edges.
    pub fn total(&self) -> f64 {
        self.cap.iter().map(|&c| c as f64).sum()
    }
}

/// Incremental builder for a [`CapacityModel`].
///
/// Follows the non-consuming builder pattern: configuration methods take
/// `&mut self` and [`CapacityBuilder::build`] borrows the builder, so it can
/// be reused to produce capacity variants (useful in capacity-sweep
/// experiments).
#[derive(Debug, Clone)]
pub struct CapacityBuilder {
    tracks: Vec<f32>,
    pin_count: Vec<u32>,
    local_nets: Vec<u32>,
    beta: Vec<f32>,
}

/// Default `β` weight when none is configured.
///
/// CUGR2 derives `β` from the LEF minimum wire widths; without LEF data we
/// use a fixed unit weight, which is the value the synthetic benchmarks
/// assume.
pub const DEFAULT_BETA: f32 = 1.0;

impl CapacityBuilder {
    /// Starts a builder with every edge carrying `tracks` tracks.
    pub fn uniform(grid: &GcellGrid, tracks: f32) -> Self {
        CapacityBuilder {
            tracks: vec![tracks; grid.num_edges()],
            pin_count: vec![0; grid.num_cells()],
            local_nets: vec![0; grid.num_cells()],
            beta: vec![DEFAULT_BETA; grid.num_cells()],
        }
    }

    /// Starts a builder from explicit per-edge track counts.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::LengthMismatch`] if `tracks.len()` differs from
    /// `grid.num_edges()`.
    pub fn from_tracks(grid: &GcellGrid, tracks: Vec<f32>) -> Result<Self, GridError> {
        if tracks.len() != grid.num_edges() {
            return Err(GridError::LengthMismatch {
                expected: grid.num_edges(),
                got: tracks.len(),
            });
        }
        Ok(CapacityBuilder {
            tracks,
            pin_count: vec![0; grid.num_cells()],
            local_nets: vec![0; grid.num_cells()],
            beta: vec![DEFAULT_BETA; grid.num_cells()],
        })
    }

    /// Overrides the track count of a single edge (e.g. to model blockages).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn set_tracks(&mut self, e: EdgeId, tracks: f32) -> &mut Self {
        self.tracks[e.index()] = tracks;
        self
    }

    /// Scales the track count of every edge whose *lower* endpoint lies in
    /// `rect` — the primitive used to carve congestion hotspots.
    pub fn scale_region(&mut self, grid: &GcellGrid, rect: crate::Rect, factor: f32) -> &mut Self {
        for e in grid.edge_ids() {
            let (a, _) = grid.edge_endpoints(e);
            if rect.contains(a) {
                self.tracks[e.index()] *= factor;
            }
        }
        self
    }

    /// Registers `count` physical pins in the g-cell at `p` (Eq. 1's
    /// `pin_density_v`).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::CellOutOfBounds`] if `p` is outside the grid.
    pub fn add_pins(mut self, grid: &GcellGrid, p: Point, count: u32) -> Result<Self, GridError> {
        let id = grid.cell_id(p)?;
        self.pin_count[id.index()] += count;
        Ok(self)
    }

    /// Registers `count` local nets (nets fully contained in one g-cell) at
    /// `p` (Eq. 1's `local_net` term).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::CellOutOfBounds`] if `p` is outside the grid.
    pub fn add_local_nets(
        mut self,
        grid: &GcellGrid,
        p: Point,
        count: u32,
    ) -> Result<Self, GridError> {
        let id = grid.cell_id(p)?;
        self.local_nets[id.index()] += count;
        Ok(self)
    }

    /// Sets the `β` weight of the g-cell at `p`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::CellOutOfBounds`] if `p` is outside the grid.
    pub fn set_beta(mut self, grid: &GcellGrid, p: Point, beta: f32) -> Result<Self, GridError> {
        let id = grid.cell_id(p)?;
        self.beta[id.index()] = beta;
        Ok(self)
    }

    /// Finalizes the model: applies Eq. (1) with the pin/local-net penalty
    /// of each g-cell split evenly across its incident edges.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::LengthMismatch`] if the builder was created for
    /// a different grid.
    pub fn build(&self, grid: &GcellGrid) -> Result<CapacityModel, GridError> {
        if self.tracks.len() != grid.num_edges() {
            return Err(GridError::LengthMismatch {
                expected: grid.num_edges(),
                got: self.tracks.len(),
            });
        }
        let mut cap = self.tracks.clone();
        for cell in 0..grid.num_cells() {
            let p = grid.cell_point(crate::ids::GcellId::new(cell as u32));
            let penalty =
                self.beta[cell] * self.pin_count[cell] as f32 + self.local_nets[cell] as f32;
            if penalty == 0.0 {
                continue;
            }
            let incident: Vec<EdgeId> = grid.incident_edges(p).collect();
            let share = penalty / incident.len() as f32;
            for e in incident {
                cap[e.index()] -= share;
            }
        }
        Ok(CapacityModel {
            cap,
            beta: self.beta.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn grid() -> GcellGrid {
        GcellGrid::new(4, 4).unwrap()
    }

    #[test]
    fn uniform_capacity_without_pins() {
        let g = grid();
        let cap = CapacityBuilder::uniform(&g, 8.0).build(&g).unwrap();
        for e in g.edge_ids() {
            assert_eq!(cap.capacity(e), 8.0);
        }
        assert_eq!(cap.num_edges(), g.num_edges());
    }

    #[test]
    fn pin_penalty_splits_over_incident_edges() {
        let g = grid();
        let cap = CapacityBuilder::uniform(&g, 8.0)
            .add_pins(&g, Point::new(1, 1), 4)
            .unwrap()
            .build(&g)
            .unwrap();
        // interior cell: 4 incident edges, each loses 4*β/4 = 1.0
        for e in g.incident_edges(Point::new(1, 1)) {
            assert_eq!(cap.capacity(e), 7.0);
        }
        // a far edge is untouched
        let far = g.h_edge(2, 3).unwrap();
        assert_eq!(cap.capacity(far), 8.0);
    }

    #[test]
    fn corner_cell_penalty_splits_over_two_edges() {
        let g = grid();
        let cap = CapacityBuilder::uniform(&g, 8.0)
            .add_pins(&g, Point::new(0, 0), 2)
            .unwrap()
            .build(&g)
            .unwrap();
        for e in g.incident_edges(Point::new(0, 0)) {
            assert_eq!(cap.capacity(e), 7.0);
        }
    }

    #[test]
    fn local_nets_reduce_capacity_without_beta() {
        let g = grid();
        let cap = CapacityBuilder::uniform(&g, 8.0)
            .set_beta(&g, Point::new(1, 1), 2.0)
            .unwrap()
            .add_local_nets(&g, Point::new(1, 1), 4)
            .unwrap()
            .build(&g)
            .unwrap();
        // local nets are not scaled by β: 4 / 4 edges = 1.0 each
        for e in g.incident_edges(Point::new(1, 1)) {
            assert_eq!(cap.capacity(e), 7.0);
        }
    }

    #[test]
    fn beta_scales_pin_penalty() {
        let g = grid();
        let cap = CapacityBuilder::uniform(&g, 8.0)
            .set_beta(&g, Point::new(2, 2), 0.5)
            .unwrap()
            .add_pins(&g, Point::new(2, 2), 4)
            .unwrap()
            .build(&g)
            .unwrap();
        for e in g.incident_edges(Point::new(2, 2)) {
            assert_eq!(cap.capacity(e), 7.5);
        }
        assert_eq!(cap.beta(g.cell_id(Point::new(2, 2)).unwrap()), 0.5);
    }

    #[test]
    fn scale_region_halves_hotspot() {
        let g = grid();
        let mut b = CapacityBuilder::uniform(&g, 8.0);
        b.scale_region(&g, Rect::new(Point::new(0, 0), Point::new(1, 1)), 0.5);
        let cap = b.build(&g).unwrap();
        assert_eq!(cap.capacity(g.h_edge(0, 0).unwrap()), 4.0);
        assert_eq!(cap.capacity(g.h_edge(2, 3).unwrap()), 8.0);
    }

    #[test]
    fn from_tracks_validates_length() {
        let g = grid();
        assert!(matches!(
            CapacityBuilder::from_tracks(&g, vec![1.0; 3]),
            Err(GridError::LengthMismatch { .. })
        ));
        assert!(CapacityBuilder::from_tracks(&g, vec![1.0; g.num_edges()]).is_ok());
    }

    #[test]
    fn total_sums_all_edges() {
        let g = grid();
        let cap = CapacityBuilder::uniform(&g, 2.0).build(&g).unwrap();
        assert_eq!(cap.total(), 2.0 * g.num_edges() as f64);
    }
}
