//! Dense, typed identifiers for grid entities.
//!
//! All arenas in this workspace are indexed by `u32`-backed newtypes so that
//! a g-cell id can never be confused with an edge id or a net id at compile
//! time ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw dense index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw dense index, for arena addressing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

dense_id! {
    /// Identifier of a g-cell in row-major order (`y * width + x`).
    GcellId
}

dense_id! {
    /// Identifier of a g-cell edge.
    ///
    /// Horizontal edges are numbered first (row-major over `(width-1) ×
    /// height` positions), vertical edges follow (row-major over `width ×
    /// (height-1)` positions). See [`crate::GcellGrid`].
    EdgeId
}

dense_id! {
    /// Identifier of a net in the input design.
    NetId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let id = EdgeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(EdgeId::from(42u32), id);
    }

    #[test]
    fn display_is_nonempty_and_typed() {
        assert_eq!(GcellId::new(7).to_string(), "GcellId#7");
        assert_eq!(NetId::new(0).to_string(), "NetId#0");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(NetId::new(1) < NetId::new(2));
    }
}
