//! Integer geometry on the g-cell grid.

use serde::{Deserialize, Serialize};

/// A g-cell coordinate.
///
/// Coordinates are signed so intermediate arithmetic (e.g. bounding-box
/// inflation near the grid border) cannot underflow; valid grid positions are
/// always non-negative.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
///
/// let a = Point::new(2, 3);
/// let b = Point::new(5, 7);
/// assert_eq!(a.manhattan_distance(b), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal g-cell index.
    pub x: i32,
    /// Vertical g-cell index.
    pub y: i32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Manhattan (rectilinear) distance to `other`, in g-cell units.
    pub fn manhattan_distance(self, other: Point) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Returns `true` when the two points share an x or y coordinate, i.e.
    /// they can be connected by a single straight wire segment.
    pub fn is_aligned_with(self, other: Point) -> bool {
        self.x == other.x || self.y == other.y
    }

    /// The two L-shape corner points between `self` and `other`.
    ///
    /// For aligned points both corners coincide with one of the endpoints.
    pub fn l_corners(self, other: Point) -> (Point, Point) {
        (Point::new(self.x, other.y), Point::new(other.x, self.y))
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned, inclusive rectangle of g-cells.
///
/// # Examples
///
/// ```
/// use dgr_grid::{Point, Rect};
///
/// let r = Rect::bounding(&[Point::new(1, 5), Point::new(4, 2)]);
/// assert_eq!(r, Rect::new(Point::new(1, 2), Point::new(4, 5)));
/// assert!(r.contains(Point::new(2, 3)));
/// assert_eq!(r.half_perimeter(), 6);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Rect {
    /// Lower-left corner (inclusive).
    pub lo: Point,
    /// Upper-right corner (inclusive).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo` is not component-wise `<= hi`.
    pub fn new(lo: Point, hi: Point) -> Self {
        debug_assert!(lo.x <= hi.x && lo.y <= hi.y, "rect corners out of order");
        Rect { lo, hi }
    }

    /// The smallest rectangle containing every point in `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn bounding(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "bounding box of zero points");
        let mut lo = points[0];
        let mut hi = points[0];
        for p in &points[1..] {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        }
        Rect { lo, hi }
    }

    /// Whether `p` lies inside the rectangle (borders included).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Width in g-cells (number of columns spanned).
    pub fn width(&self) -> u32 {
        self.hi.x.abs_diff(self.lo.x) + 1
    }

    /// Height in g-cells (number of rows spanned).
    pub fn height(&self) -> u32 {
        self.hi.y.abs_diff(self.lo.y) + 1
    }

    /// Half-perimeter wirelength (HPWL) of the rectangle in edge units.
    pub fn half_perimeter(&self) -> u32 {
        self.hi.x.abs_diff(self.lo.x) + self.hi.y.abs_diff(self.lo.y)
    }

    /// Grows the rectangle by `margin` on every side, clamped to `bounds`.
    pub fn inflate_clamped(&self, margin: i32, bounds: Rect) -> Rect {
        Rect {
            lo: Point::new(
                (self.lo.x - margin).max(bounds.lo.x),
                (self.lo.y - margin).max(bounds.lo.y),
            ),
            hi: Point::new(
                (self.hi.x + margin).min(bounds.hi.x),
                (self.hi.y + margin).min(bounds.hi.y),
            ),
        }
    }

    /// Iterates over every g-cell position inside the rectangle, row-major.
    pub fn cells(&self) -> impl Iterator<Item = Point> + '_ {
        let (lo, hi) = (self.lo, self.hi);
        (lo.y..=hi.y).flat_map(move |y| (lo.x..=hi.x).map(move |x| Point::new(x, y)))
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(-3, 4);
        let b = Point::new(10, -2);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(b), 13 + 6);
    }

    #[test]
    fn manhattan_distance_to_self_is_zero() {
        let p = Point::new(7, 7);
        assert_eq!(p.manhattan_distance(p), 0);
    }

    #[test]
    fn alignment() {
        assert!(Point::new(1, 5).is_aligned_with(Point::new(1, 9)));
        assert!(Point::new(2, 3).is_aligned_with(Point::new(8, 3)));
        assert!(!Point::new(0, 0).is_aligned_with(Point::new(1, 1)));
    }

    #[test]
    fn l_corners_of_diagonal_pair() {
        let (c1, c2) = Point::new(0, 0).l_corners(Point::new(3, 4));
        assert_eq!(c1, Point::new(0, 4));
        assert_eq!(c2, Point::new(3, 0));
    }

    #[test]
    fn bounding_box_of_scattered_points() {
        let r = Rect::bounding(&[
            Point::new(5, 1),
            Point::new(2, 8),
            Point::new(9, 4),
            Point::new(3, 3),
        ]);
        assert_eq!(r.lo, Point::new(2, 1));
        assert_eq!(r.hi, Point::new(9, 8));
        assert_eq!(r.width(), 8);
        assert_eq!(r.height(), 8);
    }

    #[test]
    fn rect_contains_borders() {
        let r = Rect::new(Point::new(1, 1), Point::new(4, 4));
        assert!(r.contains(Point::new(1, 4)));
        assert!(r.contains(Point::new(4, 1)));
        assert!(!r.contains(Point::new(0, 2)));
        assert!(!r.contains(Point::new(2, 5)));
    }

    #[test]
    fn inflate_clamps_to_bounds() {
        let bounds = Rect::new(Point::new(0, 0), Point::new(9, 9));
        let r = Rect::new(Point::new(1, 8), Point::new(3, 9));
        let g = r.inflate_clamped(2, bounds);
        assert_eq!(g, Rect::new(Point::new(0, 6), Point::new(5, 9)));
    }

    #[test]
    fn cells_enumerates_row_major() {
        let r = Rect::new(Point::new(1, 1), Point::new(2, 2));
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(
            cells,
            vec![
                Point::new(1, 1),
                Point::new(2, 1),
                Point::new(1, 2),
                Point::new(2, 2)
            ]
        );
    }

    #[test]
    fn half_perimeter_single_cell_is_zero() {
        let r = Rect::new(Point::new(3, 3), Point::new(3, 3));
        assert_eq!(r.half_perimeter(), 0);
        assert_eq!(r.width(), 1);
    }
}
