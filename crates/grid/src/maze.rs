//! Dijkstra maze routing on the g-cell grid.
//!
//! The engine used by every sequential baseline and by the congestion
//! refinement pass: single-pair shortest path under an arbitrary per-edge
//! cost, with an optional turn penalty (states are (cell, incoming axis)
//! pairs so turns are charged exactly).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::geom::{Point, Rect};
use crate::grid::GcellGrid;
use crate::ids::EdgeId;

/// Search options for [`maze_route`].
#[derive(Debug, Clone, Copy)]
pub struct MazeConfig {
    /// Restrict the search to this rectangle (default: whole grid).
    /// The rectangle is automatically inflated to contain both endpoints.
    pub bounds: Option<Rect>,
    /// Extra cost charged every time the path changes axis.
    pub turn_cost: f32,
}

impl Default for MazeConfig {
    fn default() -> Self {
        MazeConfig {
            bounds: None,
            turn_cost: 0.5,
        }
    }
}

#[derive(PartialEq)]
struct HeapKey(f32);

impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Finds the cheapest rectilinear path from `from` to `to` under
/// `edge_cost`, returning the corner polyline (both endpoints included),
/// or `None` when no path exists inside the search bounds (e.g. all edges
/// are `f32::INFINITY`).
///
/// # Examples
///
/// ```
/// use dgr_grid::maze::{maze_route, MazeConfig};
/// use dgr_grid::{GcellGrid, Point};
///
/// let grid = GcellGrid::new(8, 8)?;
/// let path = maze_route(
///     &grid,
///     Point::new(0, 0),
///     Point::new(5, 3),
///     |_| 1.0,
///     &MazeConfig::default(),
/// )
/// .expect("uniform grid is connected");
/// assert_eq!(path.first(), Some(&Point::new(0, 0)));
/// assert_eq!(path.last(), Some(&Point::new(5, 3)));
/// # Ok::<(), dgr_grid::GridError>(())
/// ```
pub fn maze_route<F>(
    grid: &GcellGrid,
    from: Point,
    to: Point,
    edge_cost: F,
    cfg: &MazeConfig,
) -> Option<Vec<Point>>
where
    F: Fn(EdgeId) -> f32,
{
    if !grid.contains(from) || !grid.contains(to) {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let bounds = {
        let b = cfg
            .bounds
            .unwrap_or_else(|| grid.bounds())
            .inflate_clamped(0, grid.bounds());
        // make sure both terminals are inside
        Rect::new(
            Point::new(b.lo.x.min(from.x).min(to.x), b.lo.y.min(from.y).min(to.y)),
            Point::new(b.hi.x.max(from.x).max(to.x), b.hi.y.max(from.y).max(to.y)),
        )
    };
    let w = bounds.width() as i32;
    let h = bounds.height() as i32;
    let n = (w * h) as usize;
    let local = |p: Point| -> usize { ((p.y - bounds.lo.y) * w + (p.x - bounds.lo.x)) as usize };

    // state = local cell × incoming axis (0 horizontal, 1 vertical)
    let mut dist = vec![f32::INFINITY; n * 2];
    let mut prev: Vec<u32> = vec![u32::MAX; n * 2];
    let mut heap = BinaryHeap::new();
    for axis in 0..2 {
        dist[local(from) * 2 + axis] = 0.0;
        heap.push(Reverse((HeapKey(0.0), (local(from) * 2 + axis) as u32)));
    }

    const DIRS: [(i32, i32, usize); 4] = [(1, 0, 0), (-1, 0, 0), (0, 1, 1), (0, -1, 1)];
    let mut goal_state = None;
    while let Some(Reverse((HeapKey(d), state))) = heap.pop() {
        let state = state as usize;
        if d > dist[state] {
            continue;
        }
        let cell = state / 2;
        let axis = state % 2;
        let p = Point::new(
            bounds.lo.x + (cell as i32 % w),
            bounds.lo.y + (cell as i32 / w),
        );
        if p == to {
            goal_state = Some(state);
            break;
        }
        for &(dx, dy, new_axis) in &DIRS {
            let q = Point::new(p.x + dx, p.y + dy);
            if !bounds.contains(q) {
                continue;
            }
            let e = grid.edge_between(p, q).expect("neighbor in grid");
            let step = edge_cost(e);
            if !step.is_finite() {
                continue;
            }
            let turn = if axis != new_axis && d > 0.0 {
                cfg.turn_cost
            } else {
                0.0
            };
            let nd = d + step + turn;
            let ns = local(q) * 2 + new_axis;
            if nd < dist[ns] {
                dist[ns] = nd;
                prev[ns] = state as u32;
                heap.push(Reverse((HeapKey(nd), ns as u32)));
            }
        }
    }

    let mut state = goal_state?;
    let mut cells = vec![to];
    while prev[state] != u32::MAX {
        state = prev[state] as usize;
        let cell = state / 2;
        let p = Point::new(
            bounds.lo.x + (cell as i32 % w),
            bounds.lo.y + (cell as i32 / w),
        );
        cells.push(p);
    }
    cells.reverse();
    debug_assert_eq!(cells[0], from);
    Some(compress_corners(&cells))
}

/// Collapses a unit-step cell sequence into its corner polyline.
pub fn compress_corners(cells: &[Point]) -> Vec<Point> {
    if cells.len() <= 2 {
        return cells.to_vec();
    }
    let mut out = vec![cells[0]];
    for i in 1..cells.len() - 1 {
        let a = *out.last().expect("non-empty");
        let b = cells[i];
        let c = cells[i + 1];
        let collinear = (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y);
        if !collinear {
            out.push(b);
        }
    }
    out.push(*cells.last().expect("non-empty"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GcellGrid {
        GcellGrid::new(10, 10).unwrap()
    }

    #[test]
    fn uniform_cost_gives_manhattan_length() {
        let g = grid();
        let path = maze_route(
            &g,
            Point::new(1, 1),
            Point::new(7, 5),
            |_| 1.0,
            &MazeConfig::default(),
        )
        .unwrap();
        let len: u32 = path.windows(2).map(|w| w[0].manhattan_distance(w[1])).sum();
        assert_eq!(len, 10);
        // with a turn penalty the path should be an L (one turn)
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn detours_around_blocked_wall() {
        let g = grid();
        // wall of infinite cost on column x=4 except y=9
        let cost = |e: EdgeId| {
            let (a, b) = g.edge_endpoints(e);
            let crosses = (a.x == 4 && b.x == 5) || (a.x == 3 && b.x == 4);
            if crosses && a.y < 9 {
                f32::INFINITY
            } else {
                1.0
            }
        };
        let path = maze_route(
            &g,
            Point::new(0, 0),
            Point::new(9, 0),
            cost,
            &MazeConfig {
                bounds: None,
                turn_cost: 0.0,
            },
        )
        .unwrap();
        let len: u32 = path.windows(2).map(|w| w[0].manhattan_distance(w[1])).sum();
        assert!(len >= 9 + 18, "must detour through y=9, got {len}");
        // verify the polyline is rectilinear and connected
        for w in path.windows(2) {
            assert!(w[0].is_aligned_with(w[1]));
        }
    }

    #[test]
    fn fully_blocked_is_none() {
        let g = grid();
        let path = maze_route(
            &g,
            Point::new(0, 0),
            Point::new(9, 9),
            |_| f32::INFINITY,
            &MazeConfig::default(),
        );
        assert!(path.is_none());
    }

    #[test]
    fn trivial_and_degenerate_cases() {
        let g = grid();
        let p = maze_route(
            &g,
            Point::new(3, 3),
            Point::new(3, 3),
            |_| 1.0,
            &MazeConfig::default(),
        )
        .unwrap();
        assert_eq!(p, vec![Point::new(3, 3)]);
        assert!(maze_route(
            &g,
            Point::new(0, 0),
            Point::new(50, 50),
            |_| 1.0,
            &MazeConfig::default()
        )
        .is_none());
    }

    #[test]
    fn bounds_inflate_to_contain_terminals() {
        let g = grid();
        let tight = Rect::new(Point::new(4, 4), Point::new(5, 5));
        let path = maze_route(
            &g,
            Point::new(2, 2),
            Point::new(7, 7),
            |_| 1.0,
            &MazeConfig {
                bounds: Some(tight),
                turn_cost: 0.0,
            },
        )
        .unwrap();
        assert_eq!(path.first(), Some(&Point::new(2, 2)));
        assert_eq!(path.last(), Some(&Point::new(7, 7)));
    }

    #[test]
    fn turn_penalty_prefers_fewer_corners() {
        let g = grid();
        // cheap zig-zag bait: make straight edges slightly pricier
        let cost = |_e: EdgeId| 1.0;
        let no_penalty = maze_route(
            &g,
            Point::new(0, 0),
            Point::new(5, 5),
            cost,
            &MazeConfig {
                bounds: None,
                turn_cost: 0.0,
            },
        )
        .unwrap();
        let with_penalty = maze_route(
            &g,
            Point::new(0, 0),
            Point::new(5, 5),
            cost,
            &MazeConfig {
                bounds: None,
                turn_cost: 2.0,
            },
        )
        .unwrap();
        assert!(with_penalty.len() <= no_penalty.len());
        assert_eq!(with_penalty.len(), 3); // an L
    }

    #[test]
    fn compress_corners_removes_collinear_points() {
        let cells = vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(2, 2),
        ];
        assert_eq!(
            compress_corners(&cells),
            vec![Point::new(0, 0), Point::new(2, 0), Point::new(2, 2)]
        );
    }
}
