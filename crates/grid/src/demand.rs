//! Accumulated routing demand — Eq. (2) of the DGR paper.
//!
//! Demand on a g-cell edge has two components:
//!
//! * **wire demand**: one unit for every selected 2-pin path that routes
//!   through the edge, and
//! * **via demand**: `β_v` for every selected path with a turning point at a
//!   g-cell `v` adjacent to the edge, split evenly between the two endpoint
//!   cells of the edge (the same symmetric convention as
//!   [`crate::capacity`]).

use serde::{Deserialize, Serialize};

use crate::capacity::CapacityModel;
use crate::geom::Point;
use crate::grid::GcellGrid;
use crate::ids::EdgeId;

/// Mutable per-edge demand accumulator plus per-cell via pressure.
///
/// # Examples
///
/// ```
/// use dgr_grid::{DemandMap, GcellGrid, Point};
///
/// let grid = GcellGrid::new(5, 5)?;
/// let mut demand = DemandMap::new(&grid);
/// // an L-path from (0,0) to (2,2) turning at (2,0)
/// demand.add_segment(&grid, Point::new(0, 0), Point::new(2, 0))?;
/// demand.add_segment(&grid, Point::new(2, 0), Point::new(2, 2))?;
/// demand.add_turn(&grid, Point::new(2, 0))?;
/// assert_eq!(demand.wire(grid.h_edge(0, 0)?), 1.0);
/// # Ok::<(), dgr_grid::GridError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandMap {
    wire: Vec<f32>,
    via_pressure: Vec<f32>,
}

impl DemandMap {
    /// Creates an empty demand map for `grid`.
    pub fn new(grid: &GcellGrid) -> Self {
        DemandMap {
            wire: vec![0.0; grid.num_edges()],
            via_pressure: vec![0.0; grid.num_cells()],
        }
    }

    /// Creates a demand map from precomputed dense buffers.
    ///
    /// Used by the differentiable solver to interpret its scatter output.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GridError::LengthMismatch`] on wrong buffer sizes.
    pub fn from_parts(
        grid: &GcellGrid,
        wire: Vec<f32>,
        via_pressure: Vec<f32>,
    ) -> Result<Self, crate::GridError> {
        if wire.len() != grid.num_edges() {
            return Err(crate::GridError::LengthMismatch {
                expected: grid.num_edges(),
                got: wire.len(),
            });
        }
        if via_pressure.len() != grid.num_cells() {
            return Err(crate::GridError::LengthMismatch {
                expected: grid.num_cells(),
                got: via_pressure.len(),
            });
        }
        Ok(DemandMap { wire, via_pressure })
    }

    /// Wire demand of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn wire(&self, e: EdgeId) -> f32 {
        self.wire[e.index()]
    }

    /// Adds `amount` wire demand on a single edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn add_wire(&mut self, e: EdgeId, amount: f32) {
        self.wire[e.index()] += amount;
    }

    /// Adds one unit of wire demand along the straight segment `a`..`b`.
    ///
    /// # Errors
    ///
    /// Propagates alignment/bounds errors from the grid.
    pub fn add_segment(
        &mut self,
        grid: &GcellGrid,
        a: Point,
        b: Point,
    ) -> Result<(), crate::GridError> {
        let mut edges = Vec::new();
        grid.push_segment_edges(a, b, &mut edges)?;
        for e in edges {
            self.wire[e.index()] += 1.0;
        }
        Ok(())
    }

    /// Removes one unit of wire demand along the straight segment `a`..`b`
    /// (rip-up).
    ///
    /// # Errors
    ///
    /// Propagates alignment/bounds errors from the grid.
    pub fn remove_segment(
        &mut self,
        grid: &GcellGrid,
        a: Point,
        b: Point,
    ) -> Result<(), crate::GridError> {
        let mut edges = Vec::new();
        grid.push_segment_edges(a, b, &mut edges)?;
        for e in edges {
            self.wire[e.index()] -= 1.0;
        }
        Ok(())
    }

    /// Registers one turning point (via pressure) at `p`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GridError::CellOutOfBounds`] if `p` is outside.
    pub fn add_turn(&mut self, grid: &GcellGrid, p: Point) -> Result<(), crate::GridError> {
        let id = grid.cell_id(p)?;
        self.via_pressure[id.index()] += 1.0;
        Ok(())
    }

    /// Removes one turning point at `p` (rip-up).
    ///
    /// # Errors
    ///
    /// Returns [`crate::GridError::CellOutOfBounds`] if `p` is outside.
    pub fn remove_turn(&mut self, grid: &GcellGrid, p: Point) -> Result<(), crate::GridError> {
        let id = grid.cell_id(p)?;
        self.via_pressure[id.index()] -= 1.0;
        Ok(())
    }

    /// Total demand of edge `e` per Eq. (2): wire demand plus the
    /// β-weighted via pressure of the two endpoint cells (half each).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn total(&self, grid: &GcellGrid, cap: &CapacityModel, e: EdgeId) -> f32 {
        let (a, b) = grid.edge_endpoints(e);
        let ia = grid.cell_id(a).expect("endpoint in bounds");
        let ib = grid.cell_id(b).expect("endpoint in bounds");
        self.wire[e.index()]
            + 0.5 * cap.beta(ia) * self.via_pressure[ia.index()]
            + 0.5 * cap.beta(ib) * self.via_pressure[ib.index()]
    }

    /// Dense wire-demand slice indexed by [`EdgeId`].
    pub fn wire_slice(&self) -> &[f32] {
        &self.wire
    }

    /// Dense via-pressure slice indexed by [`crate::GcellId`].
    pub fn via_pressure_slice(&self) -> &[f32] {
        &self.via_pressure
    }

    /// Resets all demand to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.wire.fill(0.0);
        self.via_pressure.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityBuilder;

    fn setup() -> (GcellGrid, CapacityModel) {
        let g = GcellGrid::new(5, 5).unwrap();
        let cap = CapacityBuilder::uniform(&g, 10.0).build(&g).unwrap();
        (g, cap)
    }

    #[test]
    fn add_and_remove_segment_roundtrip() {
        let (g, _) = setup();
        let mut d = DemandMap::new(&g);
        d.add_segment(&g, Point::new(0, 2), Point::new(4, 2))
            .unwrap();
        assert_eq!(d.wire(g.h_edge(1, 2).unwrap()), 1.0);
        d.remove_segment(&g, Point::new(0, 2), Point::new(4, 2))
            .unwrap();
        for e in g.edge_ids() {
            assert_eq!(d.wire(e), 0.0);
        }
    }

    #[test]
    fn total_includes_via_pressure_of_both_endpoints() {
        let (g, cap) = setup();
        let mut d = DemandMap::new(&g);
        let e = g.h_edge(1, 1).unwrap(); // endpoints (1,1) and (2,1)
        d.add_turn(&g, Point::new(1, 1)).unwrap();
        d.add_turn(&g, Point::new(2, 1)).unwrap();
        // no wire, via pressure 1 at each endpoint, β = 1: 0.5 + 0.5
        assert_eq!(d.total(&g, &cap, e), 1.0);
        // a distant edge is unaffected
        assert_eq!(d.total(&g, &cap, g.h_edge(0, 4).unwrap()), 0.0);
    }

    #[test]
    fn via_pressure_respects_beta() {
        let g = GcellGrid::new(5, 5).unwrap();
        let cap = CapacityBuilder::uniform(&g, 10.0)
            .set_beta(&g, Point::new(1, 1), 2.0)
            .unwrap()
            .build(&g)
            .unwrap();
        let mut d = DemandMap::new(&g);
        d.add_turn(&g, Point::new(1, 1)).unwrap();
        let e = g.h_edge(1, 1).unwrap();
        assert_eq!(d.total(&g, &cap, e), 0.5 * 2.0);
    }

    #[test]
    fn from_parts_validates_lengths() {
        let (g, _) = setup();
        assert!(DemandMap::from_parts(&g, vec![0.0; 2], vec![0.0; g.num_cells()]).is_err());
        assert!(DemandMap::from_parts(&g, vec![0.0; g.num_edges()], vec![0.0; 1]).is_err());
        assert!(
            DemandMap::from_parts(&g, vec![0.0; g.num_edges()], vec![0.0; g.num_cells()]).is_ok()
        );
    }

    #[test]
    fn clear_resets_everything() {
        let (g, _) = setup();
        let mut d = DemandMap::new(&g);
        d.add_segment(&g, Point::new(0, 0), Point::new(0, 4))
            .unwrap();
        d.add_turn(&g, Point::new(0, 4)).unwrap();
        d.clear();
        assert!(d.wire_slice().iter().all(|&w| w == 0.0));
        assert!(d.via_pressure_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn turn_out_of_bounds_errors() {
        let (g, _) = setup();
        let mut d = DemandMap::new(&g);
        assert!(d.add_turn(&g, Point::new(9, 9)).is_err());
    }
}
