//! The g-cell grid graph and its dense edge indexing.

use serde::{Deserialize, Serialize};

use crate::geom::{Point, Rect};
use crate::ids::{EdgeId, GcellId};
use crate::GridError;

/// Orientation of a g-cell edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeDir {
    /// Connects `(x, y)` to `(x + 1, y)`.
    Horizontal,
    /// Connects `(x, y)` to `(x, y + 1)`.
    Vertical,
}

/// A `width × height` grid of g-cells with dense cell and edge ids.
///
/// Horizontal edges are numbered first: the edge from `(x, y)` to
/// `(x+1, y)` has id `y * (width-1) + x`. Vertical edges follow with ids
/// offset by `num_h_edges()`: the edge from `(x, y)` to `(x, y+1)` has id
/// `num_h_edges() + y * width + x`.
///
/// # Examples
///
/// ```
/// use dgr_grid::{GcellGrid, EdgeDir, Point};
///
/// let grid = GcellGrid::new(4, 3)?;
/// assert_eq!(grid.num_cells(), 12);
/// assert_eq!(grid.num_h_edges(), 9);
/// assert_eq!(grid.num_v_edges(), 8);
///
/// let e = grid.v_edge(2, 1)?;
/// assert_eq!(grid.edge_dir(e), EdgeDir::Vertical);
/// assert_eq!(grid.edge_endpoints(e).0, Point::new(2, 1));
/// # Ok::<(), dgr_grid::GridError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcellGrid {
    width: u32,
    height: u32,
}

/// Largest supported grid side length.
///
/// Keeps `num_edges()` comfortably inside `u32` edge ids.
pub const MAX_SIDE: u32 = 30_000;

impl GcellGrid {
    /// Creates a grid with the given dimensions in g-cells.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::BadDimensions`] if either side is zero or larger
    /// than [`MAX_SIDE`].
    pub fn new(width: u32, height: u32) -> Result<Self, GridError> {
        if width == 0 || height == 0 || width > MAX_SIDE || height > MAX_SIDE {
            return Err(GridError::BadDimensions { width, height });
        }
        Ok(GcellGrid { width, height })
    }

    /// Grid width in g-cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in g-cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of g-cells.
    pub fn num_cells(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of horizontal edges.
    pub fn num_h_edges(&self) -> usize {
        (self.width as usize - 1) * self.height as usize
    }

    /// Number of vertical edges.
    pub fn num_v_edges(&self) -> usize {
        self.width as usize * (self.height as usize - 1)
    }

    /// Total number of g-cell edges.
    pub fn num_edges(&self) -> usize {
        self.num_h_edges() + self.num_v_edges()
    }

    /// The rectangle covering the whole grid.
    pub fn bounds(&self) -> Rect {
        Rect::new(
            Point::new(0, 0),
            Point::new(self.width as i32 - 1, self.height as i32 - 1),
        )
    }

    /// Whether `p` is a valid g-cell position.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height
    }

    /// Dense id of the g-cell at `p`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::CellOutOfBounds`] if `p` is outside the grid.
    pub fn cell_id(&self, p: Point) -> Result<GcellId, GridError> {
        if !self.contains(p) {
            return Err(GridError::CellOutOfBounds { x: p.x, y: p.y });
        }
        Ok(GcellId::new(p.y as u32 * self.width + p.x as u32))
    }

    /// The position of a g-cell id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this grid.
    pub fn cell_point(&self, id: GcellId) -> Point {
        assert!(id.index() < self.num_cells(), "cell id out of range");
        Point::new((id.0 % self.width) as i32, (id.0 / self.width) as i32)
    }

    /// Id of the horizontal edge from `(x, y)` to `(x+1, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::EdgeOutOfBounds`] if no such edge exists.
    pub fn h_edge(&self, x: i32, y: i32) -> Result<EdgeId, GridError> {
        if x < 0 || y < 0 || (x as u32) >= self.width - 1 || (y as u32) >= self.height {
            return Err(GridError::EdgeOutOfBounds {
                x,
                y,
                dir: EdgeDir::Horizontal,
            });
        }
        Ok(EdgeId::new(y as u32 * (self.width - 1) + x as u32))
    }

    /// Id of the vertical edge from `(x, y)` to `(x, y+1)`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::EdgeOutOfBounds`] if no such edge exists.
    pub fn v_edge(&self, x: i32, y: i32) -> Result<EdgeId, GridError> {
        if x < 0 || y < 0 || (x as u32) >= self.width || (y as u32) >= self.height - 1 {
            return Err(GridError::EdgeOutOfBounds {
                x,
                y,
                dir: EdgeDir::Vertical,
            });
        }
        Ok(EdgeId::new(
            self.num_h_edges() as u32 + y as u32 * self.width + x as u32,
        ))
    }

    /// Orientation of an edge id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for this grid.
    pub fn edge_dir(&self, e: EdgeId) -> EdgeDir {
        assert!(e.index() < self.num_edges(), "edge id out of range");
        if e.index() < self.num_h_edges() {
            EdgeDir::Horizontal
        } else {
            EdgeDir::Vertical
        }
    }

    /// The two endpoint g-cells of an edge, in `(lower, upper)` order.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for this grid.
    pub fn edge_endpoints(&self, e: EdgeId) -> (Point, Point) {
        let idx = e.index();
        if idx < self.num_h_edges() {
            let w1 = (self.width - 1) as usize;
            let y = (idx / w1) as i32;
            let x = (idx % w1) as i32;
            (Point::new(x, y), Point::new(x + 1, y))
        } else {
            assert!(idx < self.num_edges(), "edge id out of range");
            let idx = idx - self.num_h_edges();
            let w = self.width as usize;
            let y = (idx / w) as i32;
            let x = (idx % w) as i32;
            (Point::new(x, y), Point::new(x, y + 1))
        }
    }

    /// The edge between two **adjacent** g-cells.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::NotAligned`] if the points are not neighbours,
    /// or an out-of-bounds error if either point is outside the grid.
    pub fn edge_between(&self, a: Point, b: Point) -> Result<EdgeId, GridError> {
        if a.manhattan_distance(b) != 1 {
            return Err(GridError::NotAligned { a, b });
        }
        let (lo, hi) = if (a.x, a.y) <= (b.x, b.y) {
            (a, b)
        } else {
            (b, a)
        };
        if hi.x == lo.x + 1 {
            self.h_edge(lo.x, lo.y)
        } else {
            self.v_edge(lo.x, lo.y)
        }
    }

    /// All edges along the straight segment from `a` to `b` (inclusive).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::NotAligned`] if `a` and `b` do not share a row
    /// or column, or an out-of-bounds error if the segment leaves the grid.
    pub fn edges_on_segment(&self, a: Point, b: Point) -> Result<Vec<EdgeId>, GridError> {
        let mut out = Vec::with_capacity(a.manhattan_distance(b) as usize);
        self.push_segment_edges(a, b, &mut out)?;
        Ok(out)
    }

    /// Appends the edges of the straight segment `a`..`b` to `out`.
    ///
    /// Same contract as [`Self::edges_on_segment`] but reuses the caller's
    /// buffer — the hot path when flattening thousands of path candidates.
    ///
    /// # Errors
    ///
    /// See [`Self::edges_on_segment`].
    pub fn push_segment_edges(
        &self,
        a: Point,
        b: Point,
        out: &mut Vec<EdgeId>,
    ) -> Result<(), GridError> {
        if a.y == b.y {
            let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
            for x in x0..x1 {
                out.push(self.h_edge(x, a.y)?);
            }
            Ok(())
        } else if a.x == b.x {
            let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
            for y in y0..y1 {
                out.push(self.v_edge(a.x, y)?);
            }
            Ok(())
        } else {
            Err(GridError::NotAligned { a, b })
        }
    }

    /// Up to four neighbouring g-cells of `p`, clipped to the grid.
    pub fn neighbors(&self, p: Point) -> impl Iterator<Item = Point> + '_ {
        const OFFSETS: [(i32, i32); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
        OFFSETS
            .iter()
            .map(move |&(dx, dy)| Point::new(p.x + dx, p.y + dy))
            .filter(move |&q| self.contains(q))
    }

    /// Up to four edges incident to the g-cell at `p`.
    pub fn incident_edges(&self, p: Point) -> impl Iterator<Item = EdgeId> + '_ {
        self.neighbors(p)
            .map(move |q| self.edge_between(p, q).expect("neighbor is adjacent"))
    }

    /// Iterates over every edge id.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges() as u32).map(EdgeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(GcellGrid::new(0, 5).is_err());
        assert!(GcellGrid::new(5, 0).is_err());
        assert!(GcellGrid::new(MAX_SIDE + 1, 2).is_err());
    }

    #[test]
    fn edge_counts() {
        let g = GcellGrid::new(4, 3).unwrap();
        assert_eq!(g.num_h_edges(), 3 * 3);
        assert_eq!(g.num_v_edges(), 4 * 2);
        assert_eq!(g.num_edges(), 17);
    }

    #[test]
    fn cell_id_roundtrip() {
        let g = GcellGrid::new(7, 5).unwrap();
        for y in 0..5 {
            for x in 0..7 {
                let p = Point::new(x, y);
                let id = g.cell_id(p).unwrap();
                assert_eq!(g.cell_point(id), p);
            }
        }
    }

    #[test]
    fn edge_id_roundtrip_via_endpoints() {
        let g = GcellGrid::new(6, 4).unwrap();
        for e in g.edge_ids() {
            let (a, b) = g.edge_endpoints(e);
            assert_eq!(g.edge_between(a, b).unwrap(), e);
            assert_eq!(a.manhattan_distance(b), 1);
        }
    }

    #[test]
    fn h_and_v_edges_do_not_collide() {
        let g = GcellGrid::new(5, 5).unwrap();
        let g = &g;
        let h: std::collections::HashSet<_> = (0..4)
            .flat_map(|x| (0..5).map(move |y| g.h_edge(x, y).unwrap()))
            .collect();
        let v: std::collections::HashSet<_> = (0..5)
            .flat_map(|x| (0..4).map(move |y| g.v_edge(x, y).unwrap()))
            .collect();
        assert_eq!(h.len(), 20);
        assert_eq!(v.len(), 20);
        assert!(h.is_disjoint(&v));
    }

    #[test]
    fn out_of_bounds_edges_error() {
        let g = GcellGrid::new(3, 3).unwrap();
        assert!(g.h_edge(2, 0).is_err()); // only x=0,1 valid for width 3
        assert!(g.v_edge(0, 2).is_err());
        assert!(g.h_edge(-1, 0).is_err());
    }

    #[test]
    fn segment_edges_horizontal() {
        let g = GcellGrid::new(8, 2).unwrap();
        let edges = g
            .edges_on_segment(Point::new(5, 1), Point::new(2, 1))
            .unwrap();
        assert_eq!(edges.len(), 3);
        for e in &edges {
            assert_eq!(g.edge_dir(*e), EdgeDir::Horizontal);
        }
    }

    #[test]
    fn segment_edges_vertical_and_degenerate() {
        let g = GcellGrid::new(3, 8).unwrap();
        let edges = g
            .edges_on_segment(Point::new(1, 2), Point::new(1, 6))
            .unwrap();
        assert_eq!(edges.len(), 4);
        let empty = g
            .edges_on_segment(Point::new(1, 2), Point::new(1, 2))
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn segment_rejects_diagonal() {
        let g = GcellGrid::new(4, 4).unwrap();
        assert!(matches!(
            g.edges_on_segment(Point::new(0, 0), Point::new(2, 2)),
            Err(GridError::NotAligned { .. })
        ));
    }

    #[test]
    fn neighbors_clipped_at_corner() {
        let g = GcellGrid::new(4, 4).unwrap();
        let n: Vec<_> = g.neighbors(Point::new(0, 0)).collect();
        assert_eq!(n.len(), 2);
        let n: Vec<_> = g.neighbors(Point::new(2, 2)).collect();
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn incident_edges_match_neighbors() {
        let g = GcellGrid::new(4, 4).unwrap();
        assert_eq!(g.incident_edges(Point::new(0, 0)).count(), 2);
        assert_eq!(g.incident_edges(Point::new(1, 2)).count(), 4);
    }

    #[test]
    fn single_row_grid_has_no_vertical_edges() {
        let g = GcellGrid::new(10, 1).unwrap();
        assert_eq!(g.num_v_edges(), 0);
        assert_eq!(g.num_edges(), 9);
    }
}
