//! Property tests for the Eq. (1) capacity model.
//!
//! The builder splits each g-cell's penalty `β·pins + local_nets` evenly
//! over the cell's incident edges. These properties pin down the
//! consequences: bounded penalties keep capacity nonnegative, capacity is
//! monotone in tracks and anti-monotone in pin density / local nets, and
//! the total subtracted mass equals the total penalty (nothing is lost or
//! double-counted).

use dgr_grid::{CapacityBuilder, GcellGrid, GcellId, Point};
use proptest::prelude::*;

fn cell_of(grid: &GcellGrid, index: usize) -> Point {
    grid.cell_point(GcellId::new((index % grid.num_cells()) as u32))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With no penalties registered, capacity is exactly the track count
    /// everywhere — trivially nonnegative.
    #[test]
    fn no_penalty_capacity_equals_tracks(
        w in 3u32..9,
        h in 3u32..9,
        tracks in 0.0f32..8.0,
    ) {
        let grid = GcellGrid::new(w, h).unwrap();
        let cap = CapacityBuilder::uniform(&grid, tracks).build(&grid).unwrap();
        for &c in cap.as_slice() {
            prop_assert_eq!(c, tracks);
        }
    }

    /// If every cell's penalty stays at or below the track count, no edge
    /// goes negative: an edge receives at most `penalty/2` from each of
    /// its two endpoints (every cell has ≥ 2 incident edges).
    #[test]
    fn bounded_penalty_keeps_capacity_nonnegative(
        w in 3u32..9,
        h in 3u32..9,
        tracks in 1u32..6,
        pins_per_cell in 0u32..3,
    ) {
        let grid = GcellGrid::new(w, h).unwrap();
        let pins_per_cell = pins_per_cell.min(tracks);
        let mut b = CapacityBuilder::uniform(&grid, tracks as f32);
        for i in 0..grid.num_cells() {
            b = b.add_pins(&grid, cell_of(&grid, i), pins_per_cell).unwrap();
        }
        let cap = b.build(&grid).unwrap();
        for (e, &c) in cap.as_slice().iter().enumerate() {
            prop_assert!(c >= 0.0, "edge {e}: capacity {c} < 0");
        }
    }

    /// More tracks never hurt: raising the uniform track count raises
    /// every edge's capacity by exactly the difference.
    #[test]
    fn capacity_is_monotone_in_tracks(
        w in 3u32..9,
        h in 3u32..9,
        tracks in 0u32..5,
        extra in 1u32..4,
        cell in 0usize..64,
        pins in 0u32..4,
    ) {
        let grid = GcellGrid::new(w, h).unwrap();
        let p = cell_of(&grid, cell);
        let lo = CapacityBuilder::uniform(&grid, tracks as f32)
            .add_pins(&grid, p, pins).unwrap()
            .build(&grid).unwrap();
        let hi = CapacityBuilder::uniform(&grid, (tracks + extra) as f32)
            .add_pins(&grid, p, pins).unwrap()
            .build(&grid).unwrap();
        for (a, b) in lo.as_slice().iter().zip(hi.as_slice()) {
            prop_assert!(b > a);
            // the shift is `extra` up to f32 round-off of the shares
            prop_assert!((b - a - extra as f32).abs() <= 1e-5 * extra as f32);
        }
    }

    /// More pins never help: adding pins to any cell weakly decreases
    /// every edge's capacity, strictly for the incident edges.
    #[test]
    fn capacity_is_anti_monotone_in_pins(
        w in 3u32..9,
        h in 3u32..9,
        cell in 0usize..64,
        pins in 1u32..5,
    ) {
        let grid = GcellGrid::new(w, h).unwrap();
        let p = cell_of(&grid, cell);
        let before = CapacityBuilder::uniform(&grid, 4.0).build(&grid).unwrap();
        let after = CapacityBuilder::uniform(&grid, 4.0)
            .add_pins(&grid, p, pins).unwrap()
            .build(&grid).unwrap();
        for (e, (a, b)) in before.as_slice().iter().zip(after.as_slice()).enumerate() {
            prop_assert!(b <= a, "edge {e} gained capacity from pins");
        }
        for e in grid.incident_edges(p) {
            prop_assert!(after.capacity(e) < before.capacity(e));
        }
    }

    /// Same for local nets (the un-weighted term of Eq. 1).
    #[test]
    fn capacity_is_anti_monotone_in_local_nets(
        w in 3u32..9,
        h in 3u32..9,
        cell in 0usize..64,
        locals in 1u32..5,
    ) {
        let grid = GcellGrid::new(w, h).unwrap();
        let p = cell_of(&grid, cell);
        let before = CapacityBuilder::uniform(&grid, 4.0).build(&grid).unwrap();
        let after = CapacityBuilder::uniform(&grid, 4.0)
            .add_local_nets(&grid, p, locals).unwrap()
            .build(&grid).unwrap();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            prop_assert!(b <= a);
        }
        for e in grid.incident_edges(p) {
            prop_assert!(after.capacity(e) < before.capacity(e));
        }
    }

    /// Conservation: the total capacity removed across all edges equals
    /// the total registered penalty Σ_cells (β·pins + locals) — the even
    /// split neither loses nor double-counts mass.
    #[test]
    fn penalty_mass_is_conserved(
        w in 3u32..9,
        h in 3u32..9,
        cell_a in 0usize..64,
        cell_b in 0usize..64,
        pins in 0u32..4,
        locals in 0u32..4,
        beta_num in 1u32..5,
    ) {
        let grid = GcellGrid::new(w, h).unwrap();
        let (pa, pb) = (cell_of(&grid, cell_a), cell_of(&grid, cell_b));
        let beta = beta_num as f32 * 0.5;
        let cap = CapacityBuilder::uniform(&grid, 8.0)
            .set_beta(&grid, pa, beta).unwrap()
            .add_pins(&grid, pa, pins).unwrap()
            .add_local_nets(&grid, pb, locals).unwrap()
            .build(&grid).unwrap();
        let removed: f64 = cap
            .as_slice()
            .iter()
            .map(|&c| (8.0 - c) as f64)
            .sum();
        let expected = (beta * pins as f32 + locals as f32) as f64;
        prop_assert!(
            (removed - expected).abs() <= 1e-4 * expected.max(1.0),
            "removed {removed} ≠ total penalty {expected}"
        );
    }
}
