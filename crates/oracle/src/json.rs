//! Minimal JSON for fuzz case files.
//!
//! The workspace vendors only `serde` derive markers (no `serde_json`),
//! so case files are written and parsed by hand. The supported grammar
//! is deliberately a subset: one flat object of string keys mapping to
//! strings, numbers, or booleans — exactly what a [`CaseSpec`] needs.

use crate::gen::{CaseSpec, CheckKind};

/// Serializes a spec (plus a free-form note) as a pretty-printed flat
/// JSON object.
pub fn write_case(spec: &CaseSpec, note: &str) -> String {
    let mut s = String::from("{\n");
    let mut field = |k: &str, v: String| {
        s.push_str(&format!("  \"{k}\": {v},\n"));
    };
    field("check", format!("\"{}\"", spec.check.name()));
    field("seed", spec.seed.to_string());
    field("width", spec.width.to_string());
    field("height", spec.height.to_string());
    field("tracks", format!("{:?}", spec.tracks));
    field("num_nets", spec.num_nets.to_string());
    field("max_pins", spec.max_pins.to_string());
    field("num_layers", spec.num_layers.to_string());
    field("hotspot", spec.hotspot.to_string());
    field("pin_density", spec.pin_density.to_string());
    field("ops", spec.ops.to_string());
    s.push_str(&format!("  \"note\": \"{}\"\n}}\n", escape(note)));
    s
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// One parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
}

/// Parses a flat JSON object into key/value pairs.
fn parse_flat_object(text: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = text.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected '\"'".into());
            }
            let mut out = String::new();
            loop {
                match chars.next() {
                    Some('"') => return Ok(out),
                    Some('\\') => match chars.next() {
                        Some('n') => out.push('\n'),
                        Some(c) => out.push(c),
                        None => return Err("unterminated escape".into()),
                    },
                    Some(c) => out.push(c),
                    None => return Err("unterminated string".into()),
                }
            }
        };

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    let mut pairs = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                return Ok(pairs);
            }
            Some('"') => {}
            other => return Err(format!("expected key or '}}', found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => Value::Str(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    w => return Err(format!("bad literal {w:?}")),
                }
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let word: String = std::iter::from_fn(|| {
                    chars
                        .next_if(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                })
                .collect();
                Value::Num(
                    word.parse::<f64>()
                        .map_err(|e| format!("bad number {word:?}: {e}"))?,
                )
            }
            other => return Err(format!("unsupported value start {other:?}")),
        };
        pairs.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => return Ok(pairs),
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

/// Parses a dumped case file back into a [`CaseSpec`] (the `note` field
/// is ignored).
///
/// # Errors
///
/// Returns a description of the first syntax or schema problem.
pub fn parse_case(text: &str) -> Result<CaseSpec, String> {
    let pairs = parse_flat_object(text)?;
    let get = |key: &str| -> Result<&Value, String> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        match get(key)? {
            Value::Num(n) => Ok(*n),
            v => Err(format!("field {key:?} is not a number: {v:?}")),
        }
    };
    let boolean = |key: &str| -> Result<bool, String> {
        match get(key)? {
            Value::Bool(b) => Ok(*b),
            v => Err(format!("field {key:?} is not a bool: {v:?}")),
        }
    };
    let check = match get("check")? {
        Value::Str(s) => CheckKind::from_name(s).ok_or_else(|| format!("unknown check {s:?}"))?,
        v => return Err(format!("field \"check\" is not a string: {v:?}")),
    };
    Ok(CaseSpec {
        check,
        seed: num("seed")? as u64,
        width: num("width")? as u32,
        height: num("height")? as u32,
        tracks: num("tracks")? as f32,
        num_nets: num("num_nets")? as usize,
        max_pins: num("max_pins")? as usize,
        num_layers: num("num_layers")? as u32,
        hotspot: boolean("hotspot")?,
        pin_density: boolean("pin_density")?,
        ops: num("ops")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        for kind in CheckKind::ALL {
            for seed in [0u64, 17, 123_456_789] {
                let spec = CaseSpec::sample(kind, seed);
                let text = write_case(&spec, "mismatch: details \"quoted\"\nsecond line");
                let back = parse_case(&text).expect("own output parses");
                assert_eq!(back, spec);
            }
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_case("").is_err());
        assert!(parse_case("{").is_err());
        assert!(parse_case("{\"check\": \"nope\"}").is_err());
        assert!(parse_case("{\"seed\": []}").is_err());
    }
}
