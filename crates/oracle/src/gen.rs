//! Seeded random design generation shared by every oracle check.
//!
//! A [`CaseSpec`] is the *complete* description of one differential test
//! case: which cross-check to run plus the handful of generator knobs
//! (grid size, capacity profile, netlist shape, op count). Everything
//! else — pin positions, hotspot rectangles, logit values, op sequences —
//! is derived deterministically from `seed`, so a spec round-tripped
//! through JSON replays the identical case.

use dgr_grid::{CapacityBuilder, Design, GcellGrid, Net, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the five differential cross-checks a case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Dreyfus–Wagner exact Steiner vs. brute-force Hanan enumeration.
    Rsmt,
    /// Relaxed expected cost at one-hot logits vs. a discrete replay of
    /// every selectable tree/path combination.
    PathCost,
    /// Autodiff tape gradients (both exec modes) vs. central differences
    /// of an independent f64 forward pass.
    GradCheck,
    /// Incremental demand updates vs. a from-scratch naive recount.
    DemandReplay,
    /// The per-net layer-assignment DP vs. exhaustive enumeration of all
    /// layer assignments on a tiny stack.
    LayerAssign,
}

impl CheckKind {
    /// All five checks, in fuzz-loop order.
    pub const ALL: [CheckKind; 5] = [
        CheckKind::Rsmt,
        CheckKind::PathCost,
        CheckKind::GradCheck,
        CheckKind::DemandReplay,
        CheckKind::LayerAssign,
    ];

    /// Stable lowercase name used in JSON case files and reports.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Rsmt => "rsmt",
            CheckKind::PathCost => "path_cost",
            CheckKind::GradCheck => "grad_check",
            CheckKind::DemandReplay => "demand_replay",
            CheckKind::LayerAssign => "layer_assign",
        }
    }

    /// Inverse of [`CheckKind::name`].
    pub fn from_name(s: &str) -> Option<CheckKind> {
        CheckKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One differential test case, fully determined by these fields.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// The cross-check to run.
    pub check: CheckKind,
    /// Master seed for all randomness inside the case.
    pub seed: u64,
    /// Grid width in g-cells.
    pub width: u32,
    /// Grid height in g-cells.
    pub height: u32,
    /// Uniform track count before penalties.
    pub tracks: f32,
    /// Number of nets in the generated netlist.
    pub num_nets: usize,
    /// Upper bound on pins per net (≥ 2).
    pub max_pins: usize,
    /// Routing layers in the design.
    pub num_layers: u32,
    /// Carve a random half-capacity hotspot rectangle.
    pub hotspot: bool,
    /// Register pin-density and local-net penalties (Eq. 1) at the net
    /// pins.
    pub pin_density: bool,
    /// Length of the op sequence for [`CheckKind::DemandReplay`].
    pub ops: usize,
}

impl CaseSpec {
    /// Draws a spec for `check` whose size knobs stay inside that check's
    /// brute-force budget. `seed` becomes the case's master seed.
    pub fn sample(check: CheckKind, seed: u64) -> CaseSpec {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (width, height) = match check {
            // the layer brute force is exponential in segment count:
            // keep routes short
            CheckKind::LayerAssign => (rng.gen_range(3..=6), rng.gen_range(3..=6)),
            _ => (rng.gen_range(3..=8), rng.gen_range(3..=8)),
        };
        let num_nets = match check {
            CheckKind::Rsmt => rng.gen_range(1..=3),
            CheckKind::PathCost | CheckKind::GradCheck => rng.gen_range(1..=2),
            CheckKind::DemandReplay => 0,
            CheckKind::LayerAssign => 1,
        };
        let max_pins = match check {
            CheckKind::Rsmt => rng.gen_range(2..=5),
            CheckKind::LayerAssign => rng.gen_range(2..=3),
            _ => rng.gen_range(2..=4),
        };
        CaseSpec {
            check,
            seed,
            width,
            height,
            tracks: [1.0f32, 2.0, 4.0][rng.gen_range(0..3usize)],
            num_nets,
            max_pins,
            num_layers: rng.gen_range(2..=4),
            hotspot: rng.gen_range(0..3) == 0,
            pin_density: rng.gen_range(0..3) == 0,
            ops: if check == CheckKind::DemandReplay {
                rng.gen_range(8..=40)
            } else {
                0
            },
        }
    }

    /// Strictly-smaller variants of `self`, largest reduction first —
    /// the shrinker adopts the first one that still fails.
    pub fn shrink_candidates(&self) -> Vec<CaseSpec> {
        let mut out = Vec::new();
        let mut push = |f: &dyn Fn(&mut CaseSpec)| {
            let mut s = self.clone();
            f(&mut s);
            if s != *self {
                out.push(s);
            }
        };
        push(&|s| {
            if s.num_nets > 1 {
                s.num_nets -= 1;
            }
        });
        push(&|s| s.max_pins = (s.max_pins - 1).max(2));
        push(&|s| s.ops /= 2);
        push(&|s| s.hotspot = false);
        push(&|s| s.pin_density = false);
        push(&|s| s.num_layers = (s.num_layers - 1).max(2));
        push(&|s| s.width = (s.width - 1).max(3));
        push(&|s| s.height = (s.height - 1).max(3));
        push(&|s| s.tracks = 1.0);
        out
    }
}

/// The RNG every stage of a case derives its randomness from. Seeded
/// once per case; generation order is part of the format, so new draws
/// must only ever be appended.
pub fn case_rng(spec: &CaseSpec) -> StdRng {
    StdRng::seed_from_u64(spec.seed ^ 0xD1CE_0CA5_E5EE_D000)
}

/// Generates the design a spec describes. Deterministic in `spec`.
///
/// # Panics
///
/// Panics only on internal inconsistency (all generated pins are kept
/// inside the grid by construction).
pub fn gen_design(spec: &CaseSpec, rng: &mut StdRng) -> Design {
    let grid = GcellGrid::new(spec.width, spec.height).expect("spec dims ≥ 3");
    let w = spec.width as i32;
    let h = spec.height as i32;

    let mut nets = Vec::with_capacity(spec.num_nets);
    for n in 0..spec.num_nets {
        let k = rng.gen_range(2..=spec.max_pins);
        let mut pins: Vec<Point> = Vec::with_capacity(k);
        while pins.len() < k {
            let p = Point::new(rng.gen_range(0..w), rng.gen_range(0..h));
            if !pins.contains(&p) {
                pins.push(p);
            }
        }
        nets.push(Net::new(format!("n{n}"), pins));
    }

    let mut builder = CapacityBuilder::uniform(&grid, spec.tracks);
    if spec.hotspot {
        let x0 = rng.gen_range(0..w);
        let y0 = rng.gen_range(0..h);
        let x1 = rng.gen_range(x0..w);
        let y1 = rng.gen_range(y0..h);
        builder.scale_region(
            &grid,
            Rect::new(Point::new(x0, y0), Point::new(x1, y1)),
            0.5,
        );
    }
    if spec.pin_density {
        for net in &nets {
            for &p in &net.pins {
                builder = builder.add_pins(&grid, p, 1).expect("pin in grid");
            }
        }
        let locals = rng.gen_range(0..=2);
        for _ in 0..locals {
            let p = Point::new(rng.gen_range(0..w), rng.gen_range(0..h));
            builder = builder.add_local_nets(&grid, p, 1).expect("cell in grid");
        }
    }
    let cap = builder.build(&grid).expect("same grid");
    Design::new(grid, cap, nets, spec.num_layers).expect("generated design is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CaseSpec::sample(CheckKind::Rsmt, 7);
        let d1 = gen_design(&spec, &mut case_rng(&spec));
        let d2 = gen_design(&spec, &mut case_rng(&spec));
        assert_eq!(d1.nets.len(), d2.nets.len());
        for (a, b) in d1.nets.iter().zip(&d2.nets) {
            assert_eq!(a.pins, b.pins);
        }
        assert_eq!(d1.capacity.as_slice(), d2.capacity.as_slice());
    }

    #[test]
    fn sampled_specs_respect_check_budgets() {
        for seed in 0..50 {
            let s = CaseSpec::sample(CheckKind::LayerAssign, seed);
            assert!(s.width <= 6 && s.height <= 6 && s.max_pins <= 3);
            let s = CaseSpec::sample(CheckKind::Rsmt, seed);
            assert!(s.max_pins <= 5);
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_different() {
        let spec = CaseSpec::sample(CheckKind::DemandReplay, 3);
        for c in spec.shrink_candidates() {
            assert_ne!(c, spec);
        }
    }

    #[test]
    fn check_kind_names_round_trip() {
        for k in CheckKind::ALL {
            assert_eq!(CheckKind::from_name(k.name()), Some(k));
        }
        assert_eq!(CheckKind::from_name("nope"), None);
    }
}
