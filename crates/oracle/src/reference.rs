//! Independent f64 re-implementations of the solver's cost semantics.
//!
//! Nothing here shares code with `dgr-autodiff` or `dgr-core`: the
//! expected cost is recomputed from the forest accessors in plain f64
//! loops, and the discrete replay walks path corners unit step by unit
//! step instead of reading the forest's path→edge CSR. Agreement between
//! the two implementations is the whole point — a shared helper would be
//! a shared bug.

use dgr_autodiff::Activation;
use dgr_core::DgrConfig;
use dgr_dag::DagForest;
use dgr_grid::{Design, Point};

/// Logit value marking the selected candidate in a one-hot comparison.
///
/// `softmax` subtracts the group max before exponentiating, so with the
/// selected logit at `ONE_HOT` and the rest at zero the f32 softmax is
/// *exactly* one-hot: `exp(-60)` underflows against `1.0` in both f32
/// and f64. That makes the relaxed cost at these logits the discrete
/// cost of the selection, not an approximation of it.
pub const ONE_HOT: f32 = 60.0;

/// Scalar outputs of one cost evaluation, in f64.
#[derive(Debug, Clone)]
pub struct RefCost {
    /// Expected (or discrete) total wirelength.
    pub wl: f64,
    /// Expected via cost, already scaled by √L.
    pub via: f64,
    /// Σ_e f((d_e − cap_e)/scale).
    pub overflow: f64,
    /// `a₃·overflow + a₂·via + a₁·wl`.
    pub loss: f64,
    /// Per-edge demand `d_e` (wire + ½β endpoint-split via pressure).
    pub demand: Vec<f64>,
}

/// Evaluates `activation` in f64, mirroring the f32 formulas in
/// `dgr_autodiff::activation` (including the exp clamp and the CELU /
/// leaky-ReLU constants).
pub fn activation_f64(a: Activation, x: f64) -> f64 {
    match a {
        Activation::Relu => x.max(0.0),
        Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        Activation::LeakyRelu => {
            if x > 0.0 {
                x
            } else {
                0.01 * x
            }
        }
        Activation::Exp => x.min(20.0).exp(),
        Activation::Celu => x.max(0.0) + ((x.min(0.0)).exp() - 1.0).min(0.0),
    }
}

/// The frozen per-design data an f64 evaluation needs.
pub struct RefModel<'a> {
    design: &'a Design,
    forest: &'a DagForest,
    weights: (f64, f64, f64), // (wirelength, via, overflow)
    activation: Activation,
    overflow_scale: f64,
    /// (cell_a, cell_b, β_a, β_b) per edge, for the endpoint split.
    edge_ends: Vec<(usize, usize, f64, f64)>,
}

impl<'a> RefModel<'a> {
    /// Captures the pieces of `cfg` the forward pass depends on.
    pub fn new(design: &'a Design, forest: &'a DagForest, cfg: &DgrConfig) -> Self {
        let grid = &design.grid;
        let mut edge_ends = Vec::with_capacity(grid.num_edges());
        for e in grid.edge_ids() {
            let (pa, pb) = grid.edge_endpoints(e);
            let ia = grid.cell_id(pa).expect("endpoint in grid");
            let ib = grid.cell_id(pb).expect("endpoint in grid");
            edge_ends.push((
                ia.index(),
                ib.index(),
                design.capacity.beta(ia) as f64,
                design.capacity.beta(ib) as f64,
            ));
        }
        RefModel {
            design,
            forest,
            weights: (
                cfg.weights.wirelength as f64,
                cfg.weights.via as f64,
                cfg.weights.overflow as f64,
            ),
            activation: cfg.activation,
            overflow_scale: cfg.overflow_scale as f64,
            edge_ends,
        }
    }

    /// Full f64 forward pass over the same leaves the tape reads:
    /// `z = (w + noise)/τ`, per-group softmax, `qp = p·q`, expected
    /// wirelength/vias/demand, activated overflow, weighted loss.
    pub fn eval(
        &self,
        w_tree: &[f32],
        w_path: &[f32],
        noise_tree: &[f32],
        noise_path: &[f32],
        temperature: f32,
    ) -> RefCost {
        let forest = self.forest;
        let tau = temperature as f64;

        let q = softmax_groups(w_tree, noise_tree, tau, forest.num_nets(), |n| {
            forest.trees_of_net(n)
        });
        let p = softmax_groups(w_path, noise_path, tau, forest.num_subnets(), |s| {
            forest.paths_of_subnet(s)
        });

        let num_paths = forest.num_paths();
        let mut qp = vec![0.0f64; num_paths];
        for (i, qp_i) in qp.iter_mut().enumerate() {
            *qp_i = p[i] * q[forest.tree_of_path(i)];
        }

        let mut wl = 0.0f64;
        let mut turns = 0.0f64;
        for (i, &m) in qp.iter().enumerate() {
            wl += m * forest.path_wirelength(i) as f64;
            turns += m * forest.path_turn_count(i) as f64;
        }
        let via = turns * (self.design.num_layers as f64).sqrt();

        let grid = &self.design.grid;
        let mut wire = vec![0.0f64; grid.num_edges()];
        let mut vp = vec![0.0f64; grid.num_cells()];
        for (i, &m) in qp.iter().enumerate() {
            for &e in forest.path_edges(i) {
                wire[e as usize] += m;
            }
            for &c in forest.path_vias(i) {
                vp[c as usize] += m;
            }
        }
        self.finish(wl, via, wire, vp)
    }

    /// Discrete replay of a selection: walks each chosen path's corners
    /// unit step by unit step (independently of the forest's path→edge
    /// CSR) and computes the same Eq. (9)–(12) metrics on the result.
    pub fn discrete(&self, sel: &Selection) -> RefCost {
        let forest = self.forest;
        let grid = &self.design.grid;
        let mut wl = 0.0f64;
        let mut turns = 0.0f64;
        let mut wire = vec![0.0f64; grid.num_edges()];
        let mut vp = vec![0.0f64; grid.num_cells()];
        for &(subnet, path) in &sel.path_of_subnet {
            let corners = path_corners(forest, grid, subnet, path);
            for w in corners.windows(2) {
                wl += w[0].manhattan_distance(w[1]) as f64;
                let mut p = w[0];
                while p != w[1] {
                    let step =
                        Point::new(p.x + (w[1].x - p.x).signum(), p.y + (w[1].y - p.y).signum());
                    let e = grid.edge_between(p, step).expect("unit step in grid");
                    wire[e.index()] += 1.0;
                    p = step;
                }
            }
            for c in &corners[1..corners.len().saturating_sub(1)] {
                turns += 1.0;
                vp[grid.cell_id(*c).expect("corner in grid").index()] += 1.0;
            }
        }
        let via = turns * (self.design.num_layers as f64).sqrt();
        self.finish(wl, via, wire, vp)
    }

    fn finish(&self, wl: f64, via: f64, wire: Vec<f64>, vp: Vec<f64>) -> RefCost {
        let cap = self.design.capacity.as_slice();
        let mut demand = wire;
        let mut overflow = 0.0f64;
        for (e, d) in demand.iter_mut().enumerate() {
            let (ia, ib, ba, bb) = self.edge_ends[e];
            *d += 0.5 * ba * vp[ia] + 0.5 * bb * vp[ib];
            let slack = (*d - cap[e] as f64) / self.overflow_scale;
            overflow += activation_f64(self.activation, slack);
        }
        let (a1, a2, a3) = self.weights;
        RefCost {
            wl,
            via,
            overflow,
            loss: a3 * overflow + a2 * via + a1 * wl,
            demand,
        }
    }
}

/// Max-subtracting softmax per group, all in f64.
fn softmax_groups(
    w: &[f32],
    noise: &[f32],
    tau: f64,
    groups: usize,
    range_of: impl Fn(usize) -> std::ops::Range<usize>,
) -> Vec<f64> {
    let mut out = vec![0.0f64; w.len()];
    for g in 0..groups {
        let r = range_of(g);
        let z: Vec<f64> = r
            .clone()
            .map(|i| (w[i] as f64 + noise[i] as f64) / tau)
            .collect();
        let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = z.iter().map(|&v| (v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        for (i, e) in r.zip(exps) {
            out[i] = e / sum;
        }
    }
    out
}

/// The corner list of one path: subnet endpoint, each turning cell in
/// stored order, the far endpoint. Mirrors the extractor's
/// `realize_path`.
pub fn path_corners(
    forest: &DagForest,
    grid: &dgr_grid::GcellGrid,
    subnet: usize,
    path: usize,
) -> Vec<Point> {
    let (a, b) = forest.subnet_endpoints(subnet);
    let mut corners = vec![a];
    for &c in forest.path_vias(path) {
        corners.push(grid.cell_point(dgr_grid::GcellId(c)));
    }
    if b != a {
        corners.push(b);
    }
    corners
}

/// One discrete choice: a tree per net and a path per subnet of the
/// chosen trees.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Global tree index chosen for each net, in net order.
    pub tree_of_net: Vec<usize>,
    /// `(subnet, path)` pairs, one per subnet of every chosen tree.
    pub path_of_subnet: Vec<(usize, usize)>,
}

/// Enumerates every selectable (tree, path…) combination of the forest,
/// stopping after `cap` selections. Returns the selections and whether
/// enumeration was truncated.
pub fn enumerate_selections(forest: &DagForest, cap: usize) -> (Vec<Selection>, bool) {
    let mut out = Vec::new();
    let mut current = Selection {
        tree_of_net: Vec::new(),
        path_of_subnet: Vec::new(),
    };
    let truncated = walk_nets(forest, 0, &mut current, &mut out, cap);
    (out, truncated)
}

fn walk_nets(
    forest: &DagForest,
    net: usize,
    current: &mut Selection,
    out: &mut Vec<Selection>,
    cap: usize,
) -> bool {
    if out.len() >= cap {
        return true;
    }
    if net == forest.num_nets() {
        out.push(current.clone());
        return false;
    }
    let mut truncated = false;
    for t in forest.trees_of_net(net) {
        current.tree_of_net.push(t);
        let before = current.path_of_subnet.len();
        truncated |= walk_subnets(forest, net, forest.subnets_of_tree(t), current, out, cap);
        current.path_of_subnet.truncate(before);
        current.tree_of_net.pop();
        if out.len() >= cap {
            return true;
        }
    }
    truncated
}

fn walk_subnets(
    forest: &DagForest,
    net: usize,
    mut subnets: std::ops::Range<usize>,
    current: &mut Selection,
    out: &mut Vec<Selection>,
    cap: usize,
) -> bool {
    match subnets.next() {
        None => walk_nets(forest, net + 1, current, out, cap),
        Some(s) => {
            let mut truncated = false;
            for path in forest.paths_of_subnet(s) {
                current.path_of_subnet.push((s, path));
                truncated |= walk_subnets(forest, net, subnets.clone(), current, out, cap);
                current.path_of_subnet.pop();
                if out.len() >= cap {
                    return true;
                }
            }
            truncated
        }
    }
}

/// Builds the one-hot logit buffers for a selection: `ONE_HOT` at every
/// chosen tree and path, zero elsewhere (subnets of unchosen trees keep
/// uniform logits — their joint mass underflows to exactly zero).
pub fn one_hot_logits(forest: &DagForest, sel: &Selection) -> (Vec<f32>, Vec<f32>) {
    let mut w_tree = vec![0.0f32; forest.num_trees()];
    for &t in &sel.tree_of_net {
        w_tree[t] = ONE_HOT;
    }
    let mut w_path = vec![0.0f32; forest.num_paths()];
    for &(_, p) in &sel.path_of_subnet {
        w_path[p] = ONE_HOT;
    }
    (w_tree, w_path)
}
