//! The five differential cross-checks.
//!
//! Each check takes a [`CaseSpec`], regenerates the instance from its
//! seed, runs the production implementation and the independent
//! reference, and returns a [`Mismatch`] describing the first
//! disagreement beyond tolerance (see [`crate::tol`] for the policy).

use std::sync::Mutex;

use dgr_autodiff::gumbel::fill_gumbel;
use dgr_autodiff::parallel::{self, ExecMode};
use dgr_autodiff::Activation;
use dgr_core::{build_cost_model, DgrConfig, NetRoute, RoutePath};
use dgr_dag::{build_forest, PatternConfig};
use dgr_grid::{CapacityBuilder, DemandMap, GcellGrid, Point};
use dgr_post::{assign_net_dp, AssignConfig};
use dgr_rsmt::{tree_candidates, CandidateConfig};
use rand::rngs::StdRng;
use rand::Rng;

use crate::brute::{brute_best_assignment, brute_rsmt_length, RootedTree, TreeAssignment};
use crate::gen::{case_rng, gen_design, CaseSpec, CheckKind};
use crate::reference::{enumerate_selections, one_hot_logits, RefModel};
use crate::tol;

/// A differential disagreement: which check failed and a human-readable
/// account of the two values that diverged.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The check that failed.
    pub check: CheckKind,
    /// What diverged, with both values and the tolerance.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// `set_exec_mode`/`set_num_threads` are process-global; checks that
/// flip them serialize on this lock (same pattern as the autodiff
/// determinism tests).
pub static EXEC_LOCK: Mutex<()> = Mutex::new(());

/// Runs the check a spec names. `Ok(())` means the implementations
/// agree within tolerance on this case.
///
/// # Errors
///
/// Returns the first [`Mismatch`] found.
pub fn run_case(spec: &CaseSpec) -> Result<(), Mismatch> {
    match spec.check {
        CheckKind::Rsmt => check_rsmt(spec),
        CheckKind::PathCost => check_path_cost(spec),
        CheckKind::GradCheck => check_gradients(spec),
        CheckKind::DemandReplay => check_demand_replay(spec),
        CheckKind::LayerAssign => check_layer_assign(spec),
    }
}

fn fail(spec: &CaseSpec, detail: String) -> Mismatch {
    Mismatch {
        check: spec.check,
        detail,
    }
}

/// `|a − b| ≤ tol · max(1, |a|, |b|)`.
fn close(a: f64, b: f64, rel: f64) -> bool {
    (a - b).abs() <= rel * a.abs().max(b.abs()).max(1.0)
}

// --- check 1: exact Steiner vs. Hanan brute force --------------------------

fn check_rsmt(spec: &CaseSpec) -> Result<(), Mismatch> {
    let mut rng = case_rng(spec);
    let design = gen_design(spec, &mut rng);
    for net in &design.nets {
        let exact = dgr_rsmt::exact_steiner(&net.pins);
        exact
            .validate()
            .map_err(|e| fail(spec, format!("exact_steiner({:?}) invalid: {e}", net.pins)))?;
        let brute = brute_rsmt_length(&net.pins);
        if exact.length() != brute {
            return Err(fail(
                spec,
                format!(
                    "exact_steiner({:?}) length {} ≠ brute-force optimum {brute}",
                    net.pins,
                    exact.length()
                ),
            ));
        }
        let mst = dgr_rsmt::mst::rmst_length(&net.pins);
        if exact.length() > mst {
            return Err(fail(
                spec,
                format!(
                    "exact_steiner({:?}) length {} beaten by plain MST {mst}",
                    net.pins,
                    exact.length()
                ),
            ));
        }
    }
    Ok(())
}

// --- check 2: relaxed cost at one-hot logits vs. discrete replay -----------

/// Upper bound on enumerated selections per case (the generator keeps
/// real counts far below this; the cap is a safety net).
const MAX_SELECTIONS: usize = 600;

fn check_path_cost(spec: &CaseSpec) -> Result<(), Mismatch> {
    let mut rng = case_rng(spec);
    let design = gen_design(spec, &mut rng);
    let cand = CandidateConfig {
        max_candidates: 2,
        clamp: Some(design.grid.bounds()),
        seed: spec.seed,
        ..CandidateConfig::default()
    };
    let pools: Vec<_> = design
        .nets
        .iter()
        .map(|n| tree_candidates(&n.pins, &cand).expect("non-empty pins"))
        .collect();
    let patterns = if rng.gen_range(0..2) == 0 {
        PatternConfig::l_only()
    } else {
        PatternConfig::with_z(2)
    };
    let forest = build_forest(&design.grid, &pools, patterns).expect("candidates clamped to grid");
    let cfg = DgrConfig {
        initial_temperature: 1.0,
        activation: Activation::ALL[rng.gen_range(0..Activation::ALL.len())],
        overflow_scale: if rng.gen_range(0..2) == 0 { 1.0 } else { 2.0 },
        ..DgrConfig::default()
    };
    let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
    let reference = RefModel::new(&design, &forest, &cfg);
    let zeros_t = vec![0.0f32; forest.num_trees()];
    let zeros_p = vec![0.0f32; forest.num_paths()];

    let (selections, _truncated) = enumerate_selections(&forest, MAX_SELECTIONS);
    for sel in &selections {
        let (w_tree, w_path) = one_hot_logits(&forest, sel);
        let discrete = reference.discrete(sel);

        // pure-f64 sanity: relaxed cost at one-hot logits IS the
        // discrete cost (softmax underflow makes the mass exactly 0/1)
        let relaxed = reference.eval(&w_tree, &w_path, &zeros_t, &zeros_p, 1.0);
        if !close(relaxed.loss, discrete.loss, tol::ONE_HOT_F64) {
            return Err(fail(
                spec,
                format!(
                    "f64 relaxed loss {} ≠ f64 discrete replay {} at one-hot logits \
                     (selection {:?})",
                    relaxed.loss, discrete.loss, sel.tree_of_net
                ),
            ));
        }

        // the production tape against the independent discrete replay
        model.graph.set_data(model.w_tree, &w_tree);
        model.graph.set_data(model.w_path, &w_path);
        let (loss, overflow, wl, via) = model.evaluate();
        for (name, got, want) in [
            ("loss", loss as f64, discrete.loss),
            ("overflow", overflow as f64, discrete.overflow),
            ("wirelength", wl as f64, discrete.wl),
            ("via", via as f64, discrete.via),
        ] {
            if !close(got, want, tol::COST_REL) {
                return Err(fail(
                    spec,
                    format!(
                        "tape {name} {got} ≠ discrete replay {want} \
                         (selection trees {:?}, paths {:?})",
                        sel.tree_of_net, sel.path_of_subnet
                    ),
                ));
            }
        }
        let tape_demand = model.graph.value(model.demand);
        for (e, (&got, &want)) in tape_demand.iter().zip(&discrete.demand).enumerate() {
            if !close(got as f64, want, tol::COST_REL) {
                return Err(fail(
                    spec,
                    format!("tape demand[{e}] {got} ≠ replayed demand {want}"),
                ));
            }
        }
    }
    Ok(())
}

// --- check 3: tape gradients vs. f64 central differences -------------------

fn check_gradients(spec: &CaseSpec) -> Result<(), Mismatch> {
    let mut rng = case_rng(spec);
    let design = gen_design(spec, &mut rng);
    let cand = CandidateConfig {
        max_candidates: 2,
        clamp: Some(design.grid.bounds()),
        seed: spec.seed,
        ..CandidateConfig::default()
    };
    let pools: Vec<_> = design
        .nets
        .iter()
        .map(|n| tree_candidates(&n.pins, &cand).expect("non-empty pins"))
        .collect();
    let forest = build_forest(&design.grid, &pools, PatternConfig::with_z(2))
        .expect("candidates clamped to grid");
    let cfg = DgrConfig {
        // smooth activations only: FD at a ReLU kink is meaningless
        activation: if rng.gen_range(0..2) == 0 {
            Activation::Sigmoid
        } else {
            Activation::Celu
        },
        overflow_scale: 2.0,
        initial_temperature: [0.5f32, 1.0, 2.0][rng.gen_range(0..3usize)],
        ..DgrConfig::default()
    };
    let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
    if rng.gen_range(0..2) == 0 {
        let mut noise = vec![0.0f32; forest.num_trees()];
        fill_gumbel(&mut rng, &mut noise);
        model.graph.set_data(model.noise_tree, &noise);
        let mut noise = vec![0.0f32; forest.num_paths()];
        fill_gumbel(&mut rng, &mut noise);
        model.graph.set_data(model.noise_path, &noise);
    }

    let w_tree = model.graph.value(model.w_tree).to_vec();
    let w_path = model.graph.value(model.w_path).to_vec();
    let noise_tree = model.graph.value(model.noise_tree).to_vec();
    let noise_path = model.graph.value(model.noise_path).to_vec();
    let tau = model.graph.value(model.temperature)[0];
    let reference = RefModel::new(&design, &forest, &cfg);
    let eval = |wt: &[f32], wp: &[f32]| -> f64 {
        reference.eval(wt, wp, &noise_tree, &noise_path, tau).loss
    };

    // forward consistency first: a wrong forward makes FD meaningless
    let _guard = EXEC_LOCK.lock().unwrap();
    let (tape_loss, ..) = model.evaluate();
    let ref_loss = eval(&w_tree, &w_path);
    if !close(tape_loss as f64, ref_loss, tol::COST_REL) {
        return Err(fail(
            spec,
            format!("tape loss {tape_loss} ≠ f64 reference {ref_loss}"),
        ));
    }

    // f64 central differences on a deterministic coordinate sample
    let h = tol::FD_STEP;
    let fd_at = |buf: &[f32], is_tree: bool, j: usize| -> f64 {
        let mut plus = buf.to_vec();
        let mut minus = buf.to_vec();
        plus[j] += h;
        minus[j] -= h;
        let (lp, lm) = if is_tree {
            (eval(&plus, &w_path), eval(&minus, &w_path))
        } else {
            (eval(&w_tree, &plus), eval(&w_tree, &minus))
        };
        (lp - lm) / (2.0 * h as f64)
    };
    let sample = |len: usize, rng: &mut StdRng| -> Vec<usize> {
        if len <= tol::FD_COORDS {
            (0..len).collect()
        } else {
            (0..tol::FD_COORDS).map(|_| rng.gen_range(0..len)).collect()
        }
    };
    let tree_coords = sample(w_tree.len(), &mut rng);
    let path_coords = sample(w_path.len(), &mut rng);

    for mode in [ExecMode::Pool, ExecMode::Spawn] {
        parallel::set_exec_mode(mode);
        model.graph.forward();
        model.graph.backward(model.loss);
        let g_tree = model.graph.grad(model.w_tree).to_vec();
        let g_path = model.graph.grad(model.w_path).to_vec();
        parallel::set_exec_mode(ExecMode::Pool);
        for &j in &tree_coords {
            let want = fd_at(&w_tree, true, j);
            let got = g_tree[j] as f64;
            if !close(got, want, tol::GRAD_REL) {
                return Err(fail(
                    spec,
                    format!("{mode:?} tape ∂loss/∂w_tree[{j}] {got} ≠ central diff {want}"),
                ));
            }
        }
        for &j in &path_coords {
            let want = fd_at(&w_path, false, j);
            let got = g_path[j] as f64;
            if !close(got, want, tol::GRAD_REL) {
                return Err(fail(
                    spec,
                    format!("{mode:?} tape ∂loss/∂w_path[{j}] {got} ≠ central diff {want}"),
                ));
            }
        }
    }
    Ok(())
}

// --- check 4: incremental demand updates vs. naive recount -----------------

#[derive(Debug, Clone, Copy)]
enum DemandOp {
    Seg(Point, Point),
    Turn(Point),
}

fn check_demand_replay(spec: &CaseSpec) -> Result<(), Mismatch> {
    let mut rng = case_rng(spec);
    let grid = GcellGrid::new(spec.width, spec.height).expect("dims ≥ 3");
    let mut cap_builder = CapacityBuilder::uniform(&grid, spec.tracks);
    for _ in 0..2 {
        let p = Point::new(
            rng.gen_range(0..spec.width as i32),
            rng.gen_range(0..spec.height as i32),
        );
        cap_builder = cap_builder
            .set_beta(&grid, p, [0.5f32, 2.0][rng.gen_range(0..2usize)])
            .expect("cell in grid");
    }
    let cap = cap_builder.build(&grid).expect("same grid");

    let mut demand = DemandMap::new(&grid);
    let mut active: Vec<DemandOp> = Vec::new();
    let rand_point = |rng: &mut StdRng| {
        Point::new(
            rng.gen_range(0..spec.width as i32),
            rng.gen_range(0..spec.height as i32),
        )
    };
    let apply = |demand: &mut DemandMap, op: DemandOp, add: bool| {
        let r = match (op, add) {
            (DemandOp::Seg(a, b), true) => demand.add_segment(&grid, a, b),
            (DemandOp::Seg(a, b), false) => demand.remove_segment(&grid, a, b),
            (DemandOp::Turn(p), true) => demand.add_turn(&grid, p),
            (DemandOp::Turn(p), false) => demand.remove_turn(&grid, p),
        };
        r.expect("generated ops stay in grid");
    };
    for _ in 0..spec.ops {
        if !active.is_empty() && rng.gen_range(0..10) < 3 {
            let idx = rng.gen_range(0..active.len());
            let op = active.swap_remove(idx);
            apply(&mut demand, op, false);
            continue;
        }
        let op = if rng.gen_range(0..4) == 0 {
            DemandOp::Turn(rand_point(&mut rng))
        } else {
            let a = rand_point(&mut rng);
            let horizontal = rng.gen_range(0..2) == 0;
            let b = if horizontal {
                Point::new(rng.gen_range(0..spec.width as i32), a.y)
            } else {
                Point::new(a.x, rng.gen_range(0..spec.height as i32))
            };
            if a == b {
                DemandOp::Turn(a)
            } else {
                DemandOp::Seg(a, b)
            }
        };
        apply(&mut demand, op, true);
        active.push(op);
    }

    // naive recount from the surviving op list, unit step by unit step
    let mut wire = vec![0.0f32; grid.num_edges()];
    let mut vp = vec![0.0f32; grid.num_cells()];
    for op in &active {
        match *op {
            DemandOp::Seg(a, b) => {
                let mut p = a;
                while p != b {
                    let step = Point::new(p.x + (b.x - p.x).signum(), p.y + (b.y - p.y).signum());
                    let e = grid.edge_between(p, step).expect("in grid");
                    wire[e.index()] += 1.0;
                    p = step;
                }
            }
            DemandOp::Turn(p) => {
                vp[grid.cell_id(p).expect("in grid").index()] += 1.0;
            }
        }
    }
    if demand.wire_slice() != wire.as_slice() {
        return Err(fail(
            spec,
            format!(
                "incremental wire demand diverged from recount after {} ops \
                 (first diff at edge {:?})",
                spec.ops,
                demand
                    .wire_slice()
                    .iter()
                    .zip(&wire)
                    .position(|(a, b)| a != b)
            ),
        ));
    }
    if demand.via_pressure_slice() != vp.as_slice() {
        return Err(fail(
            spec,
            "incremental via pressure diverged from recount".to_string(),
        ));
    }
    for e in grid.edge_ids() {
        let got = demand.total(&grid, &cap, e) as f64;
        let (pa, pb) = grid.edge_endpoints(e);
        let ia = grid.cell_id(pa).expect("in grid");
        let ib = grid.cell_id(pb).expect("in grid");
        let want = wire[e.index()] as f64
            + 0.5 * cap.beta(ia) as f64 * vp[ia.index()] as f64
            + 0.5 * cap.beta(ib) as f64 * vp[ib.index()] as f64;
        if !close(got, want, tol::DEMAND_TOTAL_REL) {
            return Err(fail(
                spec,
                format!("total({e:?}) {got} ≠ Eq. (2) recomputation {want}"),
            ));
        }
    }

    // rip everything up: an exact round trip must land on exact zeros
    for op in active.drain(..) {
        apply(&mut demand, op, false);
    }
    if demand.wire_slice().iter().any(|&w| w != 0.0)
        || demand.via_pressure_slice().iter().any(|&v| v != 0.0)
    {
        return Err(fail(
            spec,
            "demand not exactly zero after removing every committed op".to_string(),
        ));
    }
    Ok(())
}

// --- check 5: layer-assignment DP vs. exhaustive enumeration ---------------

/// Product-space cap for the layer brute force; larger cases are
/// vacuously skipped (the generator keeps real cases far below this).
const MAX_LAYER_COMBOS: usize = 65_536;

fn check_layer_assign(spec: &CaseSpec) -> Result<(), Mismatch> {
    let mut rng = case_rng(spec);
    let design = gen_design(spec, &mut rng);
    let net = &design.nets[0];
    let tree = dgr_rsmt::rsmt(&net.pins).expect("non-empty pins");
    let mut paths = Vec::new();
    for (a, b) in tree.subnets() {
        if a.is_aligned_with(b) {
            paths.push(RoutePath {
                corners: vec![a, b],
            });
        } else {
            let (c1, c2) = a.l_corners(b);
            let corner = if rng.gen_range(0..2) == 0 { c1 } else { c2 };
            paths.push(RoutePath {
                corners: vec![a, corner, b],
            });
        }
    }
    let route = NetRoute {
        net: 0,
        tree: 0,
        paths,
    };
    let cfg = AssignConfig {
        overflow_weight: [100.0f32, 500.0][rng.gen_range(0..2usize)],
        via_weight: [1.0f32, 4.0][rng.gen_range(0..2usize)],
        first_horizontal: rng.gen_range(0..2) == 0,
    };
    let num_edges = design.grid.num_edges();
    let mut layer_demand = vec![vec![0.0f32; num_edges]; design.num_layers as usize];
    // pre-commit a few wires so the DP sees non-trivial congestion
    for _ in 0..rng.gen_range(0..=2) {
        let y = rng.gen_range(0..spec.height as i32);
        let x1 = rng.gen_range(1..spec.width as i32);
        let l = rng.gen_range(0..design.num_layers) as usize;
        let mut p = Point::new(0, y);
        while p.x < x1 {
            let step = Point::new(p.x + 1, p.y);
            let e = design.grid.edge_between(p, step).expect("in grid");
            layer_demand[l][e.index()] += 1.0;
            p = step;
        }
    }
    let pre_demand = layer_demand.clone();

    let pins: std::collections::HashSet<Point> = net.pins.iter().copied().collect();
    let asg =
        assign_net_dp(&design, cfg, &route, &pins, &mut layer_demand).expect("route stays in grid");
    if asg.topology.in_tree.iter().any(|&t| !t) {
        // overlapping subnets produced a cycle closer: the DP optimum
        // no longer covers every segment, so the comparison is vacuous
        return Ok(());
    }
    let rooted = match RootedTree::root(&asg.topology) {
        Some(r) => r,
        None => return Ok(()),
    };
    let Some(brute) = brute_best_assignment(
        &design,
        cfg,
        &asg.topology,
        &rooted,
        &pins,
        &pre_demand,
        MAX_LAYER_COMBOS,
    ) else {
        return Ok(());
    };

    // (a) the DP's reported cost is achieved by its returned assignment
    let returned = TreeAssignment {
        root_layer: asg.root_layer,
        seg_layer: asg.net3d.segments.iter().map(|s| s.layer).collect(),
    };
    let achieved = crate::brute::eval_assignment(
        &design,
        cfg,
        &asg.topology,
        &rooted,
        &pins,
        &pre_demand,
        &returned,
    );
    if !close(asg.dp_cost as f64, achieved, tol::DP_REL) {
        return Err(fail(
            spec,
            format!(
                "DP reports cost {} but its returned assignment evaluates to {achieved}",
                asg.dp_cost
            ),
        ));
    }
    // (b) the DP's optimum matches the exhaustive optimum
    if !close(asg.dp_cost as f64, brute, tol::DP_REL) {
        return Err(fail(
            spec,
            format!(
                "DP optimum {} ≠ exhaustive optimum {brute} \
                 ({} tree segments, {} layers)",
                asg.dp_cost,
                asg.topology.segs.len(),
                design.num_layers
            ),
        ));
    }
    Ok(())
}
