//! Exhaustive small-instance references.
//!
//! Everything here is deliberately the *slow obvious* algorithm: minimum
//! spanning trees over every bounded Hanan-point subset for RSMT, and a
//! plain product enumeration of (root layer × per-segment layers) for
//! layer assignment. The oracle only calls these on instances small
//! enough that obviousness beats cleverness.

use dgr_grid::{Design, EdgeDir, Point};
use dgr_post::{AssignConfig, NetTopology};

/// Optimal rectilinear Steiner tree length by brute force: the minimum
/// MST length over the pins plus every Hanan-grid subset of at most
/// `k − 2` extra points (no RSMT on `k` pins needs more Steiner points
/// than that).
///
/// # Panics
///
/// Panics if `pins` is empty (the Hanan grid is undefined).
pub fn brute_rsmt_length(pins: &[Point]) -> u64 {
    let hanan = dgr_rsmt::hanan::HananGrid::new(pins);
    let extras: Vec<Point> = hanan.points().filter(|p| !pins.contains(p)).collect();
    let max_extra = pins.len().saturating_sub(2);
    let mut best = dgr_rsmt::mst::rmst_length(pins);
    let mut chosen: Vec<Point> = Vec::with_capacity(max_extra);
    let mut augmented: Vec<Point> = pins.to_vec();
    for size in 1..=max_extra.min(extras.len()) {
        for_each_combination(&extras, size, 0, &mut chosen, &mut |subset| {
            augmented.truncate(pins.len());
            augmented.extend_from_slice(subset);
            best = best.min(dgr_rsmt::mst::rmst_length(&augmented));
        });
    }
    best
}

fn for_each_combination(
    items: &[Point],
    size: usize,
    start: usize,
    chosen: &mut Vec<Point>,
    f: &mut impl FnMut(&[Point]),
) {
    if chosen.len() == size {
        f(chosen);
        return;
    }
    let needed = size - chosen.len();
    for i in start..=items.len().saturating_sub(needed) {
        chosen.push(items[i]);
        for_each_combination(items, size, i + 1, chosen, f);
        chosen.pop();
    }
}

/// One fully-explicit layer assignment of a net's spanning tree: the
/// root layer plus one layer per tree segment.
#[derive(Debug, Clone)]
pub struct TreeAssignment {
    /// Layer of the wire "arriving" at the root node.
    pub root_layer: u32,
    /// `seg_layer[si]` for tree segments; `u32::MAX` for cycle closers.
    pub seg_layer: Vec<u32>,
}

/// The rooted view of a [`NetTopology`]'s spanning tree, derived by BFS
/// from node 0 — independent of the DP's DFS traversal order.
pub struct RootedTree {
    /// `parent_node[si]`: the endpoint of tree segment `si` closer to
    /// the root.
    pub parent_node: Vec<usize>,
    /// `parent_seg[v]`: the tree segment connecting node `v` to its
    /// parent (`usize::MAX` at the root).
    pub parent_seg: Vec<usize>,
}

impl RootedTree {
    /// Roots the spanning tree of `topo` at node 0.
    ///
    /// Returns `None` if the tree segments do not reach every node
    /// (never the case for a connected route).
    pub fn root(topo: &NetTopology) -> Option<RootedTree> {
        let n = topo.points.len();
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (si, &(na, nb, ..)) in topo.segs.iter().enumerate() {
            if topo.in_tree[si] {
                adj[na].push((si, nb));
                adj[nb].push((si, na));
            }
        }
        let mut parent_seg = vec![usize::MAX; n];
        let mut parent_node = vec![usize::MAX; topo.segs.len()];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(v) = queue.pop_front() {
            for &(si, u) in &adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    parent_seg[u] = si;
                    parent_node[si] = v;
                    queue.push_back(u);
                }
            }
        }
        if seen.iter().all(|&s| s) {
            Some(RootedTree {
                parent_node,
                parent_seg,
            })
        } else {
            None
        }
    }
}

/// Independent evaluation of the layer-assignment DP objective for one
/// explicit assignment:
///
/// * marginal overflow of every tree segment on its layer, against the
///   demand committed by earlier nets,
/// * `via_weight · |layer(seg) − layer(arriving at its parent node)|`
///   per tree segment,
/// * `via_weight · layer(arriving at v)` at every pin node.
///
/// Matches the cost the DP in `dgr_post::assign` claims to minimize over
/// tree segments (cycle closers are out of scope on both sides).
pub fn eval_assignment(
    design: &Design,
    cfg: AssignConfig,
    topo: &NetTopology,
    rooted: &RootedTree,
    pins: &std::collections::HashSet<Point>,
    layer_demand: &[Vec<f32>],
    asg: &TreeAssignment,
) -> f64 {
    let arriving = |v: usize| -> u32 {
        if rooted.parent_seg[v] == usize::MAX {
            asg.root_layer
        } else {
            asg.seg_layer[rooted.parent_seg[v]]
        }
    };
    let mut cost = 0.0f64;
    for (v, p) in topo.points.iter().enumerate() {
        if pins.contains(p) {
            cost += cfg.via_weight as f64 * arriving(v) as f64;
        }
    }
    for (si, &(_, _, a, b)) in topo.segs.iter().enumerate() {
        if !topo.in_tree[si] {
            continue;
        }
        let ls = asg.seg_layer[si];
        let parent = rooted.parent_node[si];
        cost += cfg.via_weight as f64 * (ls as f64 - arriving(parent) as f64).abs();
        cost += seg_overflow_cost(design, cfg, a, b, ls, layer_demand);
    }
    cost
}

/// Marginal overflow cost of placing segment `a`..`b` on `layer`, from
/// first principles: unit-steps the segment, splits 2D capacity over the
/// layers of the segment's direction, and charges
/// `overflow_weight · ((d+1−share)⁺ − (d−share)⁺)` per edge.
fn seg_overflow_cost(
    design: &Design,
    cfg: AssignConfig,
    a: Point,
    b: Point,
    layer: u32,
    layer_demand: &[Vec<f32>],
) -> f64 {
    let grid = &design.grid;
    let dir = if a.y == b.y {
        EdgeDir::Horizontal
    } else {
        EdgeDir::Vertical
    };
    // independent re-derivation of the alternating stack's share count
    let first_horizontal_dir = if cfg.first_horizontal {
        EdgeDir::Horizontal
    } else {
        EdgeDir::Vertical
    };
    let count: u32 = (0..design.num_layers)
        .filter(|l| {
            let even = l % 2 == 0;
            (even && dir == first_horizontal_dir) || (!even && dir != first_horizontal_dir)
        })
        .count() as u32;
    let mut cost = 0.0f64;
    let mut p = a;
    while p != b {
        let step = Point::new(p.x + (b.x - p.x).signum(), p.y + (b.y - p.y).signum());
        let e = grid.edge_between(p, step).expect("segment in grid");
        let share = (design.capacity.capacity(e) / count as f32) as f64;
        let d = layer_demand[layer as usize][e.index()] as f64;
        cost += cfg.overflow_weight as f64 * ((d + 1.0 - share).max(0.0) - (d - share).max(0.0));
        p = step;
    }
    cost
}

/// Exhaustively minimizes [`eval_assignment`] over every root layer and
/// every direction-consistent layer per tree segment. Returns
/// `None` if the product space exceeds `max_combos`.
pub fn brute_best_assignment(
    design: &Design,
    cfg: AssignConfig,
    topo: &NetTopology,
    rooted: &RootedTree,
    pins: &std::collections::HashSet<Point>,
    layer_demand: &[Vec<f32>],
    max_combos: usize,
) -> Option<f64> {
    let num_layers = design.num_layers;
    let tree_segs: Vec<usize> = (0..topo.segs.len())
        .filter(|&si| topo.in_tree[si])
        .collect();
    let layers_for_seg: Vec<Vec<u32>> = tree_segs
        .iter()
        .map(|&si| {
            let (_, _, a, b) = topo.segs[si];
            let dir = if a.y == b.y {
                EdgeDir::Horizontal
            } else {
                EdgeDir::Vertical
            };
            let first_horizontal_dir = if cfg.first_horizontal {
                EdgeDir::Horizontal
            } else {
                EdgeDir::Vertical
            };
            (0..num_layers)
                .filter(|l| {
                    let even = l % 2 == 0;
                    (even && dir == first_horizontal_dir) || (!even && dir != first_horizontal_dir)
                })
                .collect()
        })
        .collect();
    let mut combos = num_layers as usize;
    for ls in &layers_for_seg {
        combos = combos.saturating_mul(ls.len());
        if combos > max_combos {
            return None;
        }
    }

    let mut best = f64::INFINITY;
    let mut asg = TreeAssignment {
        root_layer: 0,
        seg_layer: vec![u32::MAX; topo.segs.len()],
    };
    for root_layer in 0..num_layers {
        asg.root_layer = root_layer;
        enumerate_seg_layers(
            &tree_segs,
            &layers_for_seg,
            0,
            &mut asg,
            &mut |asg: &TreeAssignment| {
                let c = eval_assignment(design, cfg, topo, rooted, pins, layer_demand, asg);
                if c < best {
                    best = c;
                }
            },
        );
    }
    Some(best)
}

fn enumerate_seg_layers(
    tree_segs: &[usize],
    layers_for_seg: &[Vec<u32>],
    depth: usize,
    asg: &mut TreeAssignment,
    f: &mut impl FnMut(&TreeAssignment),
) {
    if depth == tree_segs.len() {
        f(asg);
        return;
    }
    for &l in &layers_for_seg[depth] {
        asg.seg_layer[tree_segs[depth]] = l;
        enumerate_seg_layers(tree_segs, layers_for_seg, depth + 1, asg, f);
    }
    asg.seg_layer[tree_segs[depth]] = u32::MAX;
}
