//! The fuzz loop: N seeded cases × five checks, failure shrinking, and
//! JSON reproducer dumps.

use std::path::{Path, PathBuf};

use crate::checks::{run_case, Mismatch};
use crate::gen::{CaseSpec, CheckKind};
use crate::json;

/// Configuration of one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Seeded cases per check kind.
    pub cases: u64,
    /// Master seed; case `i` of check `k` derives its own seed from it.
    pub seed: u64,
    /// Where to dump shrunk reproducers (`None` = don't write files).
    pub dump_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 200,
            seed: 42,
            dump_dir: None,
        }
    }
}

/// One confirmed disagreement, shrunk to a minimal reproducer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The case as originally drawn.
    pub original: CaseSpec,
    /// The smallest still-failing reduction of it.
    pub shrunk: CaseSpec,
    /// The mismatch the shrunk case produces.
    pub mismatch: Mismatch,
    /// Where the JSON reproducer was written, if dumping was enabled.
    pub dumped: Option<PathBuf>,
}

/// Outcome of a fuzz campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases run per check kind, in [`CheckKind::ALL`] order.
    pub cases_per_check: Vec<(CheckKind, u64)>,
    /// Every mismatch found, shrunk and (optionally) dumped.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Total cases executed across all checks.
    pub fn total_cases(&self) -> u64 {
        self.cases_per_check.iter().map(|&(_, n)| n).sum()
    }
}

/// SplitMix64 — decorrelates per-case seeds from the master seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of case `index` of `check` under master seed `seed`.
pub fn case_seed(seed: u64, check: CheckKind, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_mul(5).wrapping_add(check as u64 + 1)))
}

/// Runs `cfg.cases` seeded cases of every check, shrinking and dumping
/// each failure. Pass `progress` to get a line per check (the CLI wires
/// this to stderr; tests pass `|_| {}`).
pub fn run_fuzz(cfg: &FuzzConfig, mut progress: impl FnMut(&str)) -> FuzzReport {
    let mut report = FuzzReport::default();
    for check in CheckKind::ALL {
        let start = std::time::Instant::now();
        let mut failures_before = report.failures.len();
        for i in 0..cfg.cases {
            let spec = CaseSpec::sample(check, case_seed(cfg.seed, check, i));
            if let Err(first) = run_case(&spec) {
                let shrunk = shrink_case(&spec);
                let mismatch = run_case(&shrunk).err().unwrap_or(first);
                let dumped = cfg
                    .dump_dir
                    .as_ref()
                    .map(|dir| dump_case(dir, &shrunk, &mismatch));
                report.failures.push(FuzzFailure {
                    original: spec,
                    shrunk,
                    mismatch,
                    dumped,
                });
            }
        }
        report.cases_per_check.push((check, cfg.cases));
        let new = report.failures.len() - failures_before;
        failures_before = report.failures.len();
        let _ = failures_before;
        progress(&format!(
            "{:>13}: {} cases, {} mismatches ({:.2}s)",
            check.name(),
            cfg.cases,
            new,
            start.elapsed().as_secs_f64()
        ));
    }
    report
}

/// Greedily minimizes a failing spec: repeatedly adopts the first
/// strictly-smaller variant that still fails, until none does.
pub fn shrink_case(spec: &CaseSpec) -> CaseSpec {
    let mut best = spec.clone();
    'outer: loop {
        for cand in best.shrink_candidates() {
            if run_case(&cand).is_err() {
                best = cand;
                continue 'outer;
            }
        }
        return best;
    }
}

/// Writes a shrunk reproducer under `dir` and returns its path. The
/// file name encodes check and seed, so re-dumping the same failure is
/// idempotent.
pub fn dump_case(dir: &Path, spec: &CaseSpec, mismatch: &Mismatch) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create dump dir");
    let path = dir.join(format!("{}_{:016x}.json", spec.check.name(), spec.seed));
    std::fs::write(&path, json::write_case(spec, &mismatch.detail)).expect("write case file");
    path
}

/// Loads a dumped case file.
///
/// # Errors
///
/// Returns a description of the I/O or parse problem.
pub fn load_case(path: &Path) -> Result<CaseSpec, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    json::parse_case(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_distinct_across_checks_and_indices() {
        let mut seen = std::collections::HashSet::new();
        for check in CheckKind::ALL {
            for i in 0..100 {
                assert!(seen.insert(case_seed(42, check, i)));
            }
        }
    }

    #[test]
    fn dump_and_load_round_trip() {
        let dir = std::env::temp_dir().join("dgr_oracle_dump_test");
        let spec = CaseSpec::sample(CheckKind::DemandReplay, 7);
        let mismatch = Mismatch {
            check: spec.check,
            detail: "synthetic".to_string(),
        };
        let path = dump_case(&dir, &spec, &mismatch);
        let back = load_case(&path).unwrap();
        assert_eq!(back, spec);
        let _ = std::fs::remove_file(path);
    }
}
