#![warn(missing_docs)]

//! Differential-testing oracle for the DGR solver stack.
//!
//! Every algorithmically-interesting layer of the router has a second,
//! independently-implemented reference here, and a seeded fuzz loop that
//! cross-checks the two on small random instances:
//!
//! | check          | production code                       | reference                               |
//! |----------------|---------------------------------------|-----------------------------------------|
//! | `rsmt`         | `dgr_rsmt::exact_steiner` (DP)        | MSTs over bounded Hanan subsets         |
//! | `path_cost`    | the `dgr-core` expected-cost tape     | f64 discrete replay of every selection  |
//! | `grad_check`   | `dgr-autodiff` backward (both modes)  | central differences of an f64 forward   |
//! | `demand_replay`| incremental `dgr_grid::DemandMap`     | from-scratch unit-step recount          |
//! | `layer_assign` | the `dgr-post` per-net DP             | exhaustive (root × segment-layer) scan  |
//!
//! Instances come from one seeded generator ([`gen`]) so every check —
//! and every `#[test]` elsewhere in the workspace that wants a random
//! design — draws from the same distribution. A failing case is shrunk
//! to a minimal reproducer and dumped as a JSON file that
//! `tests/oracle_replay.rs` replays as a regular test; see `DESIGN.md`
//! §7 for the workflow.
//!
//! Run the fuzz driver with `cargo run --bin oracle_fuzz -- --cases 200
//! --seed 42`.

pub mod brute;
pub mod checks;
pub mod fuzz;
pub mod gen;
pub mod json;
pub mod reference;

pub use checks::{run_case, Mismatch, EXEC_LOCK};
pub use fuzz::{case_seed, dump_case, load_case, run_fuzz, shrink_case, FuzzConfig, FuzzReport};
pub use gen::{case_rng, gen_design, CaseSpec, CheckKind};
pub use reference::{RefModel, Selection, ONE_HOT};

/// Tolerance policy, in one place (documented in DESIGN.md §7).
///
/// The production solver computes in f32; every reference here computes
/// in f64. Agreement bounds are therefore set by f32 round-off through
/// the tape's op chain, not by the references.
pub mod tol {
    /// Relative tolerance for scalar costs and demands: tape f32 vs.
    /// reference f64, `|a − b| ≤ tol · max(1, |a|, |b|)`.
    pub const COST_REL: f64 = 1e-4;

    /// Relative tolerance for tape gradients vs. f64 central
    /// differences (the ISSUE's acceptance bound).
    pub const GRAD_REL: f64 = 1e-4;

    /// Pure-f64 one-hot identity: relaxed cost at one-hot logits vs.
    /// discrete replay. Both sides are f64, so this is tight.
    pub const ONE_HOT_F64: f64 = 1e-9;

    /// `DemandMap::total` (f32 Eq. 2) vs. its f64 recomputation.
    pub const DEMAND_TOTAL_REL: f64 = 1e-5;

    /// Layer-assignment DP (f32 accumulation) vs. f64 exhaustive scan.
    pub const DP_REL: f64 = 1e-3;

    /// Central-difference step, applied to f32 logit buffers but
    /// differenced in f64.
    pub const FD_STEP: f32 = 1e-3;

    /// Max coordinates sampled per parameter tensor in a gradient
    /// check.
    pub const FD_COORDS: usize = 16;
}
