//! The five differential cross-checks over a fixed batch of seeded
//! cases. A sharded slice of the nightly fuzz campaign that runs on
//! every `cargo test`.

use dgr_oracle::{case_seed, run_case, CaseSpec, CheckKind};

/// Cases per check in the test-suite slice (the CI fuzz job runs 200).
const CASES: u64 = 40;

fn run_check(check: CheckKind) {
    let mut failures = Vec::new();
    for i in 0..CASES {
        let spec = CaseSpec::sample(check, case_seed(42, check, i));
        if let Err(m) = run_case(&spec) {
            failures.push(format!("case {i} ({spec:?}): {m}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {CASES} {check} cases mismatched:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn rsmt_agrees_with_brute_force() {
    run_check(CheckKind::Rsmt);
}

#[test]
fn relaxed_cost_agrees_with_discrete_replay() {
    run_check(CheckKind::PathCost);
}

#[test]
fn tape_gradients_agree_with_central_differences() {
    run_check(CheckKind::GradCheck);
}

#[test]
fn incremental_demand_agrees_with_recount() {
    run_check(CheckKind::DemandReplay);
}

#[test]
fn layer_dp_agrees_with_exhaustive_scan() {
    run_check(CheckKind::LayerAssign);
}

/// The shrinker must terminate and produce a spec no larger than its
/// input even when the predicate never fails (degenerate input).
#[test]
fn shrinking_a_passing_case_returns_it_unchanged() {
    let spec = CaseSpec::sample(CheckKind::Rsmt, case_seed(42, CheckKind::Rsmt, 0));
    assert!(run_case(&spec).is_ok());
    assert_eq!(dgr_oracle::shrink_case(&spec), spec);
}
